//! Campaign loop shared by the `fuzz` binary, the CI smoke stage, and the
//! tests: generate cases, run the differential matrix, shrink failures,
//! and interleave near-invalid nests that must be rejected cleanly.

use std::panic::{catch_unwind, AssertUnwindSafe};

use fuzzy_compiler::driver::{self, CompileError, CompileOptions};
use fuzzy_util::Json;

use crate::diff::{check_case, DiffOptions, Divergence};
use crate::generate::{FuzzCase, Generator};
use crate::shrink::shrink_case;

/// Every N-th iteration also feeds the compiler a deliberately invalid
/// nest and asserts a clean `Err` (satellite: error paths never panic).
const NEAR_INVALID_EVERY: u64 = 10;

/// Campaign knobs.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Generator seed.
    pub seed: u64,
    /// Number of valid cases to run through the matrix.
    pub iters: u64,
    /// Whether to shrink diverging cases before reporting.
    pub shrink: bool,
    /// Candidate-evaluation budget per shrink.
    pub max_shrink_attempts: usize,
    /// Differential-check knobs.
    pub diff: DiffOptions,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            seed: 7,
            iters: 200,
            shrink: true,
            max_shrink_attempts: 200,
            diff: DiffOptions::default(),
        }
    }
}

/// A diverging case, shrunk when shrinking is enabled.
#[derive(Debug)]
pub struct Repro {
    /// The (possibly shrunk) case.
    pub case: FuzzCase,
    /// Its divergences, re-checked on the shrunk form.
    pub divergences: Vec<Divergence>,
}

/// Aggregate campaign results.
#[derive(Debug, Default)]
pub struct CampaignStats {
    /// Valid cases run through the matrix.
    pub iters: u64,
    /// Candidates the soundness filter rejected along the way.
    pub rejected_nests: u64,
    /// Near-invalid nests rejected cleanly by the compiler.
    pub near_invalid_ok: u64,
    /// Near-invalid nests that panicked or were wrongly accepted.
    pub near_invalid_bad: u64,
    /// Cases with at least one divergence.
    pub divergent_cases: u64,
    /// The diverging cases themselves.
    pub repros: Vec<Repro>,
}

impl CampaignStats {
    /// Whether the campaign found nothing wrong.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.divergent_cases == 0 && self.near_invalid_bad == 0
    }

    /// JSON export for `--stats-json` (validated by
    /// `validate_stats --schema fuzz_campaign`).
    #[must_use]
    pub fn to_json(&self, seed: u64) -> Json {
        Json::obj()
            .field("schema", "fuzz_campaign")
            .field("seed", seed)
            .field("iters", self.iters)
            .field("rejected_nests", self.rejected_nests)
            .field("near_invalid_ok", self.near_invalid_ok)
            .field("near_invalid_bad", self.near_invalid_bad)
            .field("divergent_cases", self.divergent_cases)
            .field(
                "repros",
                Json::Arr(
                    self.repros
                        .iter()
                        .map(|r| {
                            Json::obj().field("name", r.case.name.as_str()).field(
                                "divergences",
                                Json::Arr(
                                    r.divergences
                                        .iter()
                                        .map(|d| Json::Str(d.to_string()))
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            )
    }
}

/// Runs a campaign; `progress` is invoked after each case with
/// `(case_index, divergences_of_that_case)`.
pub fn run_campaign(
    opts: &CampaignOptions,
    mut progress: impl FnMut(u64, &[Divergence]),
) -> CampaignStats {
    let mut generator = Generator::new(opts.seed);
    let mut stats = CampaignStats::default();
    for i in 0..opts.iters {
        let generated = generator.next_case();
        stats.rejected_nests += generated.rejected;
        stats.iters += 1;
        let divergences = check_case(&generated.case, &opts.diff);
        progress(i, &divergences);
        if !divergences.is_empty() {
            stats.divergent_cases += 1;
            let case = if opts.shrink {
                shrink_case(&generated.case, &opts.diff, opts.max_shrink_attempts)
            } else {
                generated.case
            };
            let divergences = check_case(&case, &opts.diff);
            stats.repros.push(Repro { case, divergences });
        }
        if i % NEAR_INVALID_EVERY == 0 {
            if near_invalid_rejected_cleanly(&mut generator, i) {
                stats.near_invalid_ok += 1;
            } else {
                stats.near_invalid_bad += 1;
            }
        }
    }
    stats
}

/// Feeds one deliberately invalid nest to the compiler; true iff it came
/// back as the matching `CompileError` without panicking.
fn near_invalid_rejected_cleanly(generator: &mut Generator, kind: u64) -> bool {
    let (case, expected) = generator.near_invalid(kind);
    let inits = case.inits(case.max_procs.max(2));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        driver::compile_nest(&case.nest, &inits, &CompileOptions::default())
    }));
    match outcome {
        Ok(Err(e)) => matches_expected(&e, expected),
        _ => false,
    }
}

fn matches_expected(e: &CompileError, expected: &str) -> bool {
    match expected {
        "TooManyPrivateVars" => matches!(e, CompileError::TooManyPrivateVars { .. }),
        "MisplacedConditional" => matches!(e, CompileError::MisplacedConditional),
        "MarkedConditional" => matches!(e, CompileError::MarkedConditional),
        _ => false,
    }
}
