//! Seeded random [`LoopNest`] generation.
//!
//! The generator emits nests for which the sequential reference
//! interpreter is a valid oracle of the parallel execution: every
//! dependence that can cross processors must be a loop-carried dependence
//! with a non-zero iteration distance, because that is exactly the class
//! the end-of-iteration fuzzy barrier enforces (Sec. 4 of the paper).
//! Candidate nests that violate this (e.g. cross-processor dependences
//! within one iteration, or Poisson-style unconstrained distances) are
//! resampled — the dependence analysis itself is the filter, so any
//! divergence found downstream is a pipeline bug, not an oracle bug.
//!
//! Two nest families are produced:
//!
//! * **parallel** nests: private variable 0 is the processor index (the
//!   paper's `i = l` from Fig. 3(b)); every assignment target is
//!   subscripted by it, so distinct processors write distinct elements
//!   within an iteration;
//! * **serial** nests: no private variables; these feed the cycle-shrink
//!   axis of the differential matrix, where processors are created by the
//!   transform itself.

use fuzzy_compiler::ast::{
    ArrayAccess, ArrayDecl, ArrayId, Assign, Expr, LoopNest, Stmt, Subscript, VarId,
};
use fuzzy_compiler::deps::{self, DepKind};
use fuzzy_util::SplitMix64;

/// Extent of processor-indexed dimensions: processor values 1..=4 plus
/// subscript offsets in [-1, 1] span `0..=5`.
const PROC_DIM: usize = 6;
/// Extent of constant-indexed dimensions.
const FIXED_DIM: usize = 4;
/// Headroom added above `seq_hi` so unrolling (subscript shifts up to 3)
/// and positive offsets stay in bounds.
const SEQ_HEADROOM: usize = 5;
/// First word of the first array; keeps the image clear of low scratch.
const ARRAY_BASE: i64 = 64;
/// Most array reads allowed in one statement's value expression.
const MAX_READS_PER_STMT: usize = 3;

/// How an array dimension is subscripted throughout the nest. Keeping one
/// role per dimension keeps the SIV dependence test exact, so the
/// soundness filter below never has to guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DimRole {
    /// Subscripted by the sequential variable (plus offset).
    Seq,
    /// Subscripted by processor-index private variable 0 (plus offset).
    Proc,
    /// Subscripted by a constant.
    Fixed,
}

fn role_extent(role: DimRole, seq_hi: i64) -> usize {
    match role {
        DimRole::Seq => seq_hi as usize + SEQ_HEADROOM,
        DimRole::Proc => PROC_DIM,
        DimRole::Fixed => FIXED_DIM,
    }
}

/// One generated test case: the nest plus everything needed to run it on
/// 1..=`max_procs` processors.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Display name (seed and iteration of origin).
    pub name: String,
    /// The loop nest.
    pub nest: LoopNest,
    /// Largest processor count the case is meant to run on (1 for serial
    /// nests).
    pub max_procs: usize,
    /// Per-processor-invariant values of `private_vars[1..]` (private
    /// variable 0, when present, is the processor index `1..=p`).
    pub extra_values: Vec<i64>,
}

impl FuzzCase {
    /// Whether the nest has a processor-index private variable.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        !self.nest.private_vars.is_empty()
    }

    /// Private-variable initial values for a `procs`-processor run, in the
    /// shape [`fuzzy_compiler::driver::compile_nest`] expects.
    #[must_use]
    pub fn inits(&self, procs: usize) -> Vec<Vec<(VarId, i64)>> {
        (0..procs)
            .map(|p| {
                let mut inits = Vec::new();
                if let Some(&p0) = self.nest.private_vars.first() {
                    inits.push((p0, p as i64 + 1));
                }
                for (&v, &value) in self
                    .nest
                    .private_vars
                    .iter()
                    .skip(1)
                    .zip(&self.extra_values)
                {
                    inits.push((v, value));
                }
                inits
            })
            .collect()
    }
}

/// Why a candidate nest was resampled; returned by [`soundness`] so the
/// campaign can report what the filter rejects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Soundness {
    /// The sequential interpreter is a valid oracle for parallel runs.
    Deterministic,
    /// Some dependence can cross processors within one iteration (or at
    /// every iteration distance): the nest is racy under the
    /// end-of-iteration barrier and has no sequential oracle.
    CrossProcessorRace,
}

/// Classifies a nest: deterministic under the per-iteration barrier, or
/// racy. A nest is deterministic exactly when every cross-processor
/// dependence is loop-carried with non-zero distance.
#[must_use]
pub fn soundness(nest: &LoopNest) -> Soundness {
    let info = deps::analyze(nest);
    let racy = info.deps.iter().any(|d| {
        d.cross_processor && !matches!(d.kind, DepKind::Carried { distance } if distance != 0)
    });
    if racy {
        Soundness::CrossProcessorRace
    } else {
        Soundness::Deterministic
    }
}

/// Outcome of one [`Generator::next_case`] draw.
#[derive(Debug)]
pub struct Generated {
    /// The accepted case.
    pub case: FuzzCase,
    /// How many candidates the soundness filter rejected before this one.
    pub rejected: u64,
}

/// The seeded nest generator.
#[derive(Debug)]
pub struct Generator {
    rng: SplitMix64,
    seed: u64,
    drawn: u64,
}

impl Generator {
    /// A generator for `seed`; equal seeds yield equal case streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Generator {
            rng: SplitMix64::seed_from_u64(seed),
            seed,
            drawn: 0,
        }
    }

    /// Draws the next deterministic case, resampling past racy candidates.
    pub fn next_case(&mut self) -> Generated {
        let mut rejected = 0;
        loop {
            let idx = self.drawn;
            self.drawn += 1;
            let case = self.candidate(idx);
            if soundness(&case.nest) == Soundness::Deterministic {
                return Generated { case, rejected };
            }
            rejected += 1;
        }
    }

    /// Draws a candidate nest without the soundness filter. Exposed so
    /// tests can exercise the filter itself.
    #[must_use]
    pub fn candidate(&mut self, idx: u64) -> FuzzCase {
        let parallel = self.rng.chance(0.7);
        let seq_lo = 2;
        let seq_hi = self.rng.range_u64(5, 9) as i64;

        // Private variables: the processor index plus 0..=2 extras that
        // only ever appear in value positions.
        let (private_vars, extra_values, var_names) = if parallel {
            let extras = self.rng.below(3);
            let mut names = vec!["k".to_string(), "p".to_string()];
            let mut vars = vec![VarId(1)];
            let mut values = Vec::new();
            for e in 0..extras {
                vars.push(VarId(2 + e));
                values.push(self.rng.range_u64(0, 9) as i64 - 3);
                names.push(format!("q{e}"));
            }
            (vars, values, names)
        } else {
            (Vec::new(), Vec::new(), vec!["k".to_string()])
        };

        // Array shapes. Array 0 is always target-capable; the rest draw
        // from a weighted shape list.
        let num_arrays = 1 + self.rng.below(3);
        let mut shapes: Vec<Vec<DimRole>> = Vec::with_capacity(num_arrays);
        for a in 0..num_arrays {
            shapes.push(self.array_shape(parallel, a == 0));
        }

        let mut arrays = Vec::with_capacity(num_arrays);
        let mut base = ARRAY_BASE;
        for (a, shape) in shapes.iter().enumerate() {
            let dims: Vec<usize> = shape.iter().map(|r| role_extent(*r, seq_hi)).collect();
            let decl = ArrayDecl {
                name: format!("a{a}"),
                dims,
                base,
            };
            base += decl.len() as i64;
            arrays.push(decl);
        }

        // Core assignments.
        let num_stmts = 1 + self.rng.below(4);
        let targets: Vec<usize> = (0..shapes.len())
            .filter(|&a| {
                shapes[a].contains(if parallel {
                    &DimRole::Proc
                } else {
                    &DimRole::Seq
                })
            })
            .collect();
        let mut body = Vec::new();
        for _ in 0..num_stmts {
            let array = targets[self.rng.below(targets.len())];
            let target = self.access(array, &shapes[array], true, parallel);
            let mut reads = MAX_READS_PER_STMT;
            let value = self.expr(2, &mut reads, &shapes, parallel, &private_vars);
            body.push(Stmt::Assign(Assign { target, value }));
        }

        // Optionally a trailing conditional writing to a dedicated array
        // (no reads in the branches, so the branches can never contain
        // marked accesses).
        if self.rng.chance(0.4) {
            let shape = if parallel {
                vec![DimRole::Proc]
            } else {
                vec![DimRole::Seq]
            };
            let dims: Vec<usize> = shape.iter().map(|r| role_extent(*r, seq_hi)).collect();
            let cond_array = ArrayId(arrays.len());
            let decl = ArrayDecl {
                name: "c".to_string(),
                dims,
                base,
            };
            arrays.push(decl);
            let (var, equals) = if parallel && self.rng.chance(0.5) {
                (VarId(1), self.rng.range_u64(1, 3) as i64)
            } else {
                (
                    VarId(0),
                    self.rng.range_u64(seq_lo as u64, seq_hi as u64) as i64,
                )
            };
            let branch = |g: &mut Self| -> Vec<Stmt> {
                vec![Stmt::Assign(Assign {
                    target: g.access_for(cond_array, &shape, true, parallel),
                    value: g.scalar_expr(&private_vars),
                })]
            };
            let then_branch = branch(self);
            let else_branch = if self.rng.chance(0.5) {
                branch(self)
            } else {
                Vec::new()
            };
            body.push(Stmt::If {
                var,
                equals,
                then_branch,
                else_branch,
            });
        }

        FuzzCase {
            name: format!("seed{}-case{}", self.seed, idx),
            nest: LoopNest {
                arrays,
                seq_var: VarId(0),
                seq_lo,
                seq_hi,
                private_vars,
                body,
                var_names,
            },
            max_procs: if parallel { 4 } else { 1 },
            extra_values,
        }
    }

    /// A deliberately invalid nest exercising one compiler error path.
    /// `kind` cycles through the three rejection classes.
    #[must_use]
    pub fn near_invalid(&mut self, kind: u64) -> (FuzzCase, &'static str) {
        let mut generated = self.next_case();
        match kind % 3 {
            0 => {
                // More private variables than the register convention
                // holds.
                let n = 5 + self.rng.below(3);
                generated.case.nest.private_vars = (1..=n).map(VarId).collect();
                generated.case.nest.var_names = std::iter::once("k".to_string())
                    .chain((0..n).map(|i| format!("v{i}")))
                    .collect();
                (generated.case, "TooManyPrivateVars")
            }
            1 => {
                // A conditional before an assignment.
                generated.case.nest.body.insert(
                    0,
                    Stmt::If {
                        var: VarId(0),
                        equals: generated.case.nest.seq_lo,
                        then_branch: Vec::new(),
                        else_branch: Vec::new(),
                    },
                );
                (generated.case, "MisplacedConditional")
            }
            _ => {
                // A conditional whose branch re-reads a marked
                // (cross-processor carried) access: mirror the first core
                // assignment's cross-processor read inside a branch.
                let case = self.marked_conditional_case(generated.case);
                (case, "MarkedConditional")
            }
        }
    }

    fn marked_conditional_case(&mut self, mut case: FuzzCase) -> FuzzCase {
        // Build a guaranteed cross-processor carried pair: write
        // a[k][p], read a[k-1][p-1] — then repeat the read in a branch.
        let a = ArrayId(case.nest.arrays.len());
        let dims = vec![case.nest.seq_hi as usize + SEQ_HEADROOM, PROC_DIM];
        let base = case
            .nest
            .arrays
            .last()
            .map_or(ARRAY_BASE, |d| d.base + d.len() as i64);
        case.nest.arrays.push(ArrayDecl {
            name: "m".to_string(),
            dims,
            base,
        });
        if case.nest.private_vars.is_empty() {
            case.nest.private_vars = vec![VarId(1)];
            case.nest.var_names.push("p".to_string());
            case.max_procs = 2;
        }
        let k = case.nest.seq_var;
        let p = case.nest.private_vars[0];
        let marked_read = Expr::Access(ArrayAccess::new(
            a,
            vec![Subscript::var(k, -1), Subscript::var(p, -1)],
        ));
        let write = Stmt::Assign(Assign {
            target: ArrayAccess::new(a, vec![Subscript::var(k, 0), Subscript::var(p, 0)]),
            value: marked_read.clone(),
        });
        // Strip any existing conditionals, append write + marked branch.
        case.nest.body.retain(|s| matches!(s, Stmt::Assign(_)));
        case.nest.body.push(write);
        case.nest.body.push(Stmt::If {
            var: p,
            equals: 1,
            then_branch: vec![Stmt::Assign(Assign {
                target: ArrayAccess::new(a, vec![Subscript::var(k, 0), Subscript::var(p, 1)]),
                value: marked_read,
            })],
            else_branch: Vec::new(),
        });
        case
    }

    fn array_shape(&mut self, parallel: bool, target_capable: bool) -> Vec<DimRole> {
        if parallel {
            if target_capable {
                return vec![DimRole::Seq, DimRole::Proc];
            }
            match self.rng.below(6) {
                0 | 1 => vec![DimRole::Seq, DimRole::Proc],
                2 => vec![DimRole::Proc],
                3 => vec![DimRole::Fixed, DimRole::Proc],
                4 => vec![DimRole::Seq],
                _ => vec![DimRole::Fixed],
            }
        } else {
            if target_capable {
                return vec![DimRole::Seq];
            }
            match self.rng.below(4) {
                0 | 1 => vec![DimRole::Seq],
                2 => vec![DimRole::Seq, DimRole::Fixed],
                _ => vec![DimRole::Fixed],
            }
        }
    }

    fn access(
        &mut self,
        array: usize,
        shape: &[DimRole],
        target: bool,
        parallel: bool,
    ) -> ArrayAccess {
        self.access_for(ArrayId(array), shape, target, parallel)
    }

    fn access_for(
        &mut self,
        array: ArrayId,
        shape: &[DimRole],
        target: bool,
        parallel: bool,
    ) -> ArrayAccess {
        let _ = parallel;
        let subs = shape
            .iter()
            .map(|role| match role {
                DimRole::Seq => {
                    let offset = if target {
                        // Targets stay at k or k+1 so every iteration
                        // writes fresh elements.
                        i64::from(self.rng.chance(0.25))
                    } else {
                        self.rng.range_u64(0, 3) as i64 - 2
                    };
                    Subscript::var(VarId(0), offset)
                }
                DimRole::Proc => {
                    let offset = if target && self.rng.chance(0.7) {
                        0
                    } else {
                        self.rng.range_u64(0, 2) as i64 - 1
                    };
                    Subscript::var(VarId(1), offset)
                }
                DimRole::Fixed => {
                    Subscript::constant(self.rng.range_u64(0, FIXED_DIM as u64 - 1) as i64)
                }
            })
            .collect();
        ArrayAccess::new(array, subs)
    }

    fn expr(
        &mut self,
        depth: usize,
        reads: &mut usize,
        shapes: &[Vec<DimRole>],
        parallel: bool,
        private_vars: &[VarId],
    ) -> Expr {
        if depth == 0 || self.rng.chance(0.35) {
            return self.leaf(reads, shapes, parallel, private_vars);
        }
        match self.rng.below(10) {
            0..=3 => Expr::add(
                self.expr(depth - 1, reads, shapes, parallel, private_vars),
                self.expr(depth - 1, reads, shapes, parallel, private_vars),
            ),
            4..=6 => Expr::sub(
                self.expr(depth - 1, reads, shapes, parallel, private_vars),
                self.expr(depth - 1, reads, shapes, parallel, private_vars),
            ),
            7 | 8 => Expr::mul(
                self.expr(depth - 1, reads, shapes, parallel, private_vars),
                self.leaf(reads, shapes, parallel, private_vars),
            ),
            _ => Expr::div_const(
                self.expr(depth - 1, reads, shapes, parallel, private_vars),
                self.rng.range_u64(2, 4) as i64,
            ),
        }
    }

    fn leaf(
        &mut self,
        reads: &mut usize,
        shapes: &[Vec<DimRole>],
        parallel: bool,
        private_vars: &[VarId],
    ) -> Expr {
        if *reads > 0 && self.rng.chance(0.55) {
            *reads -= 1;
            let array = self.rng.below(shapes.len());
            let shape = shapes[array].clone();
            return Expr::Access(self.access(array, &shape, false, parallel));
        }
        self.scalar_expr(private_vars)
    }

    /// A leaf expression with no array reads: a variable or a constant.
    fn scalar_expr(&mut self, private_vars: &[VarId]) -> Expr {
        let vars: Vec<VarId> = std::iter::once(VarId(0))
            .chain(private_vars.iter().copied())
            .collect();
        if self.rng.chance(0.5) {
            Expr::Var(vars[self.rng.below(vars.len())])
        } else {
            Expr::Const(self.rng.range_u64(0, 12) as i64 - 5)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = Generator::new(11);
        let mut b = Generator::new(11);
        for _ in 0..10 {
            assert_eq!(a.next_case().case, b.next_case().case);
        }
    }

    #[test]
    fn accepted_cases_are_deterministic_and_in_bounds() {
        let mut g = Generator::new(3);
        for _ in 0..50 {
            let c = g.next_case().case;
            assert_eq!(soundness(&c.nest), Soundness::Deterministic);
            assert!(c.nest.private_vars.len() <= fuzzy_compiler::driver::MAX_PRIVATE_VARS);
            // Every subscript stays inside its dimension for all variable
            // values the case can produce (checked exhaustively by the
            // interpreter elsewhere; here just the static ranges).
            for decl in &c.nest.arrays {
                assert!(!decl.is_empty());
            }
        }
    }

    #[test]
    fn filter_rejects_racy_candidates_eventually() {
        // Over many draws the raw candidate stream must contain racy
        // nests (otherwise the filter is vacuous).
        let mut g = Generator::new(5);
        let mut rejected = 0;
        for _ in 0..50 {
            rejected += g.next_case().rejected;
        }
        assert!(rejected > 0, "soundness filter never fired in 50 draws");
    }
}
