//! Differential fuzzing harness for the compiler→simulator pipeline.
//!
//! The paper's compiler transforms (three-phase reordering, loop
//! distribution, unrolling, multi-version loops, cycle shrinking — Sec. 4)
//! all claim to grow barrier regions *without changing program semantics*.
//! This crate checks that claim mechanically:
//!
//! 1. [`generate`] draws seeded random [`fuzzy_compiler::ast::LoopNest`]s
//!    whose parallel execution is provably deterministic (the dependence
//!    analysis itself filters candidates), so the sequential reference is
//!    a valid oracle;
//! 2. [`interp`] executes a nest directly on the AST, mirroring the
//!    simulator ALU's wrapping arithmetic, to produce the golden
//!    final-memory image;
//! 3. [`diff`] compiles the nest under the full option matrix (processor
//!    count × reorder × unroll × distribution × multi-version ×
//!    cycle-shrink), runs each program on the cycle-level machine, and
//!    compares memory images, schedule/DAG consistency, region sizes and
//!    stall monotonicity;
//! 4. [`shrink`] minimizes diverging cases and [`corpus`] persists them as
//!    JSON repros replayed by `cargo test`;
//! 5. [`campaign`] ties it together for the CLI bin, CI smoke stage and
//!    tests.

pub mod campaign;
pub mod corpus;
pub mod diff;
pub mod generate;
pub mod interp;
pub mod shrink;

pub use campaign::{run_campaign, CampaignOptions, CampaignStats};
pub use diff::{check_case, Check, DiffOptions, Divergence};
pub use generate::{FuzzCase, Generator};
