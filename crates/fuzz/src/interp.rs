//! Sequential reference interpreter: executes a [`LoopNest`] directly on
//! the AST to produce the golden final-memory image the compiled parallel
//! program must reproduce.
//!
//! The interpreter models the paper's execution semantics: one outer
//! iteration at a time, with an (implicit) barrier between iterations —
//! inside an iteration every processor runs the body with its own private
//! environment, and processors are stepped in index order. That order is
//! only an oracle for nests the generator's soundness filter accepted
//! (no cross-processor dependences within an iteration), which is exactly
//! the class the differential driver feeds it.
//!
//! All arithmetic is **wrapping** and division **truncating**, mirroring
//! the simulator ALU (`crates/sim/src/machine.rs`) instruction for
//! instruction, so a divergence always implicates the pipeline rather
//! than the oracle.

use std::collections::BTreeMap;

use fuzzy_compiler::ast::{ArrayAccess, Expr, LoopNest, Stmt, VarId};

/// Interpreter failure: the nest stepped outside a declared array. The
/// generator keeps subscripts in bounds by construction, so hitting this
/// means the generator (not the pipeline) is broken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfBounds {
    /// Array name from the nest declaration.
    pub array: String,
    /// Dimension index of the violation.
    pub dim: usize,
    /// The offending subscript value.
    pub value: i64,
}

impl std::fmt::Display for OutOfBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "subscript {} out of bounds in dim {} of array {}",
            self.value, self.dim, self.array
        )
    }
}

/// Deterministic initial value for word `w` of the shared image. Poked
/// identically into the simulator before each run so reads of
/// never-written elements still diff meaningfully.
#[must_use]
pub fn init_word(w: usize) -> i64 {
    ((w as i64).wrapping_mul(37) % 29) - 13
}

/// The half-open word span `[lo, hi)` covered by the nest's arrays.
#[must_use]
pub fn memory_span(nest: &LoopNest) -> (usize, usize) {
    let lo = nest.arrays.iter().map(|d| d.base).min().unwrap_or(0);
    let hi = nest
        .arrays
        .iter()
        .map(|d| d.base + d.len() as i64)
        .max()
        .unwrap_or(0);
    (lo as usize, hi as usize)
}

/// The golden image: array-span words after sequentially executing the
/// nest for the given per-processor private-variable environments.
///
/// `per_proc` holds one `(var, value)` list per processor; an empty outer
/// list means "one processor, no privates". Iteration `k` runs every
/// processor's body before `k + seq_step` begins (the barrier point).
pub fn reference_image(
    nest: &LoopNest,
    per_proc: &[Vec<(VarId, i64)>],
    seq_step: i64,
) -> Result<BTreeMap<usize, i64>, OutOfBounds> {
    let (lo, hi) = memory_span(nest);
    let mut mem: BTreeMap<usize, i64> = (lo..hi).map(|w| (w, init_word(w))).collect();
    let procs: Vec<Vec<(VarId, i64)>> = if per_proc.is_empty() {
        vec![Vec::new()]
    } else {
        per_proc.to_vec()
    };
    let mut k = nest.seq_lo;
    while k <= nest.seq_hi {
        for inits in &procs {
            let mut env: BTreeMap<VarId, i64> = inits.iter().copied().collect();
            env.insert(nest.seq_var, k);
            run_stmts(nest, &nest.body, &env, &mut mem)?;
        }
        k += seq_step;
    }
    Ok(mem)
}

fn run_stmts(
    nest: &LoopNest,
    stmts: &[Stmt],
    env: &BTreeMap<VarId, i64>,
    mem: &mut BTreeMap<usize, i64>,
) -> Result<(), OutOfBounds> {
    for stmt in stmts {
        match stmt {
            Stmt::Assign(a) => {
                let value = eval(nest, &a.value, env, mem)?;
                let addr = resolve(nest, &a.target, env)?;
                mem.insert(addr, value);
            }
            Stmt::If {
                var,
                equals,
                then_branch,
                else_branch,
            } => {
                let taken = env.get(var).copied().unwrap_or(0) == *equals;
                let branch = if taken { then_branch } else { else_branch };
                run_stmts(nest, branch, env, mem)?;
            }
        }
    }
    Ok(())
}

fn eval(
    nest: &LoopNest,
    expr: &Expr,
    env: &BTreeMap<VarId, i64>,
    mem: &BTreeMap<usize, i64>,
) -> Result<i64, OutOfBounds> {
    Ok(match expr {
        Expr::Const(c) => *c,
        Expr::Var(v) => env.get(v).copied().unwrap_or(0),
        Expr::Access(access) => {
            let addr = resolve(nest, access, env)?;
            mem.get(&addr).copied().unwrap_or_else(|| init_word(addr))
        }
        Expr::Add(l, r) => eval(nest, l, env, mem)?.wrapping_add(eval(nest, r, env, mem)?),
        Expr::Sub(l, r) => eval(nest, l, env, mem)?.wrapping_sub(eval(nest, r, env, mem)?),
        Expr::Mul(l, r) => eval(nest, l, env, mem)?.wrapping_mul(eval(nest, r, env, mem)?),
        Expr::DivConst(l, c) => eval(nest, l, env, mem)?.wrapping_div(*c),
    })
}

/// Resolves an access to a word address, bounds-checking each dimension.
fn resolve(
    nest: &LoopNest,
    access: &ArrayAccess,
    env: &BTreeMap<VarId, i64>,
) -> Result<usize, OutOfBounds> {
    let decl = nest.array(access.array);
    let mut addr = decl.base;
    for (d, sub) in access.subs.iter().enumerate() {
        let value = sub.var.map_or(0, |v| env.get(&v).copied().unwrap_or(0)) + sub.offset;
        if value < 0 || value >= decl.dims[d] as i64 {
            return Err(OutOfBounds {
                array: decl.name.clone(),
                dim: d,
                value,
            });
        }
        addr = addr.wrapping_add(decl.stride(d).wrapping_mul(value));
    }
    Ok(addr as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_compiler::ast::{ArrayDecl, Assign, Subscript};

    /// `a[k] = a[k-1] + 2` over k = 1..=4 starting from the deterministic
    /// init image: a hand-run recurrence.
    #[test]
    fn interprets_a_carried_recurrence() {
        let nest = LoopNest {
            arrays: vec![ArrayDecl {
                name: "a".into(),
                dims: vec![8],
                base: 100,
            }],
            seq_var: VarId(0),
            seq_lo: 1,
            seq_hi: 4,
            private_vars: vec![],
            body: vec![Stmt::Assign(Assign {
                target: ArrayAccess::new(
                    fuzzy_compiler::ast::ArrayId(0),
                    vec![Subscript::var(VarId(0), 0)],
                ),
                value: Expr::add(
                    Expr::Access(ArrayAccess::new(
                        fuzzy_compiler::ast::ArrayId(0),
                        vec![Subscript::var(VarId(0), -1)],
                    )),
                    Expr::Const(2),
                ),
            })],
            var_names: vec!["k".into()],
        };
        let mem = reference_image(&nest, &[], 1).unwrap();
        let mut expect = init_word(100);
        for k in 1..=4usize {
            expect += 2;
            assert_eq!(mem[&(100 + k)], expect);
        }
        assert_eq!(mem[&100], init_word(100));
    }

    #[test]
    fn out_of_bounds_is_reported_not_wrapped() {
        let nest = LoopNest {
            arrays: vec![ArrayDecl {
                name: "a".into(),
                dims: vec![4],
                base: 64,
            }],
            seq_var: VarId(0),
            seq_lo: 0,
            seq_hi: 5,
            private_vars: vec![],
            body: vec![Stmt::Assign(Assign {
                target: ArrayAccess::new(
                    fuzzy_compiler::ast::ArrayId(0),
                    vec![Subscript::var(VarId(0), 0)],
                ),
                value: Expr::Const(1),
            })],
            var_names: vec!["k".into()],
        };
        let err = reference_image(&nest, &[], 1).unwrap_err();
        assert_eq!(err.dim, 0);
        assert_eq!(err.value, 4);
    }
}
