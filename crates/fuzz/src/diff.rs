//! The differential driver: compiles a [`FuzzCase`] under the full option
//! matrix, runs each program on the cycle-level simulator, and compares
//! against the sequential reference interpreter.
//!
//! Checked properties, per ISSUE 7:
//!
//! * **(a) memory** — the final shared-memory image of every compiled
//!   configuration equals the reference image;
//! * **(b) dag** — the reordered instruction schedule is a permutation of
//!   the lowered body that respects its dependence DAG;
//! * **(c) region** — reordering never *grows* the non-barrier region;
//! * **(d) stalls** — under injected cache-miss drift, total stall cycles
//!   with reordering are no worse than without (summed over several drift
//!   seeds to keep the check off the noise floor).
//!
//! Matrix axes: processor count (1..=`max_procs`) × `reorder` on/off ×
//! outer-loop unrolling × loop distribution × multi-version chunking ×
//! cycle shrinking. Transform axes re-check the soundness filter on the
//! transformed nest where the transform itself can manufacture
//! cross-processor within-iteration dependences (unrolling), and skip the
//! configuration when the transform's own preconditions don't hold — a
//! skip is not a divergence.

use std::collections::BTreeMap;

use fuzzy_compiler::ast::{LoopNest, Stmt};
use fuzzy_compiler::dag::DepDag;
use fuzzy_compiler::deps;
use fuzzy_compiler::driver::{self, CompileOptions, CompiledLoop};
use fuzzy_compiler::lower::lower_body;
use fuzzy_compiler::transform::{cycle_shrink, distribution, multiversion, unroll};
use fuzzy_sim::builder::MachineBuilder;
use fuzzy_sim::memory::MemoryConfig;
use fuzzy_sim::program::Program;

use crate::generate::{soundness, FuzzCase, Soundness};
use crate::interp::{init_word, memory_span, reference_image};

/// Simulator memory size for fuzz runs (arrays live far below the spill
/// region at `CompileOptions::default().spill_base`).
const MEM_WORDS: usize = 1 << 16;

/// Knobs for one differential check.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Cycle budget per simulated run.
    pub sim_fuel: u64,
    /// Whether to run the (slow, drift-injecting) stall monotonicity
    /// check (d).
    pub check_stalls: bool,
    /// Base seed for the drift runs of check (d).
    pub drift_seed: u64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            sim_fuel: 10_000_000,
            check_stalls: true,
            drift_seed: 7,
        }
    }
}

/// Which property a divergence violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Check {
    /// Final memory image differs from the reference (property a).
    Memory,
    /// Schedule violates the dependence DAG (property b).
    DagOrder,
    /// Reordering grew the non-barrier region (property c).
    RegionGrowth,
    /// Stall cycles grew with reordering on (property d).
    Stalls,
    /// The compiler rejected (or panicked on) a valid nest, or the
    /// simulator failed to run its output to completion.
    Pipeline,
}

impl std::fmt::Display for Check {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Check::Memory => "memory",
            Check::DagOrder => "dag-order",
            Check::RegionGrowth => "region-growth",
            Check::Stalls => "stalls",
            Check::Pipeline => "pipeline",
        };
        f.write_str(s)
    }
}

/// One divergence found by [`check_case`].
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Matrix coordinates, e.g. `procs=2 reorder=on unroll=2`.
    pub config: String,
    /// The violated property.
    pub check: Check,
    /// Human-readable detail (first differing word, DAG edge, …).
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.config, self.check, self.detail)
    }
}

/// Runs the whole option matrix over `case`. Empty result = the case
/// passed every configuration.
#[must_use]
pub fn check_case(case: &FuzzCase, opts: &DiffOptions) -> Vec<Divergence> {
    let mut out = Vec::new();
    base_matrix(case, opts, &mut out);
    unroll_axis(case, opts, &mut out);
    distribution_axis(case, opts, &mut out);
    multiversion_axis(case, opts, &mut out);
    cycle_shrink_axis(case, opts, &mut out);
    if opts.check_stalls {
        stall_axis(case, opts, &mut out);
    }
    out
}

/// Axis 1: processor count × reorder, on the untransformed nest.
fn base_matrix(case: &FuzzCase, opts: &DiffOptions, out: &mut Vec<Divergence>) {
    for procs in 1..=case.max_procs {
        let inits = case.inits(procs);
        for reorder in [false, true] {
            let config = format!("procs={procs} reorder={}", onoff(reorder));
            let copts = CompileOptions {
                reorder,
                ..CompileOptions::default()
            };
            let compiled = match compile(&case.nest, &inits, &copts, &config, out) {
                Some(c) => c,
                None => continue,
            };
            if reorder {
                check_dag(&case.nest, &compiled, &config, out);
                if compiled.after.non_barrier_len() > compiled.before.non_barrier_len() {
                    out.push(Divergence {
                        config: config.clone(),
                        check: Check::RegionGrowth,
                        detail: format!(
                            "non-barrier region grew {} -> {}",
                            compiled.before.non_barrier_len(),
                            compiled.after.non_barrier_len()
                        ),
                    });
                }
            }
            diff_memory(&case.nest, &inits, 1, compiled.program, opts, &config, out);
        }
    }
}

/// Axis 2: outer-loop unrolling (factors 2 and 4 where the trip count
/// divides). Skipped for bodies with conditionals — replication would put
/// an `If` ahead of assignments, which the driver rightly rejects — and
/// for unrolled nests the soundness filter rejects (a carried distance
/// smaller than the factor becomes a within-iteration cross-processor
/// dependence the barrier cannot order).
fn unroll_axis(case: &FuzzCase, opts: &DiffOptions, out: &mut Vec<Divergence>) {
    if case.nest.body.iter().any(|s| matches!(s, Stmt::If { .. })) {
        return;
    }
    let trip = (case.nest.seq_hi - case.nest.seq_lo + 1) as usize;
    for factor in [2usize, 4] {
        if !trip.is_multiple_of(factor) {
            continue;
        }
        let unrolled = unroll::unroll_seq(&case.nest, factor);
        if soundness(&unrolled.nest) != Soundness::Deterministic {
            continue;
        }
        for procs in [1, case.max_procs] {
            let inits = case.inits(procs);
            let config = format!("procs={procs} reorder=on unroll={factor}");
            let copts = CompileOptions {
                reorder: true,
                seq_step: unrolled.step,
                ..CompileOptions::default()
            };
            if let Some(compiled) = compile(&unrolled.nest, &inits, &copts, &config, out) {
                // Reference stays the *original* nest: unrolling must not
                // change semantics.
                diff_memory(&case.nest, &inits, 1, compiled.program, opts, &config, out);
            }
        }
    }
}

/// Axis 3: loop distribution. The distributed per-iteration statement
/// order is the concatenation of the groups; compiling that permuted body
/// must still reproduce the original nest's reference image, and marked
/// (cross-processor) accesses must all live in pinned groups.
fn distribution_axis(case: &FuzzCase, opts: &DiffOptions, out: &mut Vec<Divergence>) {
    if case.nest.body.iter().any(|s| matches!(s, Stmt::If { .. })) {
        return;
    }
    let dist = distribution::distribute(&case.nest);
    let info = deps::analyze(&case.nest);
    for access in info.marked_for_carried() {
        let group = dist
            .groups
            .iter()
            .position(|members| members.contains(&access.stmt));
        if let Some(g) = group {
            if !dist.pinned[g] {
                out.push(Divergence {
                    config: "distribute".into(),
                    check: Check::Pipeline,
                    detail: format!(
                        "marked access in stmt {} landed in unpinned group {g}",
                        access.stmt
                    ),
                });
            }
        }
    }
    let order: Vec<usize> = dist.groups.iter().flatten().copied().collect();
    if order.iter().copied().eq(0..case.nest.body.len()) {
        return; // identity permutation: nothing new to test
    }
    let permuted = LoopNest {
        body: order.iter().map(|&s| case.nest.body[s].clone()).collect(),
        ..case.nest.clone()
    };
    for procs in [1, case.max_procs] {
        let inits = case.inits(procs);
        let config = format!("procs={procs} reorder=on distribute={order:?}");
        if let Some(compiled) = compile(&permuted, &inits, &CompileOptions::default(), &config, out)
        {
            // Reference is the *original* statement order.
            diff_memory(&case.nest, &inits, 1, compiled.program, opts, &config, out);
        }
    }
}

/// Axis 4: multi-version chunking. The outer range is split into two
/// chunks compiled separately (the paper's Fig. 12 versions select the
/// barrier placement per chunk position); running them back-to-back with
/// the memory image carried across must equal the single-loop reference.
fn multiversion_axis(case: &FuzzCase, opts: &DiffOptions, out: &mut Vec<Divergence>) {
    let trip = (case.nest.seq_hi - case.nest.seq_lo + 1) as usize;
    if trip < 2 {
        return;
    }
    // Fig. 12 placement: a processor's chunk opens with a barrier on its
    // first iteration and closes with one after its last; intervening
    // iterations carry none.
    let versions = multiversion::chunk_versions(2);
    if !versions[0].barrier_before() || !versions[1].barrier_after() {
        out.push(Divergence {
            config: "multiversion".into(),
            check: Check::Pipeline,
            detail: format!("chunk versions misplace the outer barriers: {versions:?}"),
        });
    }
    let mid = case.nest.seq_lo + trip as i64 / 2;
    let chunks = [
        LoopNest {
            seq_hi: mid - 1,
            ..case.nest.clone()
        },
        LoopNest {
            seq_lo: mid,
            ..case.nest.clone()
        },
    ];
    let procs = case.max_procs;
    let inits = case.inits(procs);
    let config = format!("procs={procs} reorder=on multiversion=2chunks");
    let (lo, hi) = memory_span(&case.nest);
    let mut image: BTreeMap<usize, i64> = (lo..hi).map(|w| (w, init_word(w))).collect();
    for chunk in &chunks {
        let compiled = match compile(chunk, &inits, &CompileOptions::default(), &config, out) {
            Some(c) => c,
            None => return,
        };
        match run_program(compiled.program, &image, lo, hi, opts.sim_fuel) {
            Ok(next) => image = next,
            Err(detail) => {
                out.push(Divergence {
                    config,
                    check: Check::Pipeline,
                    detail,
                });
                return;
            }
        }
    }
    let reference = match reference_image(&case.nest, &inits, 1) {
        Ok(r) => r,
        Err(e) => {
            out.push(Divergence {
                config,
                check: Check::Pipeline,
                detail: format!("reference interpreter: {e}"),
            });
            return;
        }
    };
    push_memory_diff(&reference, &image, &config, out);
}

/// Axis 5: cycle shrinking on serial nests with a minimum carried
/// distance > 1: groups of `d` iterations run on `d` processors with
/// group barriers; the result must equal the serial reference.
fn cycle_shrink_axis(case: &FuzzCase, opts: &DiffOptions, out: &mut Vec<Divergence>) {
    if case.is_parallel() {
        return;
    }
    let info = deps::analyze(&case.nest);
    let Some(shrunk) = cycle_shrink::shrink(&info) else {
        return;
    };
    // Ragged trip counts give the group's processors unequal iteration
    // counts and deadlock the final barrier — `applies_to` is the
    // transform's divisibility gate (found by this fuzzer).
    if !shrunk.applies_to(&case.nest) {
        return;
    }
    let config = format!("cycle-shrink group={}", shrunk.group_size);
    let inits = shrunk.per_proc_inits(&case.nest);
    let copts = shrunk.options(CompileOptions::default());
    let compiled =
        match driver::compile_nest_with_marks(&case.nest, &inits, &shrunk.marked(&info), &copts) {
            Ok(c) => c,
            Err(e) => {
                out.push(Divergence {
                    config,
                    check: Check::Pipeline,
                    detail: format!("compile error: {e}"),
                });
                return;
            }
        };
    // Reference: plain serial execution (the transform's contract).
    diff_memory(&case.nest, &[], 1, compiled.program, opts, &config, out);
}

/// Per-seed completion-cycle allowance for check (d). Reordering permutes
/// the memory-access stream, so the per-access miss RNG assigns the same
/// miss *sequence* to different instructions; that reassignment jitters
/// completion by a cycle or two without any semantic difference.
const STALL_SLACK_PER_SEED: u64 = 4;

/// Proportional completion-cycle allowance for check (d), in percent.
/// Reordering concentrates memory accesses in the prefix region; with the
/// sim's banked hot-spot memory (`addr % banks`, requests queue behind a
/// busy bank) the processors then collide on banks in lockstep, raising
/// `busy_cycles` by a few percent even at `miss_rate = 0`. The campaign's
/// worst case was ~2% (barrier stalls *fell* from 120 to 107 while bank
/// queueing grew — the mechanism did its job; the memory system charged
/// for the clustering). A genuine reorderer regression (spilled registers,
/// serialized regions) costs far more than 5%.
const STALL_SLACK_PERCENT: u64 = 5;

/// Axis 6 (check d): under injected cache-miss drift, reordering must not
/// make the program materially *slower* — completion cycles with
/// reordering on are bounded by cycles with it off plus a small allowance
/// (absolute per-seed jitter + [`STALL_SLACK_PERCENT`] for bank
/// clustering), summed over three drift seeds so one lucky miss pattern
/// cannot flip the comparison.
///
/// Raw barrier-stall counts are deliberately NOT compared one-to-one: the
/// fuzz campaign showed reordering shrinks the non-barrier region, which
/// makes processors reach the sync wait-point earlier and re-labels idle
/// cycles as barrier stalls while total completion time is unchanged.
/// Elapsed cycles are what the paper's mechanism actually promises to
/// protect.
fn stall_axis(case: &FuzzCase, opts: &DiffOptions, out: &mut Vec<Divergence>) {
    let procs = case.max_procs;
    let inits = case.inits(procs);
    let mut totals = [0u64; 2];
    for (slot, reorder) in [false, true].into_iter().enumerate() {
        let copts = CompileOptions {
            reorder,
            ..CompileOptions::default()
        };
        let config = format!("procs={procs} stalls reorder={}", onoff(reorder));
        let compiled = match compile(&case.nest, &inits, &copts, &config, out) {
            Some(c) => c,
            None => return,
        };
        for round in 0..3u64 {
            let built = MachineBuilder::new(compiled.program.clone())
                .memory(MemoryConfig {
                    size_words: MEM_WORDS,
                    ..Default::default()
                })
                .miss_rate(0.3)
                .miss_penalty(20)
                .seed(opts.drift_seed.wrapping_add(round))
                .build();
            let mut m = match built {
                Ok(m) => m,
                Err(e) => {
                    out.push(Divergence {
                        config,
                        check: Check::Pipeline,
                        detail: format!("build error: {e:?}"),
                    });
                    return;
                }
            };
            match m.run(opts.sim_fuel) {
                Ok(outcome) if outcome.is_halted() => {
                    totals[slot] += m.stats().cycles;
                }
                Ok(outcome) => {
                    out.push(Divergence {
                        config,
                        check: Check::Pipeline,
                        detail: format!("run did not halt: {outcome:?}"),
                    });
                    return;
                }
                Err(e) => {
                    out.push(Divergence {
                        config,
                        check: Check::Pipeline,
                        detail: format!("sim error: {e:?}"),
                    });
                    return;
                }
            }
        }
    }
    let allowance = 3 * STALL_SLACK_PER_SEED + totals[0] * STALL_SLACK_PERCENT / 100;
    if totals[1] > totals[0] + allowance {
        out.push(Divergence {
            config: format!("procs={procs} drift_seed={}", opts.drift_seed),
            check: Check::Stalls,
            detail: format!(
                "completion cycles grew with reordering: {} -> {} (summed over 3 seeds)",
                totals[0], totals[1]
            ),
        });
    }
}

/// Compiles, converting errors into `Pipeline` divergences (the generator
/// only feeds valid nests, so any rejection indicts the pipeline).
fn compile(
    nest: &LoopNest,
    inits: &[Vec<(fuzzy_compiler::ast::VarId, i64)>],
    copts: &CompileOptions,
    config: &str,
    out: &mut Vec<Divergence>,
) -> Option<CompiledLoop> {
    match driver::compile_nest(nest, inits, copts) {
        Ok(c) => Some(c),
        Err(e) => {
            out.push(Divergence {
                config: config.to_string(),
                check: Check::Pipeline,
                detail: format!("compile error on valid nest: {e}"),
            });
            None
        }
    }
}

/// Runs `program` against the reference for `(nest, inits, seq_step)` and
/// reports the first differing words.
fn diff_memory(
    nest: &LoopNest,
    inits: &[Vec<(fuzzy_compiler::ast::VarId, i64)>],
    seq_step: i64,
    program: Program,
    opts: &DiffOptions,
    config: &str,
    out: &mut Vec<Divergence>,
) {
    let reference = match reference_image(nest, inits, seq_step) {
        Ok(r) => r,
        Err(e) => {
            out.push(Divergence {
                config: config.to_string(),
                check: Check::Pipeline,
                detail: format!("reference interpreter: {e}"),
            });
            return;
        }
    };
    let (lo, hi) = memory_span(nest);
    let initial: BTreeMap<usize, i64> = (lo..hi).map(|w| (w, init_word(w))).collect();
    match run_program(program, &initial, lo, hi, opts.sim_fuel) {
        Ok(actual) => push_memory_diff(&reference, &actual, config, out),
        Err(detail) => out.push(Divergence {
            config: config.to_string(),
            check: Check::Pipeline,
            detail,
        }),
    }
}

fn push_memory_diff(
    reference: &BTreeMap<usize, i64>,
    actual: &BTreeMap<usize, i64>,
    config: &str,
    out: &mut Vec<Divergence>,
) {
    let diffs: Vec<String> = reference
        .iter()
        .filter(|(w, v)| actual.get(*w) != Some(*v))
        .take(4)
        .map(|(w, v)| {
            format!(
                "[{w}] expected {v} got {}",
                actual.get(w).copied().unwrap_or(0)
            )
        })
        .collect();
    if !diffs.is_empty() {
        out.push(Divergence {
            config: config.to_string(),
            check: Check::Memory,
            detail: diffs.join("; "),
        });
    }
}

/// Runs a program with `initial` poked into `[lo, hi)` and returns that
/// span's final words.
fn run_program(
    program: Program,
    initial: &BTreeMap<usize, i64>,
    lo: usize,
    hi: usize,
    fuel: u64,
) -> Result<BTreeMap<usize, i64>, String> {
    let preload: Vec<(usize, i64)> = initial.iter().map(|(&w, &v)| (w, v)).collect();
    let mut m = MachineBuilder::new(program)
        .memory(MemoryConfig {
            size_words: MEM_WORDS,
            ..Default::default()
        })
        .preload(preload)
        .build()
        .map_err(|e| format!("build error: {e:?}"))?;
    let outcome = m.run(fuel).map_err(|e| format!("sim error: {e:?}"))?;
    if !outcome.is_halted() {
        return Err(format!("run did not halt: {outcome:?}"));
    }
    Ok((lo..hi).map(|w| (w, m.memory().peek(w))).collect())
}

/// Check (b): the reordered schedule must be a permutation of the lowered
/// body that respects its dependence DAG.
fn check_dag(nest: &LoopNest, compiled: &CompiledLoop, config: &str, out: &mut Vec<Divergence>) {
    let info = deps::analyze(nest);
    let marked = info.marked_for_carried();
    let first_if = nest
        .body
        .iter()
        .position(|s| matches!(s, Stmt::If { .. }))
        .unwrap_or(nest.body.len());
    let core_nest = LoopNest {
        body: nest.body[..first_if].to_vec(),
        ..nest.clone()
    };
    let body = lower_body(&core_nest, &marked);
    let dag = DepDag::build(&body.instrs);

    // Map each scheduled instruction back to an original index (FIFO over
    // equal instructions — duplicates are interchangeable for the DAG).
    let scheduled = compiled.after.in_order();
    let mut used = vec![false; body.instrs.len()];
    let mut order = Vec::with_capacity(scheduled.len());
    for ai in &scheduled {
        let found =
            body.instrs.iter().enumerate().position(|(i, orig)| {
                !used[i] && orig.instr == ai.instr && orig.marked == ai.marked
            });
        match found {
            Some(i) => {
                used[i] = true;
                order.push(i);
            }
            None => {
                out.push(Divergence {
                    config: config.to_string(),
                    check: Check::DagOrder,
                    detail: format!("scheduled instruction not in lowered body: {:?}", ai.instr),
                });
                return;
            }
        }
    }
    if order.len() != body.instrs.len() {
        out.push(Divergence {
            config: config.to_string(),
            check: Check::DagOrder,
            detail: format!(
                "schedule has {} instructions, lowered body has {}",
                order.len(),
                body.instrs.len()
            ),
        });
        return;
    }
    if !dag.respects(&order) {
        out.push(Divergence {
            config: config.to_string(),
            check: Check::DagOrder,
            detail: format!("schedule violates dependence DAG: order {order:?}"),
        });
    }
}

fn onoff(b: bool) -> &'static str {
    if b {
        "on"
    } else {
        "off"
    }
}
