//! `fuzz` — differential fuzzing CLI for the compiler→simulator pipeline.
//!
//! ```text
//! fuzz [--seed N] [--iters N] [--no-shrink] [--no-stalls]
//!      [--replay PATH] [--corpus-out DIR] [--stats-json PATH]
//! ```
//!
//! Default mode generates `--iters` cases from `--seed`, runs each through
//! the full differential matrix, shrinks failures, and (with
//! `--corpus-out`) writes repros as JSON. `--replay` re-runs a corpus file
//! or directory instead of generating. Exit status is non-zero when any
//! divergence (or unclean compiler rejection) is found.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fuzzy_fuzz::campaign::{run_campaign, CampaignOptions};
use fuzzy_fuzz::corpus;
use fuzzy_fuzz::diff::check_case;

struct Args {
    seed: u64,
    iters: u64,
    shrink: bool,
    check_stalls: bool,
    replay: Option<PathBuf>,
    corpus_out: Option<PathBuf>,
    stats_json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 7,
        iters: 200,
        shrink: true,
        check_stalls: true,
        replay: None,
        corpus_out: None,
        stats_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--iters" => {
                args.iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
            }
            "--shrink" => args.shrink = true,
            "--no-shrink" => args.shrink = false,
            "--no-stalls" => args.check_stalls = false,
            "--replay" => args.replay = Some(PathBuf::from(value("--replay")?)),
            "--corpus-out" => args.corpus_out = Some(PathBuf::from(value("--corpus-out")?)),
            "--stats-json" => args.stats_json = Some(PathBuf::from(value("--stats-json")?)),
            "--help" | "-h" => {
                println!(
                    "usage: fuzz [--seed N] [--iters N] [--no-shrink] [--no-stalls] \
                     [--replay PATH] [--corpus-out DIR] [--stats-json PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.replay {
        return replay(path, &args);
    }
    campaign(&args)
}

fn campaign(args: &Args) -> ExitCode {
    let opts = CampaignOptions {
        seed: args.seed,
        iters: args.iters,
        shrink: args.shrink,
        diff: fuzzy_fuzz::DiffOptions {
            check_stalls: args.check_stalls,
            drift_seed: args.seed,
            ..fuzzy_fuzz::DiffOptions::default()
        },
        ..CampaignOptions::default()
    };
    let stats = run_campaign(&opts, |i, divergences| {
        for d in divergences {
            eprintln!("case {i}: {d}");
        }
    });
    println!(
        "fuzz: seed {} | {} cases | {} rejected candidates | {} near-invalid ok | {} divergent",
        args.seed, stats.iters, stats.rejected_nests, stats.near_invalid_ok, stats.divergent_cases
    );
    for repro in &stats.repros {
        eprintln!("repro {}:", repro.case.name);
        for d in &repro.divergences {
            eprintln!("  {d}");
        }
        if let Some(dir) = &args.corpus_out {
            match corpus::save(&repro.case, dir) {
                Ok(path) => eprintln!("  saved {}", path.display()),
                Err(e) => eprintln!("  save failed: {e}"),
            }
        }
    }
    if stats.near_invalid_bad > 0 {
        eprintln!(
            "fuzz: {} near-invalid nests were not rejected cleanly",
            stats.near_invalid_bad
        );
    }
    if let Some(path) = &args.stats_json {
        let doc = stats.to_json(args.seed).to_string_pretty() + "\n";
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("fuzz: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if stats.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn replay(path: &Path, args: &Args) -> ExitCode {
    let cases = if path.is_dir() {
        match corpus::load_dir(path) {
            Ok(cases) => cases,
            Err(e) => {
                eprintln!("fuzz: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let load = || -> Result<(String, fuzzy_fuzz::FuzzCase), String> {
            let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            let doc = fuzzy_util::Json::parse(&text).map_err(|e| e.to_string())?;
            let case = corpus::from_json(&doc).map_err(|e| e.to_string())?;
            Ok((path.display().to_string(), case))
        };
        match load() {
            Ok(entry) => vec![entry],
            Err(e) => {
                eprintln!("fuzz: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    };
    let diff = fuzzy_fuzz::DiffOptions {
        check_stalls: args.check_stalls,
        ..fuzzy_fuzz::DiffOptions::default()
    };
    let mut failed = false;
    for (name, case) in &cases {
        let divergences = check_case(case, &diff);
        if divergences.is_empty() {
            println!("ok   {name}");
        } else {
            failed = true;
            println!("FAIL {name}");
            for d in &divergences {
                println!("  {d}");
            }
        }
    }
    println!("fuzz: replayed {} corpus case(s)", cases.len());
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
