//! Greedy case minimizer: repeatedly applies structural simplifications
//! (delete a statement, shrink the loop bounds, reduce the processor
//! count, replace an expression by a subexpression) and keeps a candidate
//! whenever it still diverges, until a fixpoint or the attempt budget.
//!
//! Candidates that the soundness filter would reject are skipped — a
//! checked-in repro must itself be a valid fuzz case, or replaying it
//! proves nothing.

use fuzzy_compiler::ast::{Expr, Stmt};

use crate::diff::{check_case, DiffOptions};
use crate::generate::{soundness, FuzzCase, Soundness};

/// Shrinks `case` (which must diverge under `opts`) to a smaller case
/// that still diverges. At most `max_attempts` candidate evaluations.
#[must_use]
pub fn shrink_case(case: &FuzzCase, opts: &DiffOptions, max_attempts: usize) -> FuzzCase {
    let mut best = case.clone();
    let mut attempts = 0usize;
    'outer: loop {
        for cand in candidates(&best) {
            if attempts >= max_attempts {
                break 'outer;
            }
            attempts += 1;
            if soundness(&cand.nest) != Soundness::Deterministic {
                continue;
            }
            if !check_case(&cand, opts).is_empty() {
                best = cand;
                continue 'outer; // restart from the smaller case
            }
        }
        break; // no candidate still diverges: fixpoint
    }
    best
}

/// All one-step simplifications of `case`, most aggressive first.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();

    // Delete one statement (keep at least one).
    if case.nest.body.len() > 1 {
        for i in 0..case.nest.body.len() {
            let mut c = case.clone();
            c.nest.body.remove(i);
            out.push(c);
        }
    }

    // Shrink the trip count: halve, then decrement.
    let trip = case.nest.seq_hi - case.nest.seq_lo;
    if trip > 0 {
        let mut halved = case.clone();
        halved.nest.seq_hi = case.nest.seq_lo + trip / 2;
        out.push(halved);
        let mut dec = case.clone();
        dec.nest.seq_hi -= 1;
        out.push(dec);
    }

    // Fewer processors.
    if case.max_procs > 2 {
        let mut c = case.clone();
        c.max_procs -= 1;
        out.push(c);
    }

    // Replace a statement's value by one of its direct subexpressions, or
    // by a constant.
    for (i, stmt) in case.nest.body.iter().enumerate() {
        let Stmt::Assign(a) = stmt else { continue };
        for replacement in simplify_expr(&a.value) {
            let mut c = case.clone();
            if let Stmt::Assign(ca) = &mut c.nest.body[i] {
                ca.value = replacement;
            }
            out.push(c);
        }
    }

    // Drop one branch of a trailing conditional.
    for (i, stmt) in case.nest.body.iter().enumerate() {
        let Stmt::If {
            then_branch,
            else_branch,
            ..
        } = stmt
        else {
            continue;
        };
        if !else_branch.is_empty() {
            let mut c = case.clone();
            if let Stmt::If { else_branch, .. } = &mut c.nest.body[i] {
                else_branch.clear();
            }
            out.push(c);
        }
        if !then_branch.is_empty() {
            let mut c = case.clone();
            if let Stmt::If { then_branch, .. } = &mut c.nest.body[i] {
                then_branch.clear();
            }
            out.push(c);
        }
    }

    out
}

/// One-step simplifications of an expression: each direct child, then a
/// constant (only for non-trivial expressions).
fn simplify_expr(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Const(_) | Expr::Var(_) => Vec::new(),
        Expr::Access(_) => vec![Expr::Const(1)],
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
            vec![(**a).clone(), (**b).clone(), Expr::Const(1)]
        }
        Expr::DivConst(a, _) => vec![(**a).clone(), Expr::Const(1)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::Generator;

    #[test]
    fn candidates_are_strictly_simpler_or_equal_shape() {
        let case = Generator::new(1).next_case().case;
        for cand in candidates(&case) {
            let simpler = cand.nest.body.len() < case.nest.body.len()
                || cand.nest.seq_hi < case.nest.seq_hi
                || cand.max_procs < case.max_procs
                || cand != case;
            assert!(simpler);
        }
    }
}
