//! Regression corpus: shrunk diverging cases serialized to JSON, checked
//! into `crates/fuzz/corpus/` and replayed by `cargo test` so a fixed bug
//! stays fixed.
//!
//! Serialization is hand-rolled over [`fuzzy_util::Json`] (the container
//! is offline — no serde). The format mirrors the AST one-to-one, so a
//! repro file is also human-readable documentation of the failing nest.

use std::path::Path;

use fuzzy_compiler::ast::{
    ArrayAccess, ArrayDecl, ArrayId, Assign, Expr, LoopNest, Stmt, Subscript, VarId,
};
use fuzzy_util::Json;

use crate::generate::FuzzCase;

/// A corpus read/parse failure.
#[derive(Debug)]
pub struct CorpusError {
    /// File (or key path) the failure occurred at.
    pub context: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.context, self.message)
    }
}

impl std::error::Error for CorpusError {}

fn err(context: &str, message: impl Into<String>) -> CorpusError {
    CorpusError {
        context: context.to_string(),
        message: message.into(),
    }
}

/// Serializes a case to its corpus JSON document.
#[must_use]
pub fn to_json(case: &FuzzCase) -> Json {
    let nest = &case.nest;
    Json::obj()
        .field("name", case.name.as_str())
        .field("max_procs", case.max_procs)
        .field(
            "extra_values",
            Json::Arr(case.extra_values.iter().map(|&v| Json::from(v)).collect()),
        )
        .field(
            "nest",
            Json::obj()
                .field("seq_var", nest.seq_var.0)
                .field("seq_lo", nest.seq_lo)
                .field("seq_hi", nest.seq_hi)
                .field(
                    "private_vars",
                    Json::Arr(nest.private_vars.iter().map(|v| Json::from(v.0)).collect()),
                )
                .field(
                    "var_names",
                    Json::Arr(
                        nest.var_names
                            .iter()
                            .map(|n| Json::Str(n.clone()))
                            .collect(),
                    ),
                )
                .field(
                    "arrays",
                    Json::Arr(
                        nest.arrays
                            .iter()
                            .map(|d| {
                                Json::obj()
                                    .field("name", d.name.as_str())
                                    .field(
                                        "dims",
                                        Json::Arr(d.dims.iter().map(|&x| Json::from(x)).collect()),
                                    )
                                    .field("base", d.base)
                            })
                            .collect(),
                    ),
                )
                .field(
                    "body",
                    Json::Arr(nest.body.iter().map(stmt_to_json).collect()),
                ),
        )
}

fn stmt_to_json(stmt: &Stmt) -> Json {
    match stmt {
        Stmt::Assign(a) => Json::obj().field(
            "assign",
            Json::obj()
                .field("target", access_to_json(&a.target))
                .field("value", expr_to_json(&a.value)),
        ),
        Stmt::If {
            var,
            equals,
            then_branch,
            else_branch,
        } => Json::obj().field(
            "if",
            Json::obj()
                .field("var", var.0)
                .field("equals", *equals)
                .field(
                    "then",
                    Json::Arr(then_branch.iter().map(stmt_to_json).collect()),
                )
                .field(
                    "else",
                    Json::Arr(else_branch.iter().map(stmt_to_json).collect()),
                ),
        ),
    }
}

fn access_to_json(access: &ArrayAccess) -> Json {
    Json::obj().field("array", access.array.0).field(
        "subs",
        Json::Arr(
            access
                .subs
                .iter()
                .map(|s| match s.var {
                    Some(v) => Json::obj().field("var", v.0).field("offset", s.offset),
                    None => Json::obj().field("offset", s.offset),
                })
                .collect(),
        ),
    )
}

fn expr_to_json(expr: &Expr) -> Json {
    match expr {
        Expr::Const(c) => Json::obj().field("const", *c),
        Expr::Var(v) => Json::obj().field("var", v.0),
        Expr::Access(a) => Json::obj().field("access", access_to_json(a)),
        Expr::Add(a, b) => pair("add", a, b),
        Expr::Sub(a, b) => pair("sub", a, b),
        Expr::Mul(a, b) => pair("mul", a, b),
        Expr::DivConst(a, c) => {
            Json::obj().field("div", Json::Arr(vec![expr_to_json(a), Json::from(*c)]))
        }
    }
}

fn pair(key: &str, a: &Expr, b: &Expr) -> Json {
    Json::obj().field(key, Json::Arr(vec![expr_to_json(a), expr_to_json(b)]))
}

/// Parses a corpus JSON document back into a case.
///
/// # Errors
///
/// Returns a [`CorpusError`] naming the malformed element.
pub fn from_json(doc: &Json) -> Result<FuzzCase, CorpusError> {
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| err("name", "missing or not a string"))?
        .to_string();
    let max_procs = get_usize(doc, "max_procs")?;
    let extra_values = doc
        .get("extra_values")
        .and_then(Json::as_arr)
        .ok_or_else(|| err("extra_values", "missing or not an array"))?
        .iter()
        .map(|v| v.as_i64().ok_or_else(|| err("extra_values", "not an int")))
        .collect::<Result<Vec<i64>, _>>()?;
    let nest_doc = doc.get("nest").ok_or_else(|| err("nest", "missing"))?;
    let nest = nest_from_json(nest_doc)?;
    Ok(FuzzCase {
        name,
        nest,
        max_procs,
        extra_values,
    })
}

fn nest_from_json(doc: &Json) -> Result<LoopNest, CorpusError> {
    let arrays = doc
        .get("arrays")
        .and_then(Json::as_arr)
        .ok_or_else(|| err("nest.arrays", "missing or not an array"))?
        .iter()
        .map(|a| {
            Ok(ArrayDecl {
                name: a
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| err("array.name", "missing"))?
                    .to_string(),
                dims: a
                    .get("dims")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| err("array.dims", "missing"))?
                    .iter()
                    .map(|d| {
                        d.as_i64()
                            .and_then(|x| usize::try_from(x).ok())
                            .ok_or_else(|| err("array.dims", "not a usize"))
                    })
                    .collect::<Result<Vec<usize>, _>>()?,
                base: get_i64(a, "base")?,
            })
        })
        .collect::<Result<Vec<ArrayDecl>, CorpusError>>()?;
    let private_vars = doc
        .get("private_vars")
        .and_then(Json::as_arr)
        .ok_or_else(|| err("nest.private_vars", "missing"))?
        .iter()
        .map(|v| {
            v.as_i64()
                .and_then(|x| usize::try_from(x).ok())
                .map(VarId)
                .ok_or_else(|| err("private_vars", "not a var id"))
        })
        .collect::<Result<Vec<VarId>, _>>()?;
    let var_names = doc
        .get("var_names")
        .and_then(Json::as_arr)
        .ok_or_else(|| err("nest.var_names", "missing"))?
        .iter()
        .map(|n| {
            n.as_str()
                .map(String::from)
                .ok_or_else(|| err("var_names", "not a string"))
        })
        .collect::<Result<Vec<String>, _>>()?;
    let body = doc
        .get("body")
        .and_then(Json::as_arr)
        .ok_or_else(|| err("nest.body", "missing"))?
        .iter()
        .map(stmt_from_json)
        .collect::<Result<Vec<Stmt>, _>>()?;
    Ok(LoopNest {
        arrays,
        seq_var: VarId(get_usize(doc, "seq_var")?),
        seq_lo: get_i64(doc, "seq_lo")?,
        seq_hi: get_i64(doc, "seq_hi")?,
        private_vars,
        body,
        var_names,
    })
}

fn stmt_from_json(doc: &Json) -> Result<Stmt, CorpusError> {
    if let Some(a) = doc.get("assign") {
        return Ok(Stmt::Assign(Assign {
            target: access_from_json(
                a.get("target")
                    .ok_or_else(|| err("assign.target", "missing"))?,
            )?,
            value: expr_from_json(
                a.get("value")
                    .ok_or_else(|| err("assign.value", "missing"))?,
            )?,
        }));
    }
    if let Some(i) = doc.get("if") {
        let branch = |key: &str| -> Result<Vec<Stmt>, CorpusError> {
            i.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| err("if", "missing branch"))?
                .iter()
                .map(stmt_from_json)
                .collect()
        };
        return Ok(Stmt::If {
            var: VarId(get_usize(i, "var")?),
            equals: get_i64(i, "equals")?,
            then_branch: branch("then")?,
            else_branch: branch("else")?,
        });
    }
    Err(err("stmt", "neither assign nor if"))
}

fn access_from_json(doc: &Json) -> Result<ArrayAccess, CorpusError> {
    let subs = doc
        .get("subs")
        .and_then(Json::as_arr)
        .ok_or_else(|| err("access.subs", "missing"))?
        .iter()
        .map(|s| {
            let offset = get_i64(s, "offset")?;
            Ok(match s.get("var") {
                Some(v) => Subscript::var(
                    VarId(
                        v.as_i64()
                            .and_then(|x| usize::try_from(x).ok())
                            .ok_or_else(|| err("sub.var", "not a var id"))?,
                    ),
                    offset,
                ),
                None => Subscript::constant(offset),
            })
        })
        .collect::<Result<Vec<Subscript>, CorpusError>>()?;
    Ok(ArrayAccess::new(ArrayId(get_usize(doc, "array")?), subs))
}

fn expr_from_json(doc: &Json) -> Result<Expr, CorpusError> {
    if let Some(c) = doc.get("const") {
        return Ok(Expr::Const(
            c.as_i64().ok_or_else(|| err("const", "not an int"))?,
        ));
    }
    if doc.get("var").is_some() {
        return Ok(Expr::Var(VarId(get_usize(doc, "var")?)));
    }
    if let Some(a) = doc.get("access") {
        return Ok(Expr::Access(access_from_json(a)?));
    }
    for (key, build) in [
        ("add", Expr::add as fn(Expr, Expr) -> Expr),
        ("sub", Expr::sub),
        ("mul", Expr::mul),
    ] {
        if let Some(args) = doc.get(key).and_then(Json::as_arr) {
            if args.len() != 2 {
                return Err(err(key, "expected two operands"));
            }
            return Ok(build(expr_from_json(&args[0])?, expr_from_json(&args[1])?));
        }
    }
    if let Some(args) = doc.get("div").and_then(Json::as_arr) {
        if args.len() != 2 {
            return Err(err("div", "expected operand and divisor"));
        }
        let divisor = args[1]
            .as_i64()
            .ok_or_else(|| err("div", "divisor not an int"))?;
        return Ok(Expr::div_const(expr_from_json(&args[0])?, divisor));
    }
    Err(err("expr", "unrecognized expression object"))
}

fn get_i64(doc: &Json, key: &str) -> Result<i64, CorpusError> {
    doc.get(key)
        .and_then(Json::as_i64)
        .ok_or_else(|| err(key, "missing or not an int"))
}

fn get_usize(doc: &Json, key: &str) -> Result<usize, CorpusError> {
    get_i64(doc, key)?
        .try_into()
        .map_err(|_| err(key, "negative"))
}

/// Writes `case` as pretty JSON to `dir/<name>.json`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(case: &FuzzCase, dir: &Path) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", case.name));
    std::fs::write(&path, to_json(case).to_string_pretty() + "\n")?;
    Ok(path)
}

/// Loads every `*.json` case from `dir`, sorted by file name. A missing
/// directory is an empty corpus.
///
/// # Errors
///
/// Returns a [`CorpusError`] for unreadable or malformed files.
pub fn load_dir(dir: &Path) -> Result<Vec<(String, FuzzCase)>, CorpusError> {
    let mut entries: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(err(&dir.display().to_string(), e.to_string())),
    };
    entries.sort();
    entries
        .into_iter()
        .map(|path| {
            let display = path.display().to_string();
            let text = std::fs::read_to_string(&path).map_err(|e| err(&display, e.to_string()))?;
            let doc = Json::parse(&text).map_err(|e| err(&display, e.to_string()))?;
            let case = from_json(&doc).map_err(|e| err(&display, e.to_string()))?;
            Ok((display, case))
        })
        .collect()
}

/// The default corpus directory, resolved relative to this crate so both
/// in-crate tests and the workspace replay test find it.
#[must_use]
pub fn default_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::Generator;

    #[test]
    fn cases_round_trip_through_json() {
        let mut g = Generator::new(42);
        for _ in 0..20 {
            let case = g.next_case().case;
            let doc = to_json(&case);
            let text = doc.to_string_pretty();
            let parsed = from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(parsed, case);
        }
    }
}
