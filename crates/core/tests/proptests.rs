//! Randomized tests for the fuzzy-barrier core invariants.
//!
//! Formerly written with `proptest`; the build environment is offline, so
//! the same properties are now exercised with a deterministic seeded
//! generator ([`fuzzy_util::SplitMix64`]) sweeping many random cases.

use fuzzy_barrier::{
    CentralBarrier, CountingBarrier, DisseminationBarrier, GroupRegistry, HierBarrier, ProcMask,
    SplitBarrier, StallPolicy, Tag, TopLevel, TreeBarrier,
};
use fuzzy_util::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Runs `episodes` barrier episodes on `n` threads with per-thread random
/// work delays, checking the fundamental fuzzy-barrier safety property
/// (Fig. 1): no thread observes a neighbour's pre-barrier write from an
/// *older* phase after the barrier.
fn exercise_backend<B: SplitBarrier + 'static>(b: B, n: usize, episodes: u64, delays: &[u8]) {
    let b = Arc::new(b);
    let cells: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
    std::thread::scope(|s| {
        for id in 0..n {
            let b = Arc::clone(&b);
            let cells = Arc::clone(&cells);
            let delay = u64::from(delays[id % delays.len()]);
            s.spawn(move || {
                for phase in 1..=episodes {
                    cells[id].store(phase, Ordering::Release);
                    let token = b.arrive(id);
                    // Barrier region: busy work proportional to the random
                    // delay, modelling drift between streams.
                    let mut acc = 0u64;
                    for i in 0..delay * 50 {
                        acc = acc.wrapping_add(i);
                    }
                    std::hint::black_box(acc);
                    let outcome = b.wait(token);
                    assert_eq!(outcome.episode, 2 * (phase - 1));
                    let seen = cells[(id + 1) % n].load(Ordering::Acquire);
                    assert!(
                        seen >= phase,
                        "phase {phase}: participant {id} saw stale write {seen}"
                    );
                    // Second barrier to close the phase before the next store.
                    let token = b.arrive(id);
                    b.wait(token);
                }
            });
        }
    });
    assert_eq!(b.stats().episodes, 2 * episodes);
    assert_eq!(b.stats().arrivals, 2 * episodes * n as u64);
}

/// Generates a random (n, delays) case like the old proptest strategies:
/// `n in 1..6`, `delays in vec(0u8..16, 1..6)`.
fn random_case(rng: &mut SplitMix64) -> (usize, Vec<u8>) {
    let n = 1 + rng.below(5);
    let len = 1 + rng.below(5);
    let delays = (0..len).map(|_| rng.range_u64(0, 15) as u8).collect();
    (n, delays)
}

#[test]
fn central_barrier_is_safe() {
    let mut rng = SplitMix64::seed_from_u64(0xC0FFEE);
    for _case in 0..12 {
        let (n, delays) = random_case(&mut rng);
        exercise_backend(CentralBarrier::new(n), n, 40, &delays);
    }
}

#[test]
fn counting_barrier_is_safe() {
    let mut rng = SplitMix64::seed_from_u64(0xBEEF);
    for _case in 0..12 {
        let (n, delays) = random_case(&mut rng);
        exercise_backend(CountingBarrier::new(n), n, 40, &delays);
    }
}

#[test]
fn dissemination_barrier_is_safe() {
    let mut rng = SplitMix64::seed_from_u64(0xD15C0);
    for _case in 0..12 {
        let (n, delays) = random_case(&mut rng);
        exercise_backend(DisseminationBarrier::new(n), n, 40, &delays);
    }
}

#[test]
fn tree_barrier_is_safe() {
    let mut rng = SplitMix64::seed_from_u64(0x7EEE);
    for _case in 0..12 {
        let (n, delays) = random_case(&mut rng);
        let fan_in = 2 + rng.below(3);
        exercise_backend(
            TreeBarrier::with_fan_in(n, fan_in, StallPolicy::default()),
            n,
            40,
            &delays,
        );
    }
}

#[test]
fn hier_barrier_is_safe() {
    // Random non-power-of-two group sizes and shard sizes, both top
    // levels, both stall policies — including the degenerate shapes:
    // shard size 1 (every participant its own leader: the hierarchy
    // collapses to the pure top-level protocol) and shard size >= n (one
    // shard: the top level collapses to a no-op release).
    let mut rng = SplitMix64::seed_from_u64(0x41E2);
    for case in 0..16 {
        let (n, delays) = random_case(&mut rng);
        let shard_size = match case % 4 {
            0 => 1, // all-leaders degenerate
            1 => n, // single-shard degenerate
            _ => 1 + rng.below(n.max(1)),
        };
        let top = if rng.chance(0.5) {
            TopLevel::Dissemination
        } else {
            TopLevel::Tree
        };
        let policy = if rng.chance(0.5) {
            StallPolicy::adaptive()
        } else {
            StallPolicy::default()
        };
        exercise_backend(
            HierBarrier::with_shards(n, shard_size, top, policy),
            n,
            40,
            &delays,
        );
    }
}

#[test]
fn mask_rank_matches_iteration_order() {
    let mut rng = SplitMix64::seed_from_u64(1);
    for _case in 0..64 {
        let count = rng.below(20);
        let ids: std::collections::BTreeSet<usize> = (0..count).map(|_| rng.below(64)).collect();
        let mask: ProcMask = ids.iter().copied().collect();
        assert_eq!(mask.len(), ids.len());
        for (rank, id) in mask.iter().enumerate() {
            assert_eq!(mask.rank_of(id), Some(rank));
        }
        // Non-members have no rank.
        for id in 0..64 {
            if !ids.contains(&id) {
                assert_eq!(mask.rank_of(id), None);
            }
        }
    }
}

#[test]
fn mask_set_laws() {
    let mut rng = SplitMix64::seed_from_u64(2);
    for _case in 0..64 {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let ma = ProcMask::from_bits(a);
        let mb = ProcMask::from_bits(b);
        assert_eq!(ma.union(&mb), mb.union(&ma));
        assert_eq!(ma.intersection(&mb), mb.intersection(&ma));
        assert!(ma.intersection(&mb).is_subset(&ma));
        assert!(ma.is_subset(&ma.union(&mb)));
        assert_eq!(ma.is_disjoint(&mb), ma.intersection(&mb).is_empty());
        assert_eq!(
            ma.union(&mb).len() + ma.intersection(&mb).len(),
            ma.len() + mb.len()
        );
    }
}

#[test]
fn tag_next_never_yields_zero() {
    let mut rng = SplitMix64::seed_from_u64(3);
    for _case in 0..64 {
        let raw = rng.range_u64(1, u64::from(u16::MAX)) as u16;
        let tag = Tag::new(raw).unwrap();
        assert!(tag.next().get() != 0);
    }
    // The wrap-around case, explicitly.
    assert!(Tag::new(u16::MAX).unwrap().next().get() != 0);
}

#[test]
fn registry_never_exceeds_budget() {
    let mut rng = SplitMix64::seed_from_u64(4);
    for _case in 0..64 {
        let max_streams = 2 + rng.below(8);
        let ops: Vec<bool> = (0..1 + rng.below(39)).map(|_| rng.chance(0.5)).collect();
        // true = allocate, false = release the oldest live barrier. The
        // model holds each handle: a dropped handle would make the barrier
        // an orphan that allocation may legitimately sweep.
        let registry = GroupRegistry::new(max_streams);
        let mask = ProcMask::first_n(2);
        let mut live: Vec<(Tag, fuzzy_barrier::registry::RegistryBarrier<_>)> = Vec::new();
        for op in ops {
            if op {
                match registry.allocate(mask) {
                    Ok((tag, handle)) => live.push((tag, handle)),
                    Err(_) => assert_eq!(live.len(), max_streams - 1),
                }
            } else if let Some((tag, _)) = live.first().cloned() {
                registry.release(tag).unwrap();
                live.remove(0);
            }
            assert!(registry.live_barriers() < max_streams);
            assert_eq!(registry.live_barriers(), live.len());
        }
    }
}

#[test]
fn backends_agree_on_episode_counts() {
    // Every backend must count the same number of episodes for the same
    // protocol-following schedule.
    let n = 3;
    let episodes = 50;
    let backends: Vec<Box<dyn SplitBarrier>> = vec![
        Box::new(CentralBarrier::new(n)),
        Box::new(CountingBarrier::new(n)),
        Box::new(DisseminationBarrier::new(n)),
        Box::new(TreeBarrier::new(n)),
        Box::new(HierBarrier::new(n)),
        Box::new(HierBarrier::with_shards(
            n,
            2,
            TopLevel::Tree,
            StallPolicy::default(),
        )),
    ];
    for b in &backends {
        let b = &**b;
        std::thread::scope(|s| {
            for id in 0..n {
                s.spawn(move || {
                    for _ in 0..episodes {
                        let t = b.arrive(id);
                        b.wait(t);
                    }
                });
            }
        });
        assert_eq!(b.stats().episodes, episodes);
    }
}
