//! Integration tests for the telemetry layer: all backends agree on the
//! flat counters, per-participant counters attribute work correctly, and
//! the dissemination barrier survives a non-power-of-two episode stress.

use fuzzy_barrier::{
    CentralBarrier, CountingBarrier, DisseminationBarrier, SplitBarrier, StallPolicy, TreeBarrier,
};
use std::sync::Arc;

fn run_schedule(b: &dyn SplitBarrier, n: usize, episodes: u64) {
    std::thread::scope(|s| {
        for id in 0..n {
            s.spawn(move || {
                for _ in 0..episodes {
                    let t = b.arrive(id);
                    // A small asymmetric region so some participants arrive
                    // late and others stall.
                    let mut acc = 0u64;
                    for i in 0..(id as u64 * 120) {
                        acc = acc.wrapping_add(i);
                    }
                    std::hint::black_box(acc);
                    b.wait(t);
                }
            });
        }
    });
}

/// Every backend must report the same `episodes` and `arrivals` for the
/// same protocol-following schedule, in both the flat snapshot and the
/// telemetry snapshot.
#[test]
fn all_backends_report_identical_episode_and_arrival_counts() {
    let n = 4;
    let episodes = 80;
    let backends: Vec<(&str, Box<dyn SplitBarrier>)> = vec![
        ("central", Box::new(CentralBarrier::new(n))),
        ("counting", Box::new(CountingBarrier::new(n))),
        ("dissemination", Box::new(DisseminationBarrier::new(n))),
        ("tree", Box::new(TreeBarrier::new(n))),
    ];
    for (name, b) in &backends {
        run_schedule(&**b, n, episodes);
        let t = b.telemetry();
        assert_eq!(t.base.episodes, episodes, "{name}");
        assert_eq!(t.base.arrivals, episodes * n as u64, "{name}");
        assert_eq!(t.base.waits, episodes * n as u64, "{name}");
        assert_eq!(t.base, b.stats(), "{name}: telemetry base != stats()");
        // Telemetry internal consistency.
        assert_eq!(t.stall_hist.total(), t.base.stalls, "{name}");
        assert_eq!(t.per_participant.len(), n, "{name}");
        let per_arrivals: u64 = t.per_participant.iter().map(|p| p.arrivals).sum();
        let per_stalls: u64 = t.per_participant.iter().map(|p| p.stalls).sum();
        assert_eq!(per_arrivals, t.base.arrivals, "{name}");
        assert_eq!(per_stalls, t.base.stalls, "{name}");
        for (id, p) in t.per_participant.iter().enumerate() {
            assert_eq!(p.arrivals, episodes, "{name} participant {id}");
            assert_eq!(p.waits, episodes, "{name} participant {id}");
        }
        assert!(t.spread.episodes <= t.base.episodes, "{name}");
        assert!(t.spread.max >= t.spread.mean(), "{name}");
    }
}

/// Repeated-episode stress at participant counts that are NOT powers of
/// two: the dissemination wrap-around partner math (`(i + 2^r) mod n`)
/// must stay correct across many episode reuses of the same flag slots.
#[test]
fn dissemination_non_power_of_two_episode_stress() {
    for n in [3usize, 5, 6, 7, 11] {
        let episodes = 600u64;
        let b = Arc::new(DisseminationBarrier::with_policy(n, StallPolicy::default()));
        std::thread::scope(|s| {
            for id in 0..n {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for e in 0..episodes {
                        let t = b.arrive(id);
                        // Jitter the region length per (id, episode) so the
                        // arrival order keeps changing.
                        let mut acc = 0u64;
                        for i in 0..((id as u64 + e) % 17) * 40 {
                            acc = acc.wrapping_add(i);
                        }
                        std::hint::black_box(acc);
                        let o = b.wait(t);
                        assert_eq!(o.episode, e, "n={n} id={id}");
                    }
                });
            }
        });
        let t = b.telemetry();
        assert_eq!(t.base.episodes, episodes, "n={n}");
        assert_eq!(t.base.arrivals, episodes * n as u64, "n={n}");
        for (id, p) in t.per_participant.iter().enumerate() {
            assert_eq!(p.arrivals, episodes, "n={n} id={id}");
        }
    }
}

/// The trait's default `telemetry()` (used by backends without native
/// telemetry) must still carry the flat counters.
#[test]
fn default_telemetry_wraps_stats() {
    struct Flat(CentralBarrier);
    impl SplitBarrier for Flat {
        fn arrive(&self, id: usize) -> fuzzy_barrier::ArrivalToken {
            self.0.arrive(id)
        }
        fn is_complete(&self, token: &fuzzy_barrier::ArrivalToken) -> bool {
            self.0.is_complete(token)
        }
        fn wait(&self, token: fuzzy_barrier::ArrivalToken) -> fuzzy_barrier::WaitOutcome {
            self.0.wait(token)
        }
        fn participants(&self) -> usize {
            self.0.participants()
        }
        fn stats(&self) -> fuzzy_barrier::StatsSnapshot {
            self.0.stats()
        }
        // telemetry() deliberately not overridden.
    }
    let b = Flat(CentralBarrier::new(1));
    for _ in 0..5 {
        let t = b.arrive(0);
        b.wait(t);
    }
    let t = b.telemetry();
    assert_eq!(t.base.episodes, 5);
    assert!(t.stall_hist.is_empty());
    assert!(t.per_participant.is_empty());
}
