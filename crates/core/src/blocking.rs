//! Classic single-point barrier baseline.

use crate::centralized::CentralBarrier;
use crate::spin::StallPolicy;
use crate::stats::StatsSnapshot;
use crate::token::WaitOutcome;
use crate::SplitBarrier;

/// A conventional barrier with a single synchronization **point** — the
/// baseline the fuzzy barrier is measured against.
///
/// Semantically this is a fuzzy barrier whose region is empty: every
/// participant arrives and immediately waits, so any skew between
/// participants turns directly into stall time. The paper's Fig. 7(b)(i)
/// and the Sec. 8 measurement both use exactly this as the point of
/// comparison.
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::PointBarrier;
///
/// let b = PointBarrier::new(1);
/// let outcome = b.wait(0);
/// assert_eq!(outcome.episode, 0);
/// ```
#[derive(Debug)]
pub struct PointBarrier {
    inner: CentralBarrier,
}

impl PointBarrier {
    /// Creates a point barrier for `n` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        PointBarrier {
            inner: CentralBarrier::new(n),
        }
    }

    /// Creates a point barrier with an explicit stall policy.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_policy(n: usize, policy: StallPolicy) -> Self {
        PointBarrier {
            inner: CentralBarrier::with_policy(n, policy),
        }
    }

    /// Blocks participant `id` until all participants have called `wait`
    /// for the current episode.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn wait(&self, id: usize) -> WaitOutcome {
        self.inner.point(id)
    }

    /// Number of participants.
    #[must_use]
    pub fn participants(&self) -> usize {
        self.inner.participants()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn all_threads_released_together() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 4;
        let b = Arc::new(PointBarrier::new(n));
        let before = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for id in 0..n {
                let b = Arc::clone(&b);
                let before = Arc::clone(&before);
                s.spawn(move || {
                    before.fetch_add(1, Ordering::SeqCst);
                    b.wait(id);
                    // After the barrier everyone must observe all n
                    // pre-barrier increments.
                    assert_eq!(before.load(Ordering::SeqCst), n);
                });
            }
        });
    }

    #[test]
    fn skew_turns_into_stall() {
        let b = Arc::new(PointBarrier::new(2));
        std::thread::scope(|s| {
            let early = Arc::clone(&b);
            s.spawn(move || {
                let o = early.wait(0);
                assert!(
                    o.stalled,
                    "the early participant must stall at a point barrier"
                );
            });
            let late = Arc::clone(&b);
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(15));
                late.wait(1);
            });
        });
    }
}
