//! Flat counting split-phase barrier (the maximal hot-spot baseline).

use crate::error::BarrierError;
use crate::failure::{self, Deadline, OnTimeout, WaitPolicy};
use crate::spin::StallPolicy;
use crate::stats::{BarrierStats, StatsSnapshot, TelemetrySnapshot};
use crate::sync::{Atomic, RealSync, SyncOps};
use crate::token::{ArrivalToken, WaitOutcome};
use crate::SplitBarrier;
use fuzzy_util::CachePadded;
use std::sync::atomic::Ordering;

/// A split-phase barrier built on a single monotone arrival counter.
///
/// Episode *e* is complete once `arrivals >= (e + 1) * n`. Both arrivers
/// and waiters touch the **same** word, making this the most hot-spot-prone
/// design possible — deliberately so: the paper's Sec. 1 argument is that
/// shared-variable barriers "are known to cause hot-spot accesses", and the
/// experiment suite uses this backend as the worst-case software baseline.
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::{CountingBarrier, SplitBarrier};
///
/// let b = CountingBarrier::new(1);
/// let t = b.arrive(0);
/// assert!(b.wait(t).episode == 0);
/// ```
#[derive(Debug)]
pub struct CountingBarrier<S: SyncOps = RealSync> {
    n: usize,
    policy: StallPolicy,
    /// Packed arrival word: the low [`DEAD_SHIFT`] bits count arrivals
    /// (real, stand-in, and ghost), the high bits count evicted
    /// participants. One word so an eviction's stand-in arrival and its
    /// dead-count increment land in a *single* RMW: the episode completer
    /// reads the dead count from the very value that crossed the boundary,
    /// leaving no window in which a racing eviction gets paid twice (once
    /// by its own stand-in, once by the completer's pre-pay). Found by the
    /// fuzzy-check evict scenario.
    arrivals: CachePadded<S::AtomicU64>,
    local_episode: Vec<CachePadded<S::AtomicU64>>,
    /// Non-zero once the barrier is poisoned.
    poisoned: CachePadded<S::AtomicU32>,
    /// Per-participant eviction flags (non-zero once evicted).
    evicted: Vec<CachePadded<S::AtomicU32>>,
    stats: BarrierStats,
}

/// Bit position of the dead-participant count inside the packed arrival
/// word. 48 bits of arrivals (~10^14 before overflow) leave 16 bits of
/// evictions — both far beyond any reachable configuration.
const DEAD_SHIFT: u32 = 48;
const COUNT_MASK: u64 = (1 << DEAD_SHIFT) - 1;

/// The arrival count of a packed word.
fn count(packed: u64) -> u64 {
    packed & COUNT_MASK
}

/// The eviction count of a packed word.
fn dead(packed: u64) -> u64 {
    packed >> DEAD_SHIFT
}

impl CountingBarrier {
    /// Creates a barrier for `n` participants with the default stall policy.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_policy(n, StallPolicy::default())
    }

    /// Creates a barrier with an explicit [`StallPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_policy(n: usize, policy: StallPolicy) -> Self {
        Self::with_policy_in(n, policy)
    }
}

impl<S: SyncOps> CountingBarrier<S> {
    /// Creates a barrier in an explicit [`SyncOps`] domain — `RealSync` in
    /// production, instrumented shadow state under the `fuzzy-check` model
    /// checker.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_policy_in(n: usize, policy: StallPolicy) -> Self {
        assert!(n > 0, "a barrier needs at least one participant");
        CountingBarrier {
            n,
            policy,
            arrivals: CachePadded::new(S::AtomicU64::new(0)),
            local_episode: (0..n)
                .map(|_| CachePadded::new(S::AtomicU64::new(0)))
                .collect(),
            poisoned: CachePadded::new(S::AtomicU32::new(0)),
            evicted: (0..n)
                .map(|_| CachePadded::new(S::AtomicU32::new(0)))
                .collect(),
            stats: BarrierStats::with_participants(n),
        }
    }

    fn threshold(&self, episode: u64) -> u64 {
        (episode + 1) * self.n as u64
    }

    /// Adds `delta` to the packed arrival word and runs the
    /// episode-completion duties for the boundary the add crossed, if any.
    ///
    /// The counter is monotone, so exactly one add crosses each episode
    /// boundary — and that add's own return value carries the dead count
    /// as of the crossing instant. The crosser pre-pays the **next**
    /// episode's ghost arrivals, one per evicted participant, decided at
    /// the atomic moment the episode completed: an eviction that lands
    /// after the crossing is *not* pre-paid here (its own stand-in
    /// arrival covers the in-flight episode, and the next crosser will see
    /// it). A pre-payment can itself cross the next boundary when the
    /// survivors raced a whole episode ahead of it, hence the loop.
    fn add_and_settle(&self, mut delta: u64) {
        let n = self.n as u64;
        loop {
            let before = self.arrivals.fetch_add(delta, Ordering::AcqRel);
            let after = before + delta;
            // Each step adds at most n − 1 to the count (one arrival, or
            // one ghost per evicted participant), so at most one boundary
            // lies in (before, after].
            if count(after) / n == count(before) / n {
                return;
            }
            self.stats.record_episode();
            let ghosts = dead(after);
            if ghosts == 0 {
                return;
            }
            delta = ghosts;
        }
    }

    /// The poison-aware bounded wait all wait flavors funnel through.
    fn wait_core(
        &self,
        token: &ArrivalToken,
        deadline: Deadline,
        policy: StallPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        let threshold = self.threshold(token.episode);
        let policy = self.stats.resolve_policy(policy);
        let result = failure::guarded_wait::<S>(
            policy,
            deadline,
            token.episode,
            || count(self.arrivals.load(Ordering::Acquire)) >= threshold,
            || self.poisoned.load(Ordering::Acquire) != 0,
        );
        match result {
            Ok(outcome) => {
                self.stats.record_wait(token.id, &outcome);
                Ok(outcome)
            }
            Err(fault) => {
                if matches!(fault.error, BarrierError::Timeout { .. }) {
                    self.stats.record_timeout(token.id, &fault.report);
                }
                Err(fault.error)
            }
        }
    }
}

impl<S: SyncOps> SplitBarrier for CountingBarrier<S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        assert!(
            id < self.n,
            "participant id {id} out of range for {} participants",
            self.n
        );
        let episode = self.local_episode[id].fetch_add(1, Ordering::Relaxed);
        self.stats.record_arrival(id);
        self.add_and_settle(1);
        ArrivalToken::new(id, episode)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        count(self.arrivals.load(Ordering::Acquire)) >= self.threshold(token.episode)
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        match self.wait_core(&token, Deadline::never(), self.policy) {
            Ok(outcome) => outcome,
            Err(e) => panic!("CountingBarrier::wait failed: {e} (use wait_deadline to recover)"),
        }
    }

    fn wait_deadline(
        &self,
        token: ArrivalToken,
        deadline: Deadline,
    ) -> Result<WaitOutcome, BarrierError> {
        self.wait_core(&token, deadline, self.policy)
    }

    fn wait_with(
        &self,
        token: ArrivalToken,
        policy: &WaitPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        let backoff = policy.backoff.unwrap_or(self.policy);
        let result = self.wait_core(&token, policy.arm(), backoff);
        if matches!(result, Err(BarrierError::Timeout { .. }))
            && policy.on_timeout == OnTimeout::Poison
        {
            self.poison();
        }
        result
    }

    fn poison(&self) {
        if self.poisoned.fetch_max(1, Ordering::AcqRel) == 0 {
            self.stats.record_poisoning();
        }
    }

    fn clear_poison(&self) {
        self.poisoned.store(0, Ordering::Release);
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire) != 0
    }

    fn evict(&self, id: usize) -> Result<(), BarrierError> {
        if id >= self.n {
            return Err(BarrierError::InvalidParticipant {
                id,
                capacity: self.n,
            });
        }
        // Already-dead ids are rejected before the EmptyGroup guard: a
        // dead id stays dead regardless of how many live remain.
        if self.evicted[id].load(Ordering::Acquire) != 0 {
            return Err(BarrierError::NotAParticipant { id });
        }
        if dead(self.arrivals.load(Ordering::Acquire)) + 1 >= self.n as u64 {
            return Err(BarrierError::EmptyGroup);
        }
        if self.evicted[id].fetch_max(1, Ordering::AcqRel) != 0 {
            return Err(BarrierError::NotAParticipant { id });
        }
        self.stats.record_eviction();
        // Pay-forward ghost scheme, in one RMW: the low bit is the
        // stand-in arrival covering the in-flight episode (the evicted
        // participant must not have arrived for it), the high bit
        // registers the permanent ghost. All later episodes are covered
        // by the completer chain: each boundary crosser pre-pays one
        // ghost arrival per participant dead *as of its crossing* for the
        // episode after it — including this one, atomically, because both
        // fields travel in the same word.
        self.add_and_settle((1u64 << DEAD_SHIFT) | 1);
        Ok(())
    }

    fn participants(&self) -> usize {
        self.n
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        self.stats.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn threshold_math() {
        let b = CountingBarrier::new(3);
        assert_eq!(b.threshold(0), 3);
        assert_eq!(b.threshold(1), 6);
    }

    #[test]
    fn single_thread_round_trips() {
        let b = CountingBarrier::new(1);
        for e in 0..8 {
            let t = b.arrive(0);
            assert_eq!(t.episode(), e);
            assert!(b.is_complete(&t));
            assert_eq!(b.wait(t).episode, e);
        }
        assert_eq!(b.stats().episodes, 8);
    }

    #[test]
    fn waiting_on_stale_token_returns_instantly() {
        let b = CountingBarrier::new(1);
        let t0 = b.arrive(0);
        b.wait(t0);
        let t1 = b.arrive(0);
        // Episode 1 completes the moment the single participant arrives, so
        // this wait is instant even though another episode already passed.
        assert!(!b.wait(t1).stalled);
    }

    #[test]
    fn eviction_pays_ghost_arrivals_forward() {
        // After an eviction the monotone counter must keep crossing episode
        // boundaries exactly once per episode, forever: the completer
        // pre-pays one ghost arrival per evicted participant.
        let b = CountingBarrier::new(4);
        let tokens: Vec<_> = (0..4).map(|id| b.arrive(id)).collect();
        for t in tokens {
            assert_eq!(b.wait(t).episode, 0);
        }
        b.evict(3).unwrap();
        for e in 1..=5 {
            let tokens: Vec<_> = (0..3).map(|id| b.arrive(id)).collect();
            for t in tokens {
                assert_eq!(b.wait(t).episode, e);
            }
        }
        let s = b.stats();
        assert_eq!(s.episodes, 6);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn eviction_mid_episode_completes_it() {
        // Peers time out on the straggler, the straggler is evicted, and
        // its stand-in arrival completes the in-flight episode.
        let b = Arc::new(CountingBarrier::new(4));
        std::thread::scope(|s| {
            let mut waiters = Vec::new();
            for id in 0..3 {
                let b = Arc::clone(&b);
                waiters.push(s.spawn(move || {
                    let t = b.arrive(id);
                    let err = b
                        .wait_deadline(t, Deadline::after(std::time::Duration::from_millis(20)))
                        .unwrap_err();
                    assert_eq!(err, BarrierError::Timeout { episode: 0 });
                }));
            }
            for w in waiters {
                w.join().unwrap();
            }
        });
        b.evict(3).unwrap();
        // The eviction crossed the episode-0 boundary itself.
        assert_eq!(b.stats().episodes, 1);
        // Survivors complete the next two episodes.
        for e in 1..=2 {
            let tokens: Vec<_> = (0..3).map(|id| b.arrive(id)).collect();
            for t in tokens {
                assert_eq!(b.wait(t).episode, e);
            }
        }
        assert_eq!(b.stats().timeouts, 3);
    }

    #[test]
    fn double_evict_and_last_survivor_rejected() {
        let b = CountingBarrier::new(2);
        b.evict(0).unwrap();
        assert_eq!(
            b.evict(0).unwrap_err(),
            BarrierError::NotAParticipant { id: 0 }
        );
        assert_eq!(b.evict(1).unwrap_err(), BarrierError::EmptyGroup);
    }

    #[test]
    fn poison_unblocks_counting_waiters() {
        let b = Arc::new(CountingBarrier::new(2));
        std::thread::scope(|s| {
            let b0 = Arc::clone(&b);
            s.spawn(move || {
                let t = b0.arrive(0);
                let err = b0.wait_deadline(t, Deadline::never()).unwrap_err();
                assert_eq!(err, BarrierError::Poisoned { episode: 0 });
            });
            std::thread::sleep(std::time::Duration::from_millis(5));
            b.poison();
        });
        assert!(b.is_poisoned());
        b.clear_poison();
        assert!(!b.is_poisoned());
    }

    #[test]
    fn wait_with_backoff_override_and_poison_on_timeout() {
        let b = CountingBarrier::new(2);
        let t = b.arrive(0);
        let policy = WaitPolicy::new()
            .deadline(std::time::Duration::from_millis(5))
            .backoff(StallPolicy::yielding())
            .on_timeout(OnTimeout::Poison);
        let err = b.wait_with(t, &policy).unwrap_err();
        assert_eq!(err, BarrierError::Timeout { episode: 0 });
        assert!(b.is_poisoned(), "OnTimeout::Poison must poison the barrier");
        assert_eq!(b.stats().timeouts, 1);
    }

    #[test]
    fn eight_threads_sync_repeatedly() {
        let n = 8;
        let b = Arc::new(CountingBarrier::new(n));
        std::thread::scope(|s| {
            for id in 0..n {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for e in 0..300u64 {
                        let t = b.arrive(id);
                        assert_eq!(b.wait(t).episode, e);
                    }
                });
            }
        });
        assert_eq!(b.stats().episodes, 300);
    }
}
