//! Flat counting split-phase barrier (the maximal hot-spot baseline).

use crate::spin::StallPolicy;
use crate::stats::{BarrierStats, StatsSnapshot, TelemetrySnapshot};
use crate::sync::{Atomic, RealSync, SyncOps};
use crate::token::{ArrivalToken, WaitOutcome};
use crate::SplitBarrier;
use fuzzy_util::CachePadded;
use std::sync::atomic::Ordering;

/// A split-phase barrier built on a single monotone arrival counter.
///
/// Episode *e* is complete once `arrivals >= (e + 1) * n`. Both arrivers
/// and waiters touch the **same** word, making this the most hot-spot-prone
/// design possible — deliberately so: the paper's Sec. 1 argument is that
/// shared-variable barriers "are known to cause hot-spot accesses", and the
/// experiment suite uses this backend as the worst-case software baseline.
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::{CountingBarrier, SplitBarrier};
///
/// let b = CountingBarrier::new(1);
/// let t = b.arrive(0);
/// assert!(b.wait(t).episode == 0);
/// ```
#[derive(Debug)]
pub struct CountingBarrier<S: SyncOps = RealSync> {
    n: usize,
    policy: StallPolicy,
    arrivals: CachePadded<S::AtomicU64>,
    local_episode: Vec<CachePadded<S::AtomicU64>>,
    stats: BarrierStats,
}

impl CountingBarrier {
    /// Creates a barrier for `n` participants with the default stall policy.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_policy(n, StallPolicy::default())
    }

    /// Creates a barrier with an explicit [`StallPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_policy(n: usize, policy: StallPolicy) -> Self {
        Self::with_policy_in(n, policy)
    }
}

impl<S: SyncOps> CountingBarrier<S> {
    /// Creates a barrier in an explicit [`SyncOps`] domain — `RealSync` in
    /// production, instrumented shadow state under the `fuzzy-check` model
    /// checker.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_policy_in(n: usize, policy: StallPolicy) -> Self {
        assert!(n > 0, "a barrier needs at least one participant");
        CountingBarrier {
            n,
            policy,
            arrivals: CachePadded::new(S::AtomicU64::new(0)),
            local_episode: (0..n)
                .map(|_| CachePadded::new(S::AtomicU64::new(0)))
                .collect(),
            stats: BarrierStats::with_participants(n),
        }
    }

    fn threshold(&self, episode: u64) -> u64 {
        (episode + 1) * self.n as u64
    }
}

impl<S: SyncOps> SplitBarrier for CountingBarrier<S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        assert!(
            id < self.n,
            "participant id {id} out of range for {} participants",
            self.n
        );
        let episode = self.local_episode[id].fetch_add(1, Ordering::Relaxed);
        self.stats.record_arrival(id);
        let before = self.arrivals.fetch_add(1, Ordering::AcqRel);
        if (before + 1).is_multiple_of(self.n as u64) {
            self.stats.record_episode();
        }
        ArrivalToken::new(id, episode)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.arrivals.load(Ordering::Acquire) >= self.threshold(token.episode)
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        let threshold = self.threshold(token.episode);
        let report = S::wait_until(self.policy, || {
            self.arrivals.load(Ordering::Acquire) >= threshold
        });
        let outcome = WaitOutcome::from_report(token.episode, report);
        self.stats.record_wait(token.id, &outcome);
        outcome
    }

    fn participants(&self) -> usize {
        self.n
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        self.stats.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn threshold_math() {
        let b = CountingBarrier::new(3);
        assert_eq!(b.threshold(0), 3);
        assert_eq!(b.threshold(1), 6);
    }

    #[test]
    fn single_thread_round_trips() {
        let b = CountingBarrier::new(1);
        for e in 0..8 {
            let t = b.arrive(0);
            assert_eq!(t.episode(), e);
            assert!(b.is_complete(&t));
            assert_eq!(b.wait(t).episode, e);
        }
        assert_eq!(b.stats().episodes, 8);
    }

    #[test]
    fn waiting_on_stale_token_returns_instantly() {
        let b = CountingBarrier::new(1);
        let t0 = b.arrive(0);
        b.wait(t0);
        let t1 = b.arrive(0);
        // Episode 1 completes the moment the single participant arrives, so
        // this wait is instant even though another episode already passed.
        assert!(!b.wait(t1).stalled);
    }

    #[test]
    fn eight_threads_sync_repeatedly() {
        let n = 8;
        let b = Arc::new(CountingBarrier::new(n));
        std::thread::scope(|s| {
            for id in 0..n {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for e in 0..300u64 {
                        let t = b.arrive(id);
                        assert_eq!(b.wait(t).episode, e);
                    }
                });
            }
        });
        assert_eq!(b.stats().episodes, 300);
    }
}
