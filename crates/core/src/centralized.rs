//! Centralized (single-counter) split-phase barrier.

use crate::error::BarrierError;
use crate::failure::{self, Deadline, OnTimeout, WaitPolicy};
use crate::spin::StallPolicy;
use crate::stats::{BarrierStats, StatsSnapshot, TelemetrySnapshot};
use crate::sync::{Atomic, RealSync, SyncOps};
use crate::token::{ArrivalToken, WaitOutcome};
use crate::SplitBarrier;
use fuzzy_util::CachePadded;
use std::sync::atomic::Ordering;

/// A centralized split-phase barrier: one shared count-down word plus a
/// 64-bit episode number that plays the role of the classic sense flag.
///
/// This is the epoch-based variant of the sense-reversing centralized
/// barrier. The last participant to arrive resets the counter and bumps the
/// episode; waiters spin until the episode advances past the one captured
/// in their [`ArrivalToken`]. A 64-bit epoch has no reuse hazard, which is
/// the only job the sense flag performs in the boolean formulation.
///
/// The shared counter is the **hot-spot** the paper warns about (Sec. 1):
/// every participant performs a read-modify-write on the same cache line
/// per episode, so arrival cost grows linearly with contention. The
/// [`crate::DisseminationBarrier`] and [`crate::TreeBarrier`] backends avoid
/// it; keeping this backend around is what lets the experiment suite show
/// the contrast.
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::{CentralBarrier, SplitBarrier};
///
/// let b = CentralBarrier::new(1);
/// let token = b.arrive(0);
/// let outcome = b.wait(token);
/// assert!(!outcome.stalled);
/// ```
#[derive(Debug)]
pub struct CentralBarrier<S: SyncOps = RealSync> {
    n: usize,
    policy: StallPolicy,
    /// Participants still in the barrier (decreased by [`Self::leave`]).
    expected: CachePadded<S::AtomicUsize>,
    /// Remaining arrivals in the current episode (counts down from
    /// `expected`).
    count: CachePadded<S::AtomicUsize>,
    /// Number of completed episodes; the release word waiters spin on.
    episode: CachePadded<S::AtomicU64>,
    /// Per-participant count of arrivals performed, used to stamp tokens.
    local_episode: Vec<CachePadded<S::AtomicU64>>,
    /// Non-zero once the barrier is poisoned (see [`SplitBarrier::poison`]).
    poisoned: CachePadded<S::AtomicU32>,
    /// Per-participant eviction flags (non-zero once evicted).
    evicted: Vec<CachePadded<S::AtomicU32>>,
    stats: BarrierStats,
}

impl CentralBarrier {
    /// Creates a barrier for `n` participants with the default stall policy.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_policy(n, StallPolicy::default())
    }

    /// Creates a barrier with an explicit [`StallPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_policy(n: usize, policy: StallPolicy) -> Self {
        Self::with_policy_in(n, policy)
    }
}

impl<S: SyncOps> CentralBarrier<S> {
    /// Creates a barrier in an explicit [`SyncOps`] domain — `RealSync` in
    /// production, instrumented shadow state under the `fuzzy-check` model
    /// checker.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_policy_in(n: usize, policy: StallPolicy) -> Self {
        assert!(n > 0, "a barrier needs at least one participant");
        CentralBarrier {
            n,
            policy,
            expected: CachePadded::new(S::AtomicUsize::new(n)),
            count: CachePadded::new(S::AtomicUsize::new(n)),
            episode: CachePadded::new(S::AtomicU64::new(0)),
            local_episode: (0..n)
                .map(|_| CachePadded::new(S::AtomicU64::new(0)))
                .collect(),
            poisoned: CachePadded::new(S::AtomicU32::new(0)),
            evicted: (0..n)
                .map(|_| CachePadded::new(S::AtomicU32::new(0)))
                .collect(),
            stats: BarrierStats::with_participants(n),
        }
    }

    /// The stall policy waits use.
    #[must_use]
    pub fn policy(&self) -> StallPolicy {
        self.policy
    }

    /// Participants still in the barrier (the construction count minus
    /// departures via [`Self::leave`]).
    #[must_use]
    pub fn remaining_participants(&self) -> usize {
        self.expected.load(Ordering::Acquire)
    }

    /// Permanently removes participant `id` from the barrier — the
    /// analogue of C++20 `std::barrier::arrive_and_drop`, useful when
    /// streams are destroyed dynamically (Sec. 5). The departure counts
    /// as an arrival for the current episode (possibly completing it);
    /// subsequent episodes expect one fewer participant. The departed
    /// participant must not call `arrive` or `wait` again.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or if called when only one
    /// participant remains (a barrier needs at least one).
    pub fn leave(&self, id: usize) {
        self.check_id(id);
        // Shrink the expectation BEFORE the arrival decrement: the episode
        // resetter reads `expected` after winning the count, and the RMW
        // chain on `count` orders this store before that read.
        let prev = self.expected.fetch_sub(1, Ordering::AcqRel);
        assert!(
            prev > 1,
            "the last remaining participant cannot leave the barrier"
        );
        self.stats.record_arrival(id);
        if self.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            let expected = self.expected.load(Ordering::Acquire);
            self.count.store(expected, Ordering::Release);
            self.episode.fetch_add(1, Ordering::Release);
            self.stats.record_episode();
        }
    }

    fn check_id(&self, id: usize) {
        assert!(
            id < self.n,
            "participant id {id} out of range for {} participants",
            self.n
        );
    }

    /// The poison-aware bounded wait all wait flavors funnel through.
    fn wait_core(
        &self,
        token: &ArrivalToken,
        deadline: Deadline,
        policy: StallPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        // Adaptive policies become a concrete budget sized by this
        // barrier's wait-cost history; everything else passes through.
        let policy = self.stats.resolve_policy(policy);
        let result = failure::guarded_wait::<S>(
            policy,
            deadline,
            token.episode,
            || self.episode.load(Ordering::Acquire) > token.episode,
            || self.poisoned.load(Ordering::Acquire) != 0,
        );
        match result {
            Ok(outcome) => {
                self.stats.record_wait(token.id, &outcome);
                Ok(outcome)
            }
            Err(fault) => {
                if matches!(fault.error, BarrierError::Timeout { .. }) {
                    self.stats.record_timeout(token.id, &fault.report);
                }
                Err(fault.error)
            }
        }
    }
}

impl<S: SyncOps> SplitBarrier for CentralBarrier<S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        self.check_id(id);
        let episode = self.local_episode[id].fetch_add(1, Ordering::Relaxed);
        self.stats.record_arrival(id);
        if self.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arriver: re-arm the counter for the next episode, then
            // publish completion. The order matters — participants released
            // by the episode bump may immediately arrive again and must see
            // a full counter. The expectation is re-read because
            // participants may have left (see [`Self::leave`]).
            let expected = self.expected.load(Ordering::Acquire);
            self.count.store(expected, Ordering::Release);
            self.episode.fetch_add(1, Ordering::Release);
            self.stats.record_episode();
        }
        ArrivalToken::new(id, episode)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.episode.load(Ordering::Acquire) > token.episode
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        match self.wait_core(&token, Deadline::never(), self.policy) {
            Ok(outcome) => outcome,
            Err(e) => panic!("CentralBarrier::wait failed: {e} (use wait_deadline to recover)"),
        }
    }

    fn wait_deadline(
        &self,
        token: ArrivalToken,
        deadline: Deadline,
    ) -> Result<WaitOutcome, BarrierError> {
        self.wait_core(&token, deadline, self.policy)
    }

    fn wait_with(
        &self,
        token: ArrivalToken,
        policy: &WaitPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        let backoff = policy.backoff.unwrap_or(self.policy);
        let result = self.wait_core(&token, policy.arm(), backoff);
        if matches!(result, Err(BarrierError::Timeout { .. }))
            && policy.on_timeout == OnTimeout::Poison
        {
            self.poison();
        }
        result
    }

    fn poison(&self) {
        if self.poisoned.fetch_max(1, Ordering::AcqRel) == 0 {
            self.stats.record_poisoning();
        }
    }

    fn clear_poison(&self) {
        self.poisoned.store(0, Ordering::Release);
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire) != 0
    }

    fn evict(&self, id: usize) -> Result<(), BarrierError> {
        if id >= self.n {
            return Err(BarrierError::InvalidParticipant {
                id,
                capacity: self.n,
            });
        }
        // A dead id stays dead regardless of how many live remain, so the
        // already-evicted check comes first; the RMW below re-checks it
        // when claiming. (Concurrent evictions that race past the
        // EmptyGroup check toward an empty barrier are a caller contract
        // violation, as for `leave`.)
        if self.evicted[id].load(Ordering::Acquire) != 0 {
            return Err(BarrierError::NotAParticipant { id });
        }
        if self.expected.load(Ordering::Acquire) <= 1 {
            return Err(BarrierError::EmptyGroup);
        }
        if self.evicted[id].fetch_max(1, Ordering::AcqRel) != 0 {
            return Err(BarrierError::NotAParticipant { id });
        }
        self.stats.record_eviction();
        // Same discipline as `leave`: shrink the expectation BEFORE the
        // stand-in arrival decrement, so the episode resetter (ordered
        // after us by the RMW chain on `count`) re-arms with the shrunk
        // value. The evicted participant must not have arrived for the
        // in-flight episode — this decrement is its stand-in arrival.
        self.expected.fetch_sub(1, Ordering::AcqRel);
        if self.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            let expected = self.expected.load(Ordering::Acquire);
            self.count.store(expected, Ordering::Release);
            self.episode.fetch_add(1, Ordering::Release);
            self.stats.record_episode();
        }
        Ok(())
    }

    fn participants(&self) -> usize {
        self.n
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        self.stats.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_panics() {
        let _ = CentralBarrier::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        let b = CentralBarrier::new(2);
        let _ = b.arrive(2);
    }

    #[test]
    fn episodes_advance_in_order() {
        let b = CentralBarrier::new(1);
        for e in 0..5 {
            let t = b.arrive(0);
            assert_eq!(t.episode(), e);
            assert!(b.is_complete(&t));
            b.wait(t);
        }
    }

    #[test]
    fn four_threads_thousand_episodes() {
        let n = 4;
        let b = Arc::new(CentralBarrier::new(n));
        std::thread::scope(|s| {
            for id in 0..n {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for e in 0..1000u64 {
                        let t = b.arrive(id);
                        let o = b.wait(t);
                        assert_eq!(o.episode, e);
                    }
                });
            }
        });
        let s = b.stats();
        assert_eq!(s.episodes, 1000);
        assert_eq!(s.arrivals, 4000);
        assert_eq!(s.waits, 4000);
    }

    #[test]
    fn barrier_actually_separates_phases() {
        // Writer/reader pairs: each thread writes its cell before the
        // barrier and reads its neighbour's after; the value must always be
        // the neighbour's write from the same phase.
        use std::sync::atomic::AtomicU64;
        let n = 4;
        let cells: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let b = Arc::new(CentralBarrier::new(n));
        std::thread::scope(|s| {
            for id in 0..n {
                let b = Arc::clone(&b);
                let cells = Arc::clone(&cells);
                s.spawn(move || {
                    for phase in 1..=500u64 {
                        cells[id].store(phase, Ordering::Release);
                        let t = b.arrive(id);
                        b.wait(t);
                        let neighbour = cells[(id + 1) % n].load(Ordering::Acquire);
                        assert!(
                            neighbour >= phase,
                            "participant {id} saw stale phase {neighbour} < {phase}"
                        );
                        // A second barrier keeps phases from overlapping the
                        // next store.
                        let t = b.arrive(id);
                        b.wait(t);
                    }
                });
            }
        });
    }

    #[test]
    fn leaving_shrinks_the_barrier() {
        let b = Arc::new(CentralBarrier::new(3));
        std::thread::scope(|s| {
            // Participant 2 runs one episode, then leaves.
            let b2 = Arc::clone(&b);
            s.spawn(move || {
                let t = b2.arrive(2);
                b2.wait(t);
                b2.leave(2);
            });
            for id in 0..2 {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for _ in 0..50 {
                        let t = b.arrive(id);
                        b.wait(t);
                    }
                });
            }
        });
        assert_eq!(b.remaining_participants(), 2);
        assert_eq!(b.stats().episodes, 50);
    }

    #[test]
    fn leave_can_complete_the_current_episode() {
        let b = Arc::new(CentralBarrier::new(2));
        std::thread::scope(|s| {
            let b0 = Arc::clone(&b);
            s.spawn(move || {
                let t = b0.arrive(0);
                // Participant 1 never arrives — it leaves instead, which
                // must release us.
                let o = b0.wait(t);
                assert_eq!(o.episode, 0);
            });
            let b1 = Arc::clone(&b);
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                b1.leave(1);
            });
        });
        assert_eq!(b.remaining_participants(), 1);
        // The lone survivor can keep synchronizing with itself.
        let t = b.arrive(0);
        assert!(!b.wait(t).stalled);
    }

    #[test]
    #[should_panic(expected = "last remaining participant")]
    fn last_participant_cannot_leave() {
        let b = CentralBarrier::new(1);
        b.leave(0);
    }

    #[test]
    fn stalled_participant_times_out_then_eviction_recovers() {
        // The headline fault story at N=4: participant 3 permanently stalls
        // before arriving. Peers no longer deadlock — they observe a
        // Timeout within their deadline, the straggler is evicted, and the
        // survivors complete the next episode.
        let n = 4;
        let b = Arc::new(CentralBarrier::new(n));
        std::thread::scope(|s| {
            let mut waiters = Vec::new();
            for id in 0..3 {
                let b = Arc::clone(&b);
                waiters.push(s.spawn(move || {
                    let t = b.arrive(id);
                    let err = b
                        .wait_deadline(t, Deadline::after(std::time::Duration::from_millis(30)))
                        .unwrap_err();
                    assert_eq!(err, BarrierError::Timeout { episode: 0 });
                }));
            }
            for w in waiters {
                w.join().unwrap();
            }
        });
        // Evict the straggler: its stand-in arrival completes episode 0.
        b.evict(3).unwrap();
        assert_eq!(b.remaining_participants(), 3);
        // Survivors re-synchronize on the next episode.
        std::thread::scope(|s| {
            for id in 0..3 {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    let t = b.arrive(id);
                    let o = b.wait(t);
                    assert_eq!(o.episode, 1);
                });
            }
        });
        let stats = b.stats();
        assert_eq!(stats.timeouts, 3);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.episodes, 2);
    }

    #[test]
    fn poison_releases_unbounded_deadline_waiters() {
        let b = Arc::new(CentralBarrier::new(2));
        std::thread::scope(|s| {
            let b0 = Arc::clone(&b);
            s.spawn(move || {
                let t = b0.arrive(0);
                let err = b0.wait_deadline(t, Deadline::never()).unwrap_err();
                assert_eq!(err, BarrierError::Poisoned { episode: 0 });
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            b.poison();
        });
        assert!(b.is_poisoned());
        assert_eq!(b.stats().poisonings, 1);
        // Recovery: clear the poison, evict the participant that never
        // arrived, and the survivor synchronizes alone from then on.
        b.clear_poison();
        assert!(!b.is_poisoned());
        b.evict(1).unwrap();
        let t = b.arrive(0);
        assert_eq!(b.wait(t).episode, 1);
    }

    #[test]
    #[should_panic(expected = "use wait_deadline to recover")]
    fn plain_wait_panics_on_poison() {
        let b = CentralBarrier::new(2);
        let t = b.arrive(0);
        b.poison();
        let _ = b.wait(t);
    }

    #[test]
    fn abort_consumes_token_and_poisons() {
        let b = CentralBarrier::new(2);
        let t = b.arrive(0);
        b.abort(t);
        assert!(b.is_poisoned());
    }

    #[test]
    fn completion_wins_over_poison() {
        let b = CentralBarrier::new(1);
        let t = b.arrive(0); // n == 1: the episode completes immediately
        b.poison();
        let o = b
            .wait_deadline(t, Deadline::never())
            .expect("completed episode must win over poison");
        assert_eq!(o.episode, 0);
    }

    #[test]
    fn wait_with_poison_on_timeout_releases_peers() {
        // Participant 2 never arrives. Participant 0 escalates its timeout
        // to a poisoning, which releases participant 1's unbounded wait.
        let b = Arc::new(CentralBarrier::new(3));
        std::thread::scope(|s| {
            let b0 = Arc::clone(&b);
            s.spawn(move || {
                let t = b0.arrive(0);
                let policy = WaitPolicy::new()
                    .deadline(std::time::Duration::from_millis(20))
                    .on_timeout(OnTimeout::Poison);
                let err = b0.wait_with(t, &policy).unwrap_err();
                assert_eq!(err, BarrierError::Timeout { episode: 0 });
            });
            let b1 = Arc::clone(&b);
            s.spawn(move || {
                let t = b1.arrive(1);
                let err = b1.wait_deadline(t, Deadline::never()).unwrap_err();
                assert_eq!(err, BarrierError::Poisoned { episode: 0 });
            });
        });
        assert!(b.is_poisoned());
    }

    #[test]
    fn evict_guards_reject_bad_ids() {
        let b = CentralBarrier::new(2);
        assert_eq!(
            b.evict(5).unwrap_err(),
            BarrierError::InvalidParticipant { id: 5, capacity: 2 }
        );
        b.evict(1).unwrap();
        assert_eq!(
            b.evict(1).unwrap_err(),
            BarrierError::NotAParticipant { id: 1 }
        );
        assert_eq!(b.evict(0).unwrap_err(), BarrierError::EmptyGroup);
        // The survivor still synchronizes: its arrival joins the evictee's
        // stand-in arrival to complete episode 0.
        let t = b.arrive(0);
        assert_eq!(b.wait(t).episode, 0);
    }

    #[test]
    fn stall_detection_sees_late_arriver() {
        let b = Arc::new(CentralBarrier::new(2));
        std::thread::scope(|s| {
            let early = Arc::clone(&b);
            s.spawn(move || {
                let t = early.arrive(0);
                let o = early.wait(t);
                assert_eq!(o.episode, 0);
            });
            let late = Arc::clone(&b);
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                let t = late.arrive(1);
                let o = late.wait(t);
                // The last arriver completes the episode itself, so it
                // must not stall.
                assert!(!o.stalled);
            });
        });
        assert!(
            b.stats().stalls >= 1,
            "the early thread should have stalled"
        );
    }
}
