//! Centralized (single-counter) split-phase barrier.

use crate::spin::StallPolicy;
use crate::stats::{BarrierStats, StatsSnapshot, TelemetrySnapshot};
use crate::sync::{Atomic, RealSync, SyncOps};
use crate::token::{ArrivalToken, WaitOutcome};
use crate::SplitBarrier;
use fuzzy_util::CachePadded;
use std::sync::atomic::Ordering;

/// A centralized split-phase barrier: one shared count-down word plus a
/// 64-bit episode number that plays the role of the classic sense flag.
///
/// This is the epoch-based variant of the sense-reversing centralized
/// barrier. The last participant to arrive resets the counter and bumps the
/// episode; waiters spin until the episode advances past the one captured
/// in their [`ArrivalToken`]. A 64-bit epoch has no reuse hazard, which is
/// the only job the sense flag performs in the boolean formulation.
///
/// The shared counter is the **hot-spot** the paper warns about (Sec. 1):
/// every participant performs a read-modify-write on the same cache line
/// per episode, so arrival cost grows linearly with contention. The
/// [`crate::DisseminationBarrier`] and [`crate::TreeBarrier`] backends avoid
/// it; keeping this backend around is what lets the experiment suite show
/// the contrast.
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::{CentralBarrier, SplitBarrier};
///
/// let b = CentralBarrier::new(1);
/// let token = b.arrive(0);
/// let outcome = b.wait(token);
/// assert!(!outcome.stalled);
/// ```
#[derive(Debug)]
pub struct CentralBarrier<S: SyncOps = RealSync> {
    n: usize,
    policy: StallPolicy,
    /// Participants still in the barrier (decreased by [`Self::leave`]).
    expected: CachePadded<S::AtomicUsize>,
    /// Remaining arrivals in the current episode (counts down from
    /// `expected`).
    count: CachePadded<S::AtomicUsize>,
    /// Number of completed episodes; the release word waiters spin on.
    episode: CachePadded<S::AtomicU64>,
    /// Per-participant count of arrivals performed, used to stamp tokens.
    local_episode: Vec<CachePadded<S::AtomicU64>>,
    stats: BarrierStats,
}

impl CentralBarrier {
    /// Creates a barrier for `n` participants with the default stall policy.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_policy(n, StallPolicy::default())
    }

    /// Creates a barrier with an explicit [`StallPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_policy(n: usize, policy: StallPolicy) -> Self {
        Self::with_policy_in(n, policy)
    }
}

impl<S: SyncOps> CentralBarrier<S> {
    /// Creates a barrier in an explicit [`SyncOps`] domain — `RealSync` in
    /// production, instrumented shadow state under the `fuzzy-check` model
    /// checker.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_policy_in(n: usize, policy: StallPolicy) -> Self {
        assert!(n > 0, "a barrier needs at least one participant");
        CentralBarrier {
            n,
            policy,
            expected: CachePadded::new(S::AtomicUsize::new(n)),
            count: CachePadded::new(S::AtomicUsize::new(n)),
            episode: CachePadded::new(S::AtomicU64::new(0)),
            local_episode: (0..n)
                .map(|_| CachePadded::new(S::AtomicU64::new(0)))
                .collect(),
            stats: BarrierStats::with_participants(n),
        }
    }

    /// The stall policy waits use.
    #[must_use]
    pub fn policy(&self) -> StallPolicy {
        self.policy
    }

    /// Participants still in the barrier (the construction count minus
    /// departures via [`Self::leave`]).
    #[must_use]
    pub fn remaining_participants(&self) -> usize {
        self.expected.load(Ordering::Acquire)
    }

    /// Permanently removes participant `id` from the barrier — the
    /// analogue of C++20 `std::barrier::arrive_and_drop`, useful when
    /// streams are destroyed dynamically (Sec. 5). The departure counts
    /// as an arrival for the current episode (possibly completing it);
    /// subsequent episodes expect one fewer participant. The departed
    /// participant must not call `arrive` or `wait` again.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or if called when only one
    /// participant remains (a barrier needs at least one).
    pub fn leave(&self, id: usize) {
        self.check_id(id);
        // Shrink the expectation BEFORE the arrival decrement: the episode
        // resetter reads `expected` after winning the count, and the RMW
        // chain on `count` orders this store before that read.
        let prev = self.expected.fetch_sub(1, Ordering::AcqRel);
        assert!(
            prev > 1,
            "the last remaining participant cannot leave the barrier"
        );
        self.stats.record_arrival(id);
        if self.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            let expected = self.expected.load(Ordering::Acquire);
            self.count.store(expected, Ordering::Release);
            self.episode.fetch_add(1, Ordering::Release);
            self.stats.record_episode();
        }
    }

    fn check_id(&self, id: usize) {
        assert!(
            id < self.n,
            "participant id {id} out of range for {} participants",
            self.n
        );
    }
}

impl<S: SyncOps> SplitBarrier for CentralBarrier<S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        self.check_id(id);
        let episode = self.local_episode[id].fetch_add(1, Ordering::Relaxed);
        self.stats.record_arrival(id);
        if self.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arriver: re-arm the counter for the next episode, then
            // publish completion. The order matters — participants released
            // by the episode bump may immediately arrive again and must see
            // a full counter. The expectation is re-read because
            // participants may have left (see [`Self::leave`]).
            let expected = self.expected.load(Ordering::Acquire);
            self.count.store(expected, Ordering::Release);
            self.episode.fetch_add(1, Ordering::Release);
            self.stats.record_episode();
        }
        ArrivalToken::new(id, episode)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.episode.load(Ordering::Acquire) > token.episode
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        let report = S::wait_until(self.policy, || {
            self.episode.load(Ordering::Acquire) > token.episode
        });
        let outcome = WaitOutcome::from_report(token.episode, report);
        self.stats.record_wait(token.id, &outcome);
        outcome
    }

    fn participants(&self) -> usize {
        self.n
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        self.stats.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_panics() {
        let _ = CentralBarrier::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        let b = CentralBarrier::new(2);
        let _ = b.arrive(2);
    }

    #[test]
    fn episodes_advance_in_order() {
        let b = CentralBarrier::new(1);
        for e in 0..5 {
            let t = b.arrive(0);
            assert_eq!(t.episode(), e);
            assert!(b.is_complete(&t));
            b.wait(t);
        }
    }

    #[test]
    fn four_threads_thousand_episodes() {
        let n = 4;
        let b = Arc::new(CentralBarrier::new(n));
        std::thread::scope(|s| {
            for id in 0..n {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for e in 0..1000u64 {
                        let t = b.arrive(id);
                        let o = b.wait(t);
                        assert_eq!(o.episode, e);
                    }
                });
            }
        });
        let s = b.stats();
        assert_eq!(s.episodes, 1000);
        assert_eq!(s.arrivals, 4000);
        assert_eq!(s.waits, 4000);
    }

    #[test]
    fn barrier_actually_separates_phases() {
        // Writer/reader pairs: each thread writes its cell before the
        // barrier and reads its neighbour's after; the value must always be
        // the neighbour's write from the same phase.
        use std::sync::atomic::AtomicU64;
        let n = 4;
        let cells: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let b = Arc::new(CentralBarrier::new(n));
        std::thread::scope(|s| {
            for id in 0..n {
                let b = Arc::clone(&b);
                let cells = Arc::clone(&cells);
                s.spawn(move || {
                    for phase in 1..=500u64 {
                        cells[id].store(phase, Ordering::Release);
                        let t = b.arrive(id);
                        b.wait(t);
                        let neighbour = cells[(id + 1) % n].load(Ordering::Acquire);
                        assert!(
                            neighbour >= phase,
                            "participant {id} saw stale phase {neighbour} < {phase}"
                        );
                        // A second barrier keeps phases from overlapping the
                        // next store.
                        let t = b.arrive(id);
                        b.wait(t);
                    }
                });
            }
        });
    }

    #[test]
    fn leaving_shrinks_the_barrier() {
        let b = Arc::new(CentralBarrier::new(3));
        std::thread::scope(|s| {
            // Participant 2 runs one episode, then leaves.
            let b2 = Arc::clone(&b);
            s.spawn(move || {
                let t = b2.arrive(2);
                b2.wait(t);
                b2.leave(2);
            });
            for id in 0..2 {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for _ in 0..50 {
                        let t = b.arrive(id);
                        b.wait(t);
                    }
                });
            }
        });
        assert_eq!(b.remaining_participants(), 2);
        assert_eq!(b.stats().episodes, 50);
    }

    #[test]
    fn leave_can_complete_the_current_episode() {
        let b = Arc::new(CentralBarrier::new(2));
        std::thread::scope(|s| {
            let b0 = Arc::clone(&b);
            s.spawn(move || {
                let t = b0.arrive(0);
                // Participant 1 never arrives — it leaves instead, which
                // must release us.
                let o = b0.wait(t);
                assert_eq!(o.episode, 0);
            });
            let b1 = Arc::clone(&b);
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                b1.leave(1);
            });
        });
        assert_eq!(b.remaining_participants(), 1);
        // The lone survivor can keep synchronizing with itself.
        let t = b.arrive(0);
        assert!(!b.wait(t).stalled);
    }

    #[test]
    #[should_panic(expected = "last remaining participant")]
    fn last_participant_cannot_leave() {
        let b = CentralBarrier::new(1);
        b.leave(0);
    }

    #[test]
    fn stall_detection_sees_late_arriver() {
        let b = Arc::new(CentralBarrier::new(2));
        std::thread::scope(|s| {
            let early = Arc::clone(&b);
            s.spawn(move || {
                let t = early.arrive(0);
                let o = early.wait(t);
                assert_eq!(o.episode, 0);
            });
            let late = Arc::clone(&b);
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                let t = late.arrive(1);
                let o = late.wait(t);
                // The last arriver completes the episode itself, so it
                // must not stall.
                assert!(!o.stalled);
            });
        });
        assert!(
            b.stats().stalls >= 1,
            "the early thread should have stalled"
        );
    }
}
