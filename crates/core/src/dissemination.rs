//! Dissemination split-phase barrier — O(log n) rounds, no hot spot.

use crate::spin::StallPolicy;
use crate::stats::{BarrierStats, StatsSnapshot, TelemetrySnapshot};
use crate::sync::{Atomic, RealSync, SyncOps};
use crate::token::{ArrivalToken, WaitOutcome};
use crate::SplitBarrier;
use fuzzy_util::CachePadded;
use std::sync::atomic::Ordering;

/// A dissemination barrier with a split-phase interface.
///
/// In round *r* participant *i* signals participant *(i + 2^r) mod n* and
/// waits for the signal from *(i − 2^r) mod n*; after ⌈log₂ n⌉ rounds every
/// participant transitively knows that everyone arrived. No word is written
/// by more than one participant, so there is no hot spot — this is the
/// "best possible software implementation" with logarithmic cost that the
/// paper cites (\[4\] in Sec. 1).
///
/// The split is cooperative: [`SplitBarrier::arrive`] performs the round-0
/// signal and returns; later rounds progress inside
/// [`SplitBarrier::is_complete`] / [`SplitBarrier::wait`] probes. Signals
/// carry monotone episode numbers, so late observers of an overwritten slot
/// still see a value at least as large as the one they wait for.
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::{DisseminationBarrier, SplitBarrier};
///
/// let b = DisseminationBarrier::new(1);
/// let t = b.arrive(0);
/// assert!(!b.wait(t).stalled);
/// ```
#[derive(Debug)]
pub struct DisseminationBarrier<S: SyncOps = RealSync> {
    n: usize,
    rounds: u32,
    policy: StallPolicy,
    /// `flags[r][i]`: highest episode for which the round-`r` signal aimed
    /// at participant `i` has been sent. Single writer per slot.
    flags: Vec<Vec<CachePadded<S::AtomicU64>>>,
    /// Per-participant progress through the current episode's rounds.
    progress: Vec<CachePadded<Progress<S>>>,
    /// Highest episode any participant has fully completed (for stats).
    completed: CachePadded<S::AtomicU64>,
    stats: BarrierStats,
}

/// Memory-ordering note (audited): `episode` and `round` are accessed
/// **only through participant `id`'s own calls** — `arrive(id)` and the
/// `try_progress(token.id, ..)` probes driven by that arrival's token.
/// `Relaxed` is therefore sufficient for both:
///
/// * If the token stays on the arriving thread (the normal protocol), all
///   accesses to `progress[id]` are same-thread, and per-location coherence
///   alone guarantees each load sees the preceding store.
/// * If the token is handed to another thread, the hand-off mechanism
///   (channel, join, mutex — anything that makes the transfer sound) itself
///   establishes happens-before between the two threads' accesses, so the
///   receiver still observes the owner's last `Relaxed` store.
///
/// Cross-participant synchronization never flows through `progress`: it is
/// carried exclusively by the `flags` slots, whose `Release` stores
/// ([`DisseminationBarrier::signal`]) pair with the `Acquire` loads in
/// `try_progress` to order each signaller's pre-barrier writes before the
/// observer's post-barrier reads, transitively across all ⌈log₂ n⌉ rounds.
#[derive(Debug)]
struct Progress<S: SyncOps> {
    episode: S::AtomicU64,
    round: S::AtomicU32,
}

impl<S: SyncOps> Progress<S> {
    fn new() -> Self {
        Progress {
            episode: S::AtomicU64::new(0),
            round: S::AtomicU32::new(0),
        }
    }
}

impl DisseminationBarrier {
    /// Creates a barrier for `n` participants with the default stall policy.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_policy(n, StallPolicy::default())
    }

    /// Creates a barrier with an explicit [`StallPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_policy(n: usize, policy: StallPolicy) -> Self {
        Self::with_policy_in(n, policy)
    }
}

impl<S: SyncOps> DisseminationBarrier<S> {
    /// Creates a barrier in an explicit [`SyncOps`] domain — `RealSync` in
    /// production, instrumented shadow state under the `fuzzy-check` model
    /// checker.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_policy_in(n: usize, policy: StallPolicy) -> Self {
        assert!(n > 0, "a barrier needs at least one participant");
        let rounds = usize::BITS - (n - 1).leading_zeros(); // ceil(log2 n); 0 for n == 1
        let flags = (0..rounds)
            .map(|_| {
                (0..n)
                    .map(|_| CachePadded::new(S::AtomicU64::new(0)))
                    .collect()
            })
            .collect();
        DisseminationBarrier {
            n,
            rounds,
            policy,
            flags,
            progress: (0..n).map(|_| CachePadded::new(Progress::new())).collect(),
            completed: CachePadded::new(S::AtomicU64::new(0)),
            stats: BarrierStats::with_participants(n),
        }
    }

    /// Number of signalling rounds per episode (⌈log₂ n⌉).
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    fn partner(&self, id: usize, round: u32) -> usize {
        (id + (1usize << round)) % self.n
    }

    fn signal(&self, from: usize, round: u32, episode_plus_one: u64) {
        let target = self.partner(from, round);
        self.flags[round as usize][target].store(episode_plus_one, Ordering::Release);
    }

    /// Advances participant `id` through as many rounds of `episode` as the
    /// received signals allow, without blocking. Returns true once all
    /// rounds are complete.
    fn try_progress(&self, id: usize, episode: u64) -> bool {
        let goal = episode + 1;
        loop {
            let round = self.progress[id].round.load(Ordering::Relaxed);
            if round >= self.rounds {
                return true;
            }
            if self.flags[round as usize][id].load(Ordering::Acquire) >= goal {
                let next = round + 1;
                if next < self.rounds {
                    self.signal(id, next, goal);
                }
                self.progress[id].round.store(next, Ordering::Relaxed);
                if next == self.rounds {
                    // This participant has completed the episode; record it
                    // once globally.
                    if self.completed.fetch_max(goal, Ordering::AcqRel) < goal {
                        self.stats.record_episode();
                    }
                    return true;
                }
            } else {
                return false;
            }
        }
    }
}

impl<S: SyncOps> SplitBarrier for DisseminationBarrier<S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        assert!(
            id < self.n,
            "participant id {id} out of range for {} participants",
            self.n
        );
        let episode = self.progress[id].episode.fetch_add(1, Ordering::Relaxed);
        self.progress[id].round.store(0, Ordering::Relaxed);
        self.stats.record_arrival(id);
        if self.rounds == 0 {
            // Single participant: the episode is complete on arrival.
            if self.completed.fetch_max(episode + 1, Ordering::AcqRel) < episode + 1 {
                self.stats.record_episode();
            }
        } else {
            self.signal(id, 0, episode + 1);
        }
        ArrivalToken::new(id, episode)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.try_progress(token.id, token.episode)
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        let report = S::wait_until(self.policy, || self.try_progress(token.id, token.episode));
        let outcome = WaitOutcome::from_report(token.episode, report);
        self.stats.record_wait(token.id, &outcome);
        outcome
    }

    fn participants(&self) -> usize {
        self.n
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        self.stats.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_counts() {
        assert_eq!(DisseminationBarrier::new(1).rounds(), 0);
        assert_eq!(DisseminationBarrier::new(2).rounds(), 1);
        assert_eq!(DisseminationBarrier::new(3).rounds(), 2);
        assert_eq!(DisseminationBarrier::new(4).rounds(), 2);
        assert_eq!(DisseminationBarrier::new(5).rounds(), 3);
        assert_eq!(DisseminationBarrier::new(8).rounds(), 3);
        assert_eq!(DisseminationBarrier::new(9).rounds(), 4);
    }

    #[test]
    fn partners_wrap_around() {
        let b = DisseminationBarrier::new(5);
        assert_eq!(b.partner(3, 0), 4);
        assert_eq!(b.partner(4, 0), 0);
        assert_eq!(b.partner(3, 1), 0);
        assert_eq!(b.partner(2, 2), 1);
    }

    #[test]
    fn single_participant_instant() {
        let b = DisseminationBarrier::new(1);
        for e in 0..5 {
            let t = b.arrive(0);
            assert!(b.is_complete(&t));
            assert_eq!(b.wait(t).episode, e);
        }
        assert_eq!(b.stats().episodes, 5);
    }

    #[test]
    fn non_power_of_two_participants() {
        for n in [2usize, 3, 5, 6, 7] {
            let b = Arc::new(DisseminationBarrier::new(n));
            std::thread::scope(|s| {
                for id in 0..n {
                    let b = Arc::clone(&b);
                    s.spawn(move || {
                        for e in 0..200u64 {
                            let t = b.arrive(id);
                            assert_eq!(b.wait(t).episode, e, "n={n} id={id}");
                        }
                    });
                }
            });
            assert_eq!(b.stats().episodes, 200, "n={n}");
        }
    }

    #[test]
    fn separates_phases_with_real_data() {
        use std::sync::atomic::AtomicU64;
        let n = 4;
        let cells: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let b = Arc::new(DisseminationBarrier::new(n));
        std::thread::scope(|s| {
            for id in 0..n {
                let b = Arc::clone(&b);
                let cells = Arc::clone(&cells);
                s.spawn(move || {
                    for phase in 1..=300u64 {
                        cells[id].store(phase, Ordering::Release);
                        let t = b.arrive(id);
                        b.wait(t);
                        let v = cells[(id + n - 1) % n].load(Ordering::Acquire);
                        assert!(v >= phase, "stale read {v} in phase {phase}");
                        let t = b.arrive(id);
                        b.wait(t);
                    }
                });
            }
        });
    }
}
