//! Dissemination split-phase barrier — O(log n) rounds, no hot spot.

use crate::error::BarrierError;
use crate::failure::{self, Deadline, OnTimeout, WaitPolicy};
use crate::spin::StallPolicy;
use crate::stats::{BarrierStats, StatsSnapshot, TelemetrySnapshot};
use crate::sync::{Atomic, RealSync, SyncOps};
use crate::token::{ArrivalToken, WaitOutcome};
use crate::SplitBarrier;
use fuzzy_util::CachePadded;
use std::sync::atomic::Ordering;

/// A dissemination barrier with a split-phase interface.
///
/// In round *r* participant *i* signals participant *(i + 2^r) mod n* and
/// waits for the signal from *(i − 2^r) mod n*; after ⌈log₂ n⌉ rounds every
/// participant transitively knows that everyone arrived. No word is written
/// by more than one participant, so there is no hot spot — this is the
/// "best possible software implementation" with logarithmic cost that the
/// paper cites (\[4\] in Sec. 1).
///
/// The split is cooperative: [`SplitBarrier::arrive`] performs the round-0
/// signal and returns; later rounds progress inside
/// [`SplitBarrier::is_complete`] / [`SplitBarrier::wait`] probes. Signals
/// carry monotone episode numbers, so late observers of an overwritten slot
/// still see a value at least as large as the one they wait for.
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::{DisseminationBarrier, SplitBarrier};
///
/// let b = DisseminationBarrier::new(1);
/// let t = b.arrive(0);
/// assert!(!b.wait(t).stalled);
/// ```
#[derive(Debug)]
pub struct DisseminationBarrier<S: SyncOps = RealSync> {
    n: usize,
    rounds: u32,
    policy: StallPolicy,
    /// `flags[r * n + i]`: highest episode for which the round-`r` signal
    /// aimed at participant `i` has been sent. Single writer per slot.
    ///
    /// False-sharing audit: every slot is individually [`CachePadded`], so
    /// two participants' flags can never share a line regardless of layout.
    /// The slots are kept in **one** round-major allocation (rather than a
    /// `Vec` per round) so the outer spine is a single pointer-width block:
    /// the per-round `Vec` headers (ptr/len/cap triples, 24 bytes apiece)
    /// previously sat adjacent in the spine and were re-read on every probe
    /// next to their neighbours' headers — read-only sharing, but still a
    /// needless dependent load per round. A flat slice makes the indexing
    /// arithmetic (`r * n + i`) and drops one indirection per flag access.
    flags: Box<[CachePadded<S::AtomicU64>]>,
    /// Per-participant progress through the current episode's rounds.
    progress: Vec<CachePadded<Progress<S>>>,
    /// Highest episode any participant has fully completed (for stats).
    completed: CachePadded<S::AtomicU64>,
    /// Number of evicted participants (guards against emptying the barrier).
    dead: CachePadded<S::AtomicUsize>,
    /// Non-zero once the barrier is poisoned.
    poisoned: CachePadded<S::AtomicU32>,
    /// Per-participant eviction flags (non-zero once evicted). Read by the
    /// ghost-signal closure in [`Self::flag_ready`].
    evicted: Vec<CachePadded<S::AtomicU32>>,
    stats: BarrierStats,
}

/// Memory-ordering note (audited): `episode` and `round` are accessed
/// **only through participant `id`'s own calls** — `arrive(id)` and the
/// `try_progress(token.id, ..)` probes driven by that arrival's token.
/// `Relaxed` is therefore sufficient for both:
///
/// * If the token stays on the arriving thread (the normal protocol), all
///   accesses to `progress[id]` are same-thread, and per-location coherence
///   alone guarantees each load sees the preceding store.
/// * If the token is handed to another thread, the hand-off mechanism
///   (channel, join, mutex — anything that makes the transfer sound) itself
///   establishes happens-before between the two threads' accesses, so the
///   receiver still observes the owner's last `Relaxed` store.
///
/// Cross-participant synchronization never flows through `progress`: it is
/// carried exclusively by the `flags` slots, whose `Release` stores
/// ([`DisseminationBarrier::signal`]) pair with the `Acquire` loads in
/// `try_progress` to order each signaller's pre-barrier writes before the
/// observer's post-barrier reads, transitively across all ⌈log₂ n⌉ rounds.
#[derive(Debug)]
struct Progress<S: SyncOps> {
    episode: S::AtomicU64,
    round: S::AtomicU32,
}

impl<S: SyncOps> Progress<S> {
    fn new() -> Self {
        Progress {
            episode: S::AtomicU64::new(0),
            round: S::AtomicU32::new(0),
        }
    }
}

impl DisseminationBarrier {
    /// Creates a barrier for `n` participants with the default stall policy.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_policy(n, StallPolicy::default())
    }

    /// Creates a barrier with an explicit [`StallPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_policy(n: usize, policy: StallPolicy) -> Self {
        Self::with_policy_in(n, policy)
    }
}

impl<S: SyncOps> DisseminationBarrier<S> {
    /// Creates a barrier in an explicit [`SyncOps`] domain — `RealSync` in
    /// production, instrumented shadow state under the `fuzzy-check` model
    /// checker.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_policy_in(n: usize, policy: StallPolicy) -> Self {
        assert!(n > 0, "a barrier needs at least one participant");
        let rounds = usize::BITS - (n - 1).leading_zeros(); // ceil(log2 n); 0 for n == 1
        let flags = (0..rounds as usize * n)
            .map(|_| CachePadded::new(S::AtomicU64::new(0)))
            .collect();
        DisseminationBarrier {
            n,
            rounds,
            policy,
            flags,
            progress: (0..n).map(|_| CachePadded::new(Progress::new())).collect(),
            completed: CachePadded::new(S::AtomicU64::new(0)),
            dead: CachePadded::new(S::AtomicUsize::new(0)),
            poisoned: CachePadded::new(S::AtomicU32::new(0)),
            evicted: (0..n)
                .map(|_| CachePadded::new(S::AtomicU32::new(0)))
                .collect(),
            stats: BarrierStats::with_participants(n),
        }
    }

    /// Number of signalling rounds per episode (⌈log₂ n⌉).
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    fn partner(&self, id: usize, round: u32) -> usize {
        (id + (1usize << round)) % self.n
    }

    /// Inverse of [`Self::partner`]: the participant whose round-`round`
    /// signal is aimed at `id`. (`2^round < n` holds for every valid round,
    /// so the subtraction cannot underflow modulo `n`.)
    fn source(&self, id: usize, round: u32) -> usize {
        (id + self.n - (1usize << round)) % self.n
    }

    fn signal(&self, from: usize, round: u32, episode_plus_one: u64) {
        let target = self.partner(from, round);
        self.flags[round as usize * self.n + target].store(episode_plus_one, Ordering::Release);
    }

    /// True once the round-`round` signal aimed at `receiver` is available
    /// for goal `goal` (= episode + 1): either actually stored in the flag
    /// slot, or *deducible* because the sender was evicted.
    ///
    /// Eviction leaves the signalling pattern untouched — no slot is ever
    /// written on the evicted participant's behalf. Instead, receivers
    /// close over the ghost: an evicted sender's arrival is waived (it is
    /// no longer part of the surviving set), so its round-`r` signal counts
    /// as sent once every signal *it* would have needed for rounds `0..r`
    /// is itself available, recursively. The recursion strictly decreases
    /// the round, so it terminates; every input (flag slots, eviction
    /// flags) is monotone, so the predicate is monotone and a probe that
    /// once returned true can never regress — no wakeup can be lost.
    fn flag_ready(&self, receiver: usize, round: u32, goal: u64) -> bool {
        if self.flags[round as usize * self.n + receiver].load(Ordering::Acquire) >= goal {
            return true;
        }
        let sender = self.source(receiver, round);
        self.ghost_sent(sender, round, goal)
    }

    /// Would the evicted `sender` have sent its round-`round` signal for
    /// `goal`? False for live senders.
    fn ghost_sent(&self, sender: usize, round: u32, goal: u64) -> bool {
        if self.evicted[sender].load(Ordering::Acquire) == 0 {
            return false;
        }
        (0..round).all(|r| self.flag_ready(sender, r, goal))
    }

    /// Advances participant `id` through as many rounds of `episode` as the
    /// received signals allow, without blocking. Returns true once all
    /// rounds are complete.
    fn try_progress(&self, id: usize, episode: u64) -> bool {
        let goal = episode + 1;
        loop {
            let round = self.progress[id].round.load(Ordering::Relaxed);
            if round >= self.rounds {
                return true;
            }
            if self.flag_ready(id, round, goal) {
                let next = round + 1;
                if next < self.rounds {
                    self.signal(id, next, goal);
                }
                self.progress[id].round.store(next, Ordering::Relaxed);
                if next == self.rounds {
                    // This participant has completed the episode; record it
                    // once globally.
                    if self.completed.fetch_max(goal, Ordering::AcqRel) < goal {
                        self.stats.record_episode();
                    }
                    return true;
                }
            } else {
                return false;
            }
        }
    }

    /// The poison-aware bounded wait all wait flavors funnel through.
    fn wait_core(
        &self,
        token: &ArrivalToken,
        deadline: Deadline,
        policy: StallPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        let policy = self.stats.resolve_policy(policy);
        let result = failure::guarded_wait::<S>(
            policy,
            deadline,
            token.episode,
            || self.try_progress(token.id, token.episode),
            || self.poisoned.load(Ordering::Acquire) != 0,
        );
        match result {
            Ok(outcome) => {
                self.stats.record_wait(token.id, &outcome);
                Ok(outcome)
            }
            Err(fault) => {
                if matches!(fault.error, BarrierError::Timeout { .. }) {
                    self.stats.record_timeout(token.id, &fault.report);
                }
                Err(fault.error)
            }
        }
    }
}

impl<S: SyncOps> SplitBarrier for DisseminationBarrier<S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        assert!(
            id < self.n,
            "participant id {id} out of range for {} participants",
            self.n
        );
        let episode = self.progress[id].episode.fetch_add(1, Ordering::Relaxed);
        self.progress[id].round.store(0, Ordering::Relaxed);
        self.stats.record_arrival(id);
        if self.rounds == 0 {
            // Single participant: the episode is complete on arrival.
            if self.completed.fetch_max(episode + 1, Ordering::AcqRel) < episode + 1 {
                self.stats.record_episode();
            }
        } else {
            self.signal(id, 0, episode + 1);
        }
        ArrivalToken::new(id, episode)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.try_progress(token.id, token.episode)
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        match self.wait_core(&token, Deadline::never(), self.policy) {
            Ok(outcome) => outcome,
            Err(e) => {
                panic!("DisseminationBarrier::wait failed: {e} (use wait_deadline to recover)")
            }
        }
    }

    fn wait_deadline(
        &self,
        token: ArrivalToken,
        deadline: Deadline,
    ) -> Result<WaitOutcome, BarrierError> {
        self.wait_core(&token, deadline, self.policy)
    }

    fn wait_with(
        &self,
        token: ArrivalToken,
        policy: &WaitPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        let backoff = policy.backoff.unwrap_or(self.policy);
        let result = self.wait_core(&token, policy.arm(), backoff);
        if matches!(result, Err(BarrierError::Timeout { .. }))
            && policy.on_timeout == OnTimeout::Poison
        {
            self.poison();
        }
        result
    }

    fn poison(&self) {
        if self.poisoned.fetch_max(1, Ordering::AcqRel) == 0 {
            self.stats.record_poisoning();
        }
    }

    fn clear_poison(&self) {
        self.poisoned.store(0, Ordering::Release);
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire) != 0
    }

    fn evict(&self, id: usize) -> Result<(), BarrierError> {
        if id >= self.n {
            return Err(BarrierError::InvalidParticipant {
                id,
                capacity: self.n,
            });
        }
        // Already-dead ids are rejected before the EmptyGroup guard: a
        // dead id stays dead regardless of how many live remain.
        if self.evicted[id].load(Ordering::Acquire) != 0 {
            return Err(BarrierError::NotAParticipant { id });
        }
        if self.dead.load(Ordering::Acquire) + 1 >= self.n {
            return Err(BarrierError::EmptyGroup);
        }
        if self.evicted[id].fetch_max(1, Ordering::AcqRel) != 0 {
            return Err(BarrierError::NotAParticipant { id });
        }
        self.dead.fetch_add(1, Ordering::AcqRel);
        self.stats.record_eviction();
        // Nothing else to do: the single write above (an RMW, so blocked
        // checker waiters re-probe) flips every survivor's ghost-closure
        // predicate — see [`Self::flag_ready`]. The evicted participant's
        // pending arrival for the in-flight episode is waived vacuously,
        // and no flag slot gains a second writer.
        Ok(())
    }

    fn participants(&self) -> usize {
        self.n
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        self.stats.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_counts() {
        assert_eq!(DisseminationBarrier::new(1).rounds(), 0);
        assert_eq!(DisseminationBarrier::new(2).rounds(), 1);
        assert_eq!(DisseminationBarrier::new(3).rounds(), 2);
        assert_eq!(DisseminationBarrier::new(4).rounds(), 2);
        assert_eq!(DisseminationBarrier::new(5).rounds(), 3);
        assert_eq!(DisseminationBarrier::new(8).rounds(), 3);
        assert_eq!(DisseminationBarrier::new(9).rounds(), 4);
    }

    #[test]
    fn partners_wrap_around() {
        let b = DisseminationBarrier::new(5);
        assert_eq!(b.partner(3, 0), 4);
        assert_eq!(b.partner(4, 0), 0);
        assert_eq!(b.partner(3, 1), 0);
        assert_eq!(b.partner(2, 2), 1);
    }

    #[test]
    fn single_participant_instant() {
        let b = DisseminationBarrier::new(1);
        for e in 0..5 {
            let t = b.arrive(0);
            assert!(b.is_complete(&t));
            assert_eq!(b.wait(t).episode, e);
        }
        assert_eq!(b.stats().episodes, 5);
    }

    #[test]
    fn non_power_of_two_participants() {
        for n in [2usize, 3, 5, 6, 7] {
            let b = Arc::new(DisseminationBarrier::new(n));
            std::thread::scope(|s| {
                for id in 0..n {
                    let b = Arc::clone(&b);
                    s.spawn(move || {
                        for e in 0..200u64 {
                            let t = b.arrive(id);
                            assert_eq!(b.wait(t).episode, e, "n={n} id={id}");
                        }
                    });
                }
            });
            assert_eq!(b.stats().episodes, 200, "n={n}");
        }
    }

    #[test]
    fn eviction_over_all_survivor_counts_and_victims() {
        // Survivor counts 2..=9 (so n = 3..=10, covering non-powers of two
        // and the power-of-two edges), evicting each id once. The victim
        // completes episode 0 and is then evicted; survivors must complete
        // episodes 1 and 2 through the ghost-signal closure.
        for survivors in 2usize..=9 {
            let n = survivors + 1;
            for victim in 0..n {
                let b = Arc::new(DisseminationBarrier::new(n));
                std::thread::scope(|s| {
                    let bv = Arc::clone(&b);
                    let victim_thread = s.spawn(move || {
                        let t = bv.arrive(victim);
                        assert_eq!(bv.wait(t).episode, 0);
                    });
                    for id in (0..n).filter(|&id| id != victim) {
                        let b = Arc::clone(&b);
                        s.spawn(move || {
                            for e in 0..3u64 {
                                let t = b.arrive(id);
                                assert_eq!(b.wait(t).episode, e, "n={n} victim={victim} id={id}");
                            }
                        });
                    }
                    victim_thread.join().unwrap();
                    b.evict(victim).unwrap();
                });
                assert_eq!(b.stats().evictions, 1, "n={n} victim={victim}");
            }
        }
    }

    #[test]
    fn evict_guards() {
        let b = DisseminationBarrier::new(3);
        assert_eq!(
            b.evict(7).unwrap_err(),
            BarrierError::InvalidParticipant { id: 7, capacity: 3 }
        );
        b.evict(0).unwrap();
        assert_eq!(
            b.evict(0).unwrap_err(),
            BarrierError::NotAParticipant { id: 0 }
        );
        b.evict(1).unwrap();
        assert_eq!(b.evict(2).unwrap_err(), BarrierError::EmptyGroup);
        // The lone survivor still synchronizes: both peers are ghosts.
        let t = b.arrive(2);
        assert_eq!(b.wait(t).episode, 0);
    }

    #[test]
    fn poison_unblocks_dissemination_waiters() {
        let b = Arc::new(DisseminationBarrier::new(2));
        std::thread::scope(|s| {
            let b0 = Arc::clone(&b);
            s.spawn(move || {
                let t = b0.arrive(0);
                let err = b0.wait_deadline(t, Deadline::never()).unwrap_err();
                assert_eq!(err, BarrierError::Poisoned { episode: 0 });
            });
            std::thread::sleep(std::time::Duration::from_millis(5));
            b.poison();
        });
        assert!(b.is_poisoned());
        assert_eq!(b.stats().poisonings, 1);
    }

    #[test]
    fn separates_phases_with_real_data() {
        use std::sync::atomic::AtomicU64;
        let n = 4;
        let cells: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let b = Arc::new(DisseminationBarrier::new(n));
        std::thread::scope(|s| {
            for id in 0..n {
                let b = Arc::clone(&b);
                let cells = Arc::clone(&cells);
                s.spawn(move || {
                    for phase in 1..=300u64 {
                        cells[id].store(phase, Ordering::Release);
                        let t = b.arrive(id);
                        b.wait(t);
                        let v = cells[(id + n - 1) % n].load(Ordering::Acquire);
                        assert!(v >= phase, "stale read {v} in phase {phase}");
                        let t = b.arrive(id);
                        b.wait(t);
                    }
                });
            }
        });
    }
}
