//! Subset barriers: synchronize an arbitrary masked subset of participants
//! under a tag (the paper's "multiple barriers", Sec. 5).

use crate::centralized::CentralBarrier;
use crate::error::BarrierError;
use crate::failure::{Deadline, WaitPolicy};
use crate::mask::ProcMask;
use crate::spin::StallPolicy;
use crate::stats::{StatsSnapshot, TelemetrySnapshot};
use crate::sync::SyncOps;
use crate::tag::Tag;
use crate::token::{ArrivalToken, WaitOutcome};
use std::sync::atomic::{AtomicU64, Ordering};

/// A fault-tolerant barrier group: a [`SubsetBarrier`] under its canonical
/// name when used for dynamic membership (arrivals gated on the live mask,
/// [`SubsetBarrier::evict`] shrinking it).
pub type BarrierGroup<B = CentralBarrier> = SubsetBarrier<B>;

/// A split-phase barrier over a subset of global participants, identified
/// by a [`Tag`].
///
/// Participants address the barrier with their **global** ids; the barrier
/// maps them to dense internal indices via the mask's rank. Arrival checks
/// the presented tag against the barrier's tag — the software analogue of
/// the hardware's combinational tag-match logic: "two processors can only
/// synchronize at a barrier if their tags match".
///
/// Disjoint subsets of processors owning different `SubsetBarrier`s
/// synchronize completely independently, reproducing Fig. 6's stream-merge
/// topology.
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::{SubsetBarrier, ProcMask, Tag};
///
/// let tag = Tag::new(1).expect("non-zero");
/// let mask: ProcMask = [2, 5].into_iter().collect();
/// let b = SubsetBarrier::new(tag, mask)?;
/// // Only participants 2 and 5 may arrive, and only with the right tag.
/// assert!(b.arrive(3, tag).is_err());
/// # Ok::<(), fuzzy_barrier::BarrierError>(())
/// ```
#[derive(Debug)]
pub struct SubsetBarrier<B: crate::SplitBarrier = CentralBarrier> {
    tag: Tag,
    /// The founding mask. Ranks are frozen against it forever, so eviction
    /// never renumbers the survivors (the paper's mask shrink changes *who
    /// participates*, not *who is who*).
    mask: ProcMask,
    /// Bit per live global id; starts as `mask.bits()` and only loses bits.
    live: AtomicU64,
    inner: B,
}

impl SubsetBarrier<CentralBarrier> {
    /// Creates a barrier for the participants in `mask`, identified by
    /// `tag`, with the default (centralized) backend.
    ///
    /// # Errors
    ///
    /// Returns [`BarrierError::EmptyGroup`] if the mask is empty.
    pub fn new(tag: Tag, mask: ProcMask) -> Result<Self, BarrierError> {
        Self::with_policy(tag, mask, StallPolicy::default())
    }

    /// Creates a barrier with an explicit stall policy.
    ///
    /// # Errors
    ///
    /// Returns [`BarrierError::EmptyGroup`] if the mask is empty.
    pub fn with_policy(
        tag: Tag,
        mask: ProcMask,
        policy: StallPolicy,
    ) -> Result<Self, BarrierError> {
        Self::with_policy_in(tag, mask, policy)
    }
}

impl<S: SyncOps> SubsetBarrier<CentralBarrier<S>> {
    /// Creates a centralized-backend barrier in an explicit [`SyncOps`]
    /// domain — `RealSync` in production, instrumented shadow state under
    /// the `fuzzy-check` model checker.
    ///
    /// # Errors
    ///
    /// Returns [`BarrierError::EmptyGroup`] if the mask is empty.
    pub fn with_policy_in(
        tag: Tag,
        mask: ProcMask,
        policy: StallPolicy,
    ) -> Result<Self, BarrierError> {
        if mask.is_empty() {
            return Err(BarrierError::EmptyGroup);
        }
        Ok(SubsetBarrier {
            tag,
            mask,
            live: AtomicU64::new(mask.bits()),
            inner: CentralBarrier::with_policy_in(mask.len(), policy),
        })
    }
}

impl<B: crate::SplitBarrier> SubsetBarrier<B> {
    /// Wraps an arbitrary [`crate::SplitBarrier`] backend (e.g. a
    /// [`crate::DisseminationBarrier`] for hot-spot-free subsets).
    ///
    /// # Errors
    ///
    /// Returns [`BarrierError::EmptyGroup`] if the mask is empty, and
    /// [`BarrierError::InvalidParticipant`] if the backend was built for a
    /// different participant count than `mask.len()`.
    pub fn from_backend(tag: Tag, mask: ProcMask, backend: B) -> Result<Self, BarrierError> {
        if mask.is_empty() {
            return Err(BarrierError::EmptyGroup);
        }
        if backend.participants() != mask.len() {
            return Err(BarrierError::InvalidParticipant {
                id: backend.participants(),
                capacity: mask.len(),
            });
        }
        Ok(SubsetBarrier {
            tag,
            mask,
            live: AtomicU64::new(mask.bits()),
            inner: backend,
        })
    }

    /// The barrier's tag.
    #[must_use]
    pub fn tag(&self) -> Tag {
        self.tag
    }

    /// The founding participant mask (unchanged by eviction; see
    /// [`Self::live_mask`]).
    #[must_use]
    pub fn mask(&self) -> ProcMask {
        self.mask
    }

    /// The mask of participants that have not been evicted.
    #[must_use]
    pub fn live_mask(&self) -> ProcMask {
        ProcMask::from_bits(self.live.load(Ordering::Acquire))
    }

    /// Announces that global participant `id` is ready to synchronize,
    /// presenting `tag`.
    ///
    /// # Errors
    ///
    /// * [`BarrierError::TagMismatch`] if `tag` differs from the barrier's
    ///   tag (the hardware would simply never match; the library surfaces
    ///   the bug).
    /// * [`BarrierError::NotAParticipant`] if `id` is not in the mask or
    ///   has been [`Self::evict`]ed.
    pub fn arrive(&self, id: usize, tag: Tag) -> Result<ArrivalToken, BarrierError> {
        if !tag.matches(&self.tag) {
            return Err(BarrierError::TagMismatch {
                presented: tag,
                expected: self.tag,
            });
        }
        let rank = self
            .mask
            .rank_of(id)
            .ok_or(BarrierError::NotAParticipant { id })?;
        if self.live.load(Ordering::Acquire) & (1 << id) == 0 {
            return Err(BarrierError::NotAParticipant { id });
        }
        Ok(self.inner.arrive(rank))
    }

    /// Non-blocking completion check for a token from [`Self::arrive`].
    #[must_use]
    pub fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.inner.is_complete(token)
    }

    /// Blocks until the episode named by `token` completes. Panics if the
    /// group is poisoned first; see [`Self::wait_deadline`].
    pub fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        self.inner.wait(token)
    }

    /// Bounded, poison-aware wait (see
    /// [`crate::SplitBarrier::wait_deadline`]).
    ///
    /// # Errors
    ///
    /// [`BarrierError::Timeout`] once `deadline` passes,
    /// [`BarrierError::Poisoned`] if the group is poisoned first.
    pub fn wait_deadline(
        &self,
        token: ArrivalToken,
        deadline: Deadline,
    ) -> Result<WaitOutcome, BarrierError> {
        self.inner.wait_deadline(token, deadline)
    }

    /// Waits under a full [`WaitPolicy`] (see
    /// [`crate::SplitBarrier::wait_with`]).
    ///
    /// # Errors
    ///
    /// Same as [`Self::wait_deadline`].
    pub fn wait_with(
        &self,
        token: ArrivalToken,
        policy: &WaitPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        self.inner.wait_with(token, policy)
    }

    /// Poisons the group's barrier, releasing bounded waiters with
    /// [`BarrierError::Poisoned`].
    pub fn poison(&self) {
        self.inner.poison();
    }

    /// Clears poison after recovery.
    pub fn clear_poison(&self) {
        self.inner.clear_poison();
    }

    /// True if the group's barrier is poisoned.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    /// Abandons an episode from inside it: consumes the token and poisons
    /// the group (see [`crate::SplitBarrier::abort`]).
    pub fn abort(&self, token: ArrivalToken) {
        self.inner.abort(token);
    }

    /// Permanently removes global participant `id` from the group: its live
    /// bit is cleared and the backend's mask shrinks, so survivors
    /// re-synchronize without it from the in-flight episode onward. Ranks
    /// are frozen against the founding mask, so survivors keep their ids.
    ///
    /// # Errors
    ///
    /// * [`BarrierError::NotAParticipant`] if `id` is outside the founding
    ///   mask or already evicted.
    /// * [`BarrierError::EmptyGroup`] if `id` is the last live participant.
    /// * [`BarrierError::EvictionUnsupported`] if the backend has no
    ///   eviction support (the live bit is restored).
    pub fn evict(&self, id: usize) -> Result<(), BarrierError> {
        let rank = self
            .mask
            .rank_of(id)
            .ok_or(BarrierError::NotAParticipant { id })?;
        let bit = 1u64 << id;
        if self.live.fetch_and(!bit, Ordering::AcqRel) & bit == 0 {
            return Err(BarrierError::NotAParticipant { id });
        }
        if let Err(err) = self.inner.evict(rank) {
            // The backend refused (last survivor, unsupported, racing
            // evict): readmit so the live mask stays in step with it.
            self.live.fetch_or(bit, Ordering::AcqRel);
            return Err(match err {
                // The backend names ranks; re-map to the global id.
                BarrierError::NotAParticipant { .. } => BarrierError::NotAParticipant { id },
                other => other,
            });
        }
        Ok(())
    }

    /// Arrive + wait with no region: a point synchronization of the subset.
    ///
    /// # Errors
    ///
    /// Same as [`Self::arrive`].
    pub fn point(&self, id: usize, tag: Tag) -> Result<WaitOutcome, BarrierError> {
        let token = self.arrive(id, tag)?;
        Ok(self.wait(token))
    }

    /// Number of participants in the subset.
    #[must_use]
    pub fn participants(&self) -> usize {
        self.inner.participants()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    /// Full telemetry of the underlying backend. Per-participant entries
    /// are indexed by *rank within the mask* (iteration order), not by
    /// global participant id.
    #[must_use]
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.inner.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tag(raw: u16) -> Tag {
        Tag::new(raw).expect("non-zero")
    }

    #[test]
    fn empty_mask_rejected() {
        assert_eq!(
            SubsetBarrier::new(tag(1), ProcMask::new()).unwrap_err(),
            BarrierError::EmptyGroup
        );
    }

    #[test]
    fn tag_mismatch_detected() {
        let b = SubsetBarrier::new(tag(1), ProcMask::first_n(2)).unwrap();
        let err = b.arrive(0, tag(2)).unwrap_err();
        assert!(matches!(err, BarrierError::TagMismatch { .. }));
    }

    #[test]
    fn non_member_rejected() {
        let mask: ProcMask = [1, 3].into_iter().collect();
        let b = SubsetBarrier::new(tag(1), mask).unwrap();
        assert_eq!(
            b.arrive(2, tag(1)).unwrap_err(),
            BarrierError::NotAParticipant { id: 2 }
        );
    }

    #[test]
    fn sparse_members_synchronize() {
        let mask: ProcMask = [2, 5, 9].into_iter().collect();
        let b = Arc::new(SubsetBarrier::new(tag(4), mask).unwrap());
        std::thread::scope(|s| {
            for id in [2usize, 5, 9] {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for e in 0..200u64 {
                        let t = b.arrive(id, tag(4)).unwrap();
                        assert_eq!(b.wait(t).episode, e);
                    }
                });
            }
        });
        assert_eq!(b.stats().episodes, 200);
    }

    #[test]
    fn disjoint_subsets_do_not_interfere() {
        // Two disjoint groups with different tags: group A synchronizes
        // many times while group B never arrives. If the groups shared
        // state, A would deadlock.
        let a = Arc::new(SubsetBarrier::new(tag(1), [0, 1].into_iter().collect()).unwrap());
        let _b = SubsetBarrier::new(tag(2), [2, 3].into_iter().collect()).unwrap();
        std::thread::scope(|s| {
            for id in 0..2usize {
                let a = Arc::clone(&a);
                s.spawn(move || {
                    for _ in 0..100 {
                        let t = a.arrive(id, tag(1)).unwrap();
                        a.wait(t);
                    }
                });
            }
        });
        assert_eq!(a.stats().episodes, 100);
    }

    #[test]
    fn dissemination_backend_subset() {
        use crate::dissemination::DisseminationBarrier;
        let mask: ProcMask = [1, 4, 6].into_iter().collect();
        let b = Arc::new(
            SubsetBarrier::from_backend(tag(8), mask, DisseminationBarrier::new(3)).unwrap(),
        );
        std::thread::scope(|s| {
            for id in [1usize, 4, 6] {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for e in 0..100u64 {
                        let t = b.arrive(id, tag(8)).unwrap();
                        assert_eq!(b.wait(t).episode, e);
                    }
                });
            }
        });
        assert_eq!(b.stats().episodes, 100);
    }

    #[test]
    fn mismatched_backend_size_rejected() {
        use crate::counting::CountingBarrier;
        let mask: ProcMask = [0, 1].into_iter().collect();
        let err = SubsetBarrier::from_backend(tag(1), mask, CountingBarrier::new(5)).unwrap_err();
        assert!(matches!(err, BarrierError::InvalidParticipant { .. }));
    }

    #[test]
    fn eviction_shrinks_group_and_survivors_resync() {
        let mask: ProcMask = [2, 5, 9].into_iter().collect();
        let g = Arc::new(BarrierGroup::new(tag(3), mask).unwrap());
        // Full-strength episode 0.
        std::thread::scope(|s| {
            for id in [2usize, 5, 9] {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    let t = g.arrive(id, tag(3)).unwrap();
                    assert_eq!(g.wait(t).episode, 0);
                });
            }
        });
        g.evict(5).unwrap();
        assert_eq!(g.live_mask(), [2, 9].into_iter().collect());
        assert_eq!(g.mask(), [2, 5, 9].into_iter().collect());
        assert_eq!(
            g.arrive(5, tag(3)).unwrap_err(),
            BarrierError::NotAParticipant { id: 5 }
        );
        // Survivors keep their frozen ranks and complete without 5.
        std::thread::scope(|s| {
            for id in [2usize, 9] {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for e in 1..4u64 {
                        let t = g.arrive(id, tag(3)).unwrap();
                        assert_eq!(g.wait(t).episode, e);
                    }
                });
            }
        });
        assert_eq!(g.stats().evictions, 1);
    }

    #[test]
    fn evict_guards_and_live_mask_restore() {
        let g = BarrierGroup::new(tag(1), ProcMask::first_n(2)).unwrap();
        assert_eq!(
            g.evict(7).unwrap_err(),
            BarrierError::NotAParticipant { id: 7 }
        );
        g.evict(0).unwrap();
        assert_eq!(
            g.evict(0).unwrap_err(),
            BarrierError::NotAParticipant { id: 0 }
        );
        // Refusing to evict the last survivor must leave it live.
        assert_eq!(g.evict(1).unwrap_err(), BarrierError::EmptyGroup);
        assert!(g.live_mask().contains(1));
        let t = g.arrive(1, tag(1)).unwrap();
        assert_eq!(g.wait(t).episode, 0);
    }

    #[test]
    fn eviction_unsupported_backend_readmits() {
        /// A backend that keeps the trait's default (unsupported) `evict`.
        struct NoEvict(CentralBarrier);
        impl crate::SplitBarrier for NoEvict {
            fn arrive(&self, id: usize) -> ArrivalToken {
                self.0.arrive(id)
            }
            fn is_complete(&self, token: &ArrivalToken) -> bool {
                self.0.is_complete(token)
            }
            fn wait(&self, token: ArrivalToken) -> WaitOutcome {
                self.0.wait(token)
            }
            fn participants(&self) -> usize {
                self.0.participants()
            }
            fn stats(&self) -> StatsSnapshot {
                self.0.stats()
            }
        }
        let mask: ProcMask = [0, 1].into_iter().collect();
        let g = BarrierGroup::from_backend(tag(1), mask, NoEvict(CentralBarrier::new(2))).unwrap();
        assert_eq!(g.evict(0).unwrap_err(), BarrierError::EvictionUnsupported);
        assert!(g.live_mask().contains(0), "live bit restored on refusal");
    }

    #[test]
    fn poison_flows_through_group() {
        let g = Arc::new(BarrierGroup::new(tag(2), ProcMask::first_n(2)).unwrap());
        std::thread::scope(|s| {
            let g0 = Arc::clone(&g);
            s.spawn(move || {
                let t = g0.arrive(0, tag(2)).unwrap();
                let err = g0.wait_deadline(t, Deadline::never()).unwrap_err();
                assert_eq!(err, BarrierError::Poisoned { episode: 0 });
            });
            std::thread::sleep(std::time::Duration::from_millis(5));
            g.poison();
        });
        assert!(g.is_poisoned());
        g.clear_poison();
        assert!(!g.is_poisoned());
        // abort consumes the token and re-poisons.
        let t = g.arrive(1, tag(2)).unwrap();
        g.abort(t);
        assert!(g.is_poisoned());
    }

    #[test]
    fn point_sync_works() {
        let b = Arc::new(SubsetBarrier::new(tag(9), ProcMask::first_n(2)).unwrap());
        std::thread::scope(|s| {
            for id in 0..2usize {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    b.point(id, tag(9)).unwrap();
                });
            }
        });
        assert_eq!(b.stats().episodes, 1);
    }
}
