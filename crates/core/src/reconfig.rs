//! Epoch-based dynamic membership over any [`SplitBarrier`] backend.
//!
//! The paper's Sec. 5 failure handling only ever *shrinks* a barrier (the
//! mask update on processor failure); the PR-4 eviction machinery inherited
//! that one-way limitation. [`ReconfigBarrier`] adds the other direction:
//! `join` and `leave` requests are **staged in a lock-free pending set**
//! and applied **atomically at episode boundaries** — the last arriver of
//! epoch *e* (the winner of a monotone `fetch_max` claim, the same RMW
//! idiom the eviction packing and the hierarchical leader election use)
//! installs the new membership for epoch *e+1* before anyone can arrive
//! for it.
//!
//! # Protocol
//!
//! Membership lives in `capacity` fixed **slots**. Each slot carries a
//! monotone **generation**; a [`MemberHandle`] is stamped with the
//! generation it was issued under, and every arrival re-validates the
//! stamp, so a stale evicted handle can never arrive into a resized
//! barrier ([`BarrierError::StaleGeneration`]).
//!
//! Synchronization itself delegates to an inner backend built by a
//! caller-supplied factory. The five stock backends all fix their
//! structure at construction (dissemination rounds, tree shape, hier
//! shards), so *growth* is implemented by **rebuilding** the inner backend
//! at the boundary install, while *shrinkage* reuses the backends' native
//! [`SplitBarrier::evict`] stand-in arrival mid-episode. Because a member
//! captures an `Arc` of the inner backend in its [`ReconfigToken`] at
//! arrive time, a rebuild never invalidates an in-flight wait.
//!
//! The boundary runs in three ordered steps:
//!
//! 1. every member's wait returns from the inner backend (all of epoch
//!    *e* arrived — the fuzzy invariant);
//! 2. exactly one member wins `claim.fetch_max(e+1)` and installs: frees
//!    departed slots, activates staged joiners at epoch *e+1*, and — only
//!    if joiners exist — rebuilds the inner backend at the new size;
//! 3. the winner publishes the wrapper **epoch word**; every member's
//!    wait completes only on `epoch > e`, so nobody can arrive for *e+1*
//!    before the install is visible.
//!
//! Joiners park — blocking via [`ReconfigBarrier::wait_active`], async via
//! [`ReconfigBarrier::activation_future`] — until the install that
//! activates them publishes.
//!
//! # Eviction contract
//!
//! [`ReconfigBarrier::evict`] and [`ReconfigBarrier::leave`] inherit the
//! PR-4 contract: the departing member must **not** have arrived for the
//! in-flight epoch (its stand-in arrival would double count). The wrapper
//! tracks each slot's last arrival epoch and panics loudly on a violation
//! instead of corrupting the count.

use crate::error::BarrierError;
use crate::failure::Deadline;
use crate::fuzzy::SplitBarrier;
use crate::spin::StallPolicy;
use crate::stats::{BarrierStats, StatsSnapshot, TelemetrySnapshot};
use crate::sync::{Atomic, RealSync, SyncOps, TicketLock};
use crate::token::{ArrivalToken, WaitOutcome};
use fuzzy_util::CachePadded;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};
use std::task::{Context, Poll, Waker};
use std::time::Instant;

/// Sentinel for "no epoch": an inactive slot's activation epoch and a
/// never-arrived slot's last-arrival epoch.
const NEVER: u64 = u64::MAX;

/// The factory a [`ReconfigBarrier`] rebuilds its inner backend with when
/// joiners are installed: maps a member count to a fresh backend.
pub type BackendFactory = Box<dyn Fn(usize) -> Arc<dyn SplitBarrier> + Send + Sync>;

/// A member's credential: which slot it occupies and the slot generation
/// it was issued under. Arrivals re-validate the generation, so handles
/// outlive their membership only as rejectable tokens, never as live ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberHandle {
    slot: usize,
    generation: u64,
}

impl MemberHandle {
    /// Reconstructs a handle from its parts — e.g. one a supervisor
    /// persisted across a restart. Handles are pure credentials: every
    /// use re-validates the slot generation, so a reconstructed handle
    /// that does not match the slot's current generation is rejected
    /// ([`BarrierError::StaleGeneration`]), never admitted.
    #[must_use]
    pub fn from_parts(slot: usize, generation: u64) -> Self {
        MemberHandle { slot, generation }
    }

    /// The membership slot this handle occupies.
    #[must_use]
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// The slot generation this handle was issued under.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// A staged join: the claimed slot, waiting for an episode boundary to
/// activate it. Redeem with [`ReconfigBarrier::wait_active`] (blocking) or
/// [`ReconfigBarrier::activation_future`] (async).
#[derive(Debug, Clone, Copy)]
pub struct JoinTicket {
    slot: usize,
    generation: u64,
}

impl JoinTicket {
    /// Reconstructs a ticket from its parts (see
    /// [`MemberHandle::from_parts`]). Activation is still governed by the
    /// installer, and the handle redeemed from a reconstructed ticket is
    /// subject to the same generation checks as any other.
    #[must_use]
    pub fn from_parts(slot: usize, generation: u64) -> Self {
        JoinTicket { slot, generation }
    }

    /// The slot this ticket claimed.
    #[must_use]
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// The slot generation the claim was staged under.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// A wrapper-level arrival token: names the wrapper epoch the member
/// arrived for and carries the inner backend instance (and rank) that
/// epoch runs on, so a boundary rebuild never invalidates it.
///
/// Unlike [`ArrivalToken`], waits borrow this token instead of consuming
/// it: a timed-out [`ReconfigBarrier::wait_deadline`] can simply be
/// retried with the same token (the arrival already counted).
pub struct ReconfigToken {
    slot: usize,
    epoch: u64,
    rank: usize,
    inner_episode: u64,
    inner: Arc<dyn SplitBarrier>,
}

impl ReconfigToken {
    /// The wrapper epoch this token arrives into.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The membership slot that arrived.
    #[must_use]
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl fmt::Debug for ReconfigToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReconfigToken")
            .field("slot", &self.slot)
            .field("epoch", &self.epoch)
            .field("rank", &self.rank)
            .finish_non_exhaustive()
    }
}

/// The membership state installed for the current epoch. Only ever
/// touched while holding the [`TicketLock`] gate, so the std mutex never
/// contends (and never blocks a checker vthread invisibly).
struct Installed {
    inner: Arc<dyn SplitBarrier>,
    /// Slot → rank in `inner`; `None` for inactive or departed slots.
    rank_of: Vec<Option<usize>>,
    /// Live member count (always equals the inner backend's live count).
    members: usize,
}

/// A split-phase barrier with epoch-based dynamic membership; see the
/// module docs for the protocol.
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::reconfig::ReconfigBarrier;
/// use fuzzy_barrier::{CentralBarrier, StallPolicy};
/// use std::sync::Arc;
///
/// let (barrier, handles) = ReconfigBarrier::new(4, 2, |n| {
///     Arc::new(CentralBarrier::with_policy(n, StallPolicy::yielding()))
/// });
/// let barrier = Arc::new(barrier);
/// std::thread::scope(|s| {
///     for h in handles {
///         let barrier = Arc::clone(&barrier);
///         s.spawn(move || {
///             let token = barrier.arrive(&h).unwrap();
///             // ... barrier region ...
///             let outcome = barrier.wait(&token).unwrap();
///             assert_eq!(outcome.episode, 0);
///         });
///     }
/// });
/// assert_eq!(barrier.epoch(), 1);
/// ```
pub struct ReconfigBarrier<S: SyncOps = RealSync> {
    capacity: usize,
    policy: StallPolicy,
    factory: BackendFactory,
    /// Slot claim refcounts: `fetch_add == 0` wins the slot; losers
    /// decrement back. Lock-free join staging, step 1.
    reserved: Vec<CachePadded<S::AtomicU32>>,
    /// Monotone per-slot generation; bumped on every departure.
    generation: Vec<CachePadded<S::AtomicU64>>,
    /// Epoch at which the slot becomes active ([`NEVER`] while staged or
    /// free).
    activation: Vec<CachePadded<S::AtomicU64>>,
    /// Wrapper epoch of the slot's most recent arrival (the eviction
    /// contract check).
    last_arrive: Vec<CachePadded<S::AtomicU64>>,
    /// Lock-free join staging, step 2: the installer activates every
    /// flagged slot at the next boundary.
    pending_join: Vec<CachePadded<S::AtomicU32>>,
    /// Departure staging: the installer frees flagged slots for reuse at
    /// the next boundary.
    pending_free: Vec<CachePadded<S::AtomicU32>>,
    /// Installer election: holds the highest boundary (`e + 1`) claimed so
    /// far; the caller whose `fetch_max` observes a smaller value installs.
    claim: CachePadded<S::AtomicU64>,
    /// The wrapper release word: completed wrapper epochs.
    epoch: CachePadded<S::AtomicU64>,
    /// Serializes membership-map access across arrive/depart/install; an
    /// `S`-domain lock so blocked acquirers deschedule under the checker.
    gate: TicketLock<S>,
    installed: Mutex<Installed>,
    /// Async waiters parked on publication or activation; woken wholesale
    /// on every publish, departure, and poisoning (spurious wakes re-poll).
    parked: Mutex<Vec<Waker>>,
    stats: BarrierStats,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ReconfigBarrier<RealSync> {
    /// Creates a group with `initial` active members over `capacity`
    /// slots, returning their handles. `factory(n)` builds the inner
    /// backend for `n` members; it is re-invoked at every boundary that
    /// installs joiners.
    ///
    /// # Panics
    ///
    /// Panics if `initial == 0` or `initial > capacity`.
    #[must_use]
    pub fn new(
        capacity: usize,
        initial: usize,
        factory: impl Fn(usize) -> Arc<dyn SplitBarrier> + Send + Sync + 'static,
    ) -> (Self, Vec<MemberHandle>) {
        Self::with_policy(capacity, initial, StallPolicy::yielding(), factory)
    }

    /// [`Self::new`] with an explicit stall policy for the wrapper's own
    /// waits (publication and activation).
    ///
    /// # Panics
    ///
    /// Panics if `initial == 0` or `initial > capacity`.
    #[must_use]
    pub fn with_policy(
        capacity: usize,
        initial: usize,
        policy: StallPolicy,
        factory: impl Fn(usize) -> Arc<dyn SplitBarrier> + Send + Sync + 'static,
    ) -> (Self, Vec<MemberHandle>) {
        Self::with_policy_in(capacity, initial, policy, factory)
    }
}

impl<S: SyncOps> ReconfigBarrier<S> {
    /// Creates a group in an explicit [`SyncOps`] domain — `RealSync` in
    /// production, instrumented shadow state under the `fuzzy-check`
    /// model checker.
    ///
    /// # Panics
    ///
    /// Panics if `initial == 0` or `initial > capacity`.
    #[must_use]
    pub fn with_policy_in(
        capacity: usize,
        initial: usize,
        policy: StallPolicy,
        factory: impl Fn(usize) -> Arc<dyn SplitBarrier> + Send + Sync + 'static,
    ) -> (Self, Vec<MemberHandle>) {
        assert!(initial > 0, "a group needs at least one initial member");
        assert!(
            initial <= capacity,
            "initial membership {initial} exceeds capacity {capacity}"
        );
        let inner = factory(initial);
        let barrier = ReconfigBarrier {
            capacity,
            policy,
            factory: Box::new(factory),
            reserved: (0..capacity)
                .map(|slot| CachePadded::new(S::AtomicU32::new(u32::from(slot < initial))))
                .collect(),
            generation: (0..capacity)
                .map(|_| CachePadded::new(S::AtomicU64::new(0)))
                .collect(),
            activation: (0..capacity)
                .map(|slot| {
                    CachePadded::new(S::AtomicU64::new(if slot < initial { 0 } else { NEVER }))
                })
                .collect(),
            last_arrive: (0..capacity)
                .map(|_| CachePadded::new(S::AtomicU64::new(NEVER)))
                .collect(),
            pending_join: (0..capacity)
                .map(|_| CachePadded::new(S::AtomicU32::new(0)))
                .collect(),
            pending_free: (0..capacity)
                .map(|_| CachePadded::new(S::AtomicU32::new(0)))
                .collect(),
            claim: CachePadded::new(S::AtomicU64::new(0)),
            epoch: CachePadded::new(S::AtomicU64::new(0)),
            gate: TicketLock::new(),
            installed: Mutex::new(Installed {
                inner,
                rank_of: (0..capacity)
                    .map(|slot| (slot < initial).then_some(slot))
                    .collect(),
                members: initial,
            }),
            parked: Mutex::new(Vec::new()),
            stats: BarrierStats::with_participants(capacity),
        };
        let handles = (0..initial)
            .map(|slot| MemberHandle {
                slot,
                generation: 0,
            })
            .collect();
        (barrier, handles)
    }

    /// The fixed slot capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Completed wrapper epochs (the release word).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Current live member count.
    #[must_use]
    pub fn members(&self) -> usize {
        let _g = self.gate.acquire();
        lock(&self.installed).members
    }

    /// The current generation of `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= capacity`.
    #[must_use]
    pub fn generation_of(&self, slot: usize) -> u64 {
        self.generation[slot].load(Ordering::Acquire)
    }

    /// Stages a join: claims a free slot lock-free and flags it for the
    /// installer. The joiner becomes active at the next episode boundary;
    /// redeem the ticket with [`Self::wait_active`] or
    /// [`Self::activation_future`].
    ///
    /// # Errors
    ///
    /// [`BarrierError::GroupFull`] when no slot is free. Slots of staged
    /// departures free up at the next boundary, so callers may back off
    /// and retry (see [`crate::registry::GroupRegistry`] for the
    /// backoff-loop idiom).
    pub fn join(&self) -> Result<JoinTicket, BarrierError> {
        for slot in 0..self.capacity {
            if self.reserved[slot].fetch_add(1, Ordering::AcqRel) == 0 {
                let generation = self.generation[slot].load(Ordering::Acquire);
                self.pending_join[slot].store(1, Ordering::Release);
                return Ok(JoinTicket { slot, generation });
            }
            self.reserved[slot].fetch_sub(1, Ordering::AcqRel);
        }
        Err(BarrierError::GroupFull {
            capacity: self.capacity,
        })
    }

    /// True once `ticket`'s slot has been activated by a boundary install
    /// whose epoch has published.
    #[must_use]
    pub fn is_active(&self, ticket: &JoinTicket) -> bool {
        let activation = self.activation[ticket.slot].load(Ordering::Acquire);
        activation != NEVER && self.epoch.load(Ordering::Acquire) >= activation
    }

    /// Blocks (per the wrapper's stall policy) until the staged join
    /// activates, then returns the member's handle.
    ///
    /// Activation requires an episode boundary: some member of the current
    /// epoch must complete an episode for the installer to run. In a
    /// quiescent group the joiner parks until episodes resume.
    #[must_use]
    pub fn wait_active(&self, ticket: &JoinTicket) -> MemberHandle {
        S::wait_until(self.policy, || self.is_active(ticket));
        MemberHandle {
            slot: ticket.slot,
            generation: ticket.generation,
        }
    }

    /// Announces that the member behind `handle` is ready to synchronize
    /// in the current epoch. Never blocks (beyond the membership gate).
    ///
    /// # Errors
    ///
    /// * [`BarrierError::StaleGeneration`] — the handle's slot generation
    ///   has advanced (its holder left or was evicted); the arrival is
    ///   refused before it can corrupt the resized barrier.
    /// * [`BarrierError::NotAParticipant`] — the slot is not currently
    ///   active (departed this epoch, generation not yet reused).
    pub fn arrive(&self, handle: &MemberHandle) -> Result<ReconfigToken, BarrierError> {
        let _g = self.gate.acquire();
        let held = handle.generation;
        let current = self.generation[handle.slot].load(Ordering::Acquire);
        if current != held {
            return Err(BarrierError::StaleGeneration {
                slot: handle.slot,
                held,
                current,
            });
        }
        let (inner, rank) = {
            let ins = lock(&self.installed);
            let rank = ins.rank_of[handle.slot]
                .ok_or(BarrierError::NotAParticipant { id: handle.slot })?;
            (Arc::clone(&ins.inner), rank)
        };
        let epoch = self.epoch.load(Ordering::Acquire);
        self.last_arrive[handle.slot].store(epoch, Ordering::Release);
        let inner_token = inner.arrive(rank);
        let inner_episode = inner_token.episode();
        drop(inner_token);
        self.stats.record_arrival(handle.slot);
        Ok(ReconfigToken {
            slot: handle.slot,
            epoch,
            rank,
            inner_episode,
            inner,
        })
    }

    /// Blocks until the wrapper epoch the token arrived for completes and
    /// its boundary install publishes.
    ///
    /// # Errors
    ///
    /// [`BarrierError::Poisoned`] if the barrier was poisoned first.
    pub fn wait(&self, token: &ReconfigToken) -> Result<WaitOutcome, BarrierError> {
        self.wait_deadline(token, Deadline::never())
    }

    /// Bounded, poison-aware wait. On [`BarrierError::Timeout`] the
    /// arrival still counted and the token stays valid: retry by calling
    /// this again with the same token (the spurious-timeout recovery the
    /// chaos harness leans on).
    ///
    /// # Errors
    ///
    /// [`BarrierError::Timeout`] when `deadline` passes first,
    /// [`BarrierError::Poisoned`] when the barrier is poisoned first.
    /// Completion wins over both.
    pub fn wait_deadline(
        &self,
        token: &ReconfigToken,
        deadline: Deadline,
    ) -> Result<WaitOutcome, BarrierError> {
        let e = token.epoch;
        // No `epoch > e` fast path here, deliberately. On cooperative
        // backends (dissemination, hier) a member's later-round signals
        // are sent only by its own wait probes; peers block on them. A
        // wait that returned on the publication alone — reachable when a
        // bounded wait times out mid-rounds and the retry lands after the
        // install — would abandon those rounds forever and wedge the
        // group. Every wait therefore drives the inner to completion
        // first; on an already-published epoch that is a handful of
        // probes, and `finish_boundary` resolves instantly. (The async
        // twin, `ReconfigFuture::poll`, gates readiness on the same
        // own-completion probe.)
        let inner_token = ArrivalToken::new(token.rank, token.inner_episode);
        match token.inner.wait_deadline(inner_token, deadline) {
            Ok(inner_outcome) => {
                self.finish_boundary(e, deadline)?;
                let outcome = WaitOutcome {
                    episode: e,
                    ..inner_outcome
                };
                self.stats.record_wait(token.slot, &outcome);
                Ok(outcome)
            }
            Err(BarrierError::Timeout { .. }) => Err(BarrierError::Timeout { episode: e }),
            Err(BarrierError::Poisoned { .. }) => Err(BarrierError::Poisoned { episode: e }),
            Err(other) => Err(other),
        }
    }

    /// The boundary protocol after the inner wait returned: elect one
    /// installer via the monotone claim, then hold everyone until the
    /// install publishes.
    fn finish_boundary(&self, e: u64, deadline: Deadline) -> Result<(), BarrierError> {
        if self.claim.fetch_max(e + 1, Ordering::AcqRel) <= e {
            self.install(e);
            return Ok(());
        }
        let report = S::wait_until_budget(self.policy, deadline.instant(), || {
            self.epoch.load(Ordering::Acquire) > e
        });
        // Completion wins: re-check after a timed-out stall.
        if self.epoch.load(Ordering::Acquire) > e {
            return Ok(());
        }
        debug_assert!(report.timed_out);
        Err(BarrierError::Timeout { episode: e })
    }

    /// The boundary install, run exactly once per epoch by the claim
    /// winner: free departed slots, activate staged joiners (rebuilding
    /// the inner backend at the new size), publish the epoch, wake
    /// parked async waiters.
    fn install(&self, e: u64) {
        {
            let _g = self.gate.acquire();
            let mut ins = lock(&self.installed);
            for slot in 0..self.capacity {
                if self.pending_free[slot].load(Ordering::Acquire) != 0 {
                    self.pending_free[slot].store(0, Ordering::Release);
                    self.last_arrive[slot].store(NEVER, Ordering::Release);
                    // Freeing the claim refcount is last: a concurrent
                    // joiner that wins the slot reads the already-bumped
                    // generation.
                    self.reserved[slot].fetch_sub(1, Ordering::AcqRel);
                }
            }
            let mut joined = false;
            for slot in 0..self.capacity {
                if self.pending_join[slot].load(Ordering::Acquire) != 0 {
                    self.pending_join[slot].store(0, Ordering::Release);
                    self.activation[slot].store(e + 1, Ordering::Release);
                    ins.rank_of[slot] = Some(usize::MAX); // rank assigned below
                    joined = true;
                }
            }
            if joined {
                // Growth rebuilds: the stock backends fix their structure
                // (rounds, tree shape, shards) at construction. Ranks are
                // reassigned densely in slot order.
                let active: Vec<usize> = (0..self.capacity)
                    .filter(|&slot| ins.rank_of[slot].is_some())
                    .collect();
                for (rank, &slot) in active.iter().enumerate() {
                    ins.rank_of[slot] = Some(rank);
                }
                ins.members = active.len();
                ins.inner = (self.factory)(active.len());
            }
            self.stats.record_episode();
        }
        // Publish outside the gate; an RMW so shadow waiters re-wake.
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.wake_parked();
    }

    /// Removes the member behind `handle` from the group. Its departure
    /// counts as a stand-in arrival for the in-flight epoch (the inner
    /// backend's eviction), the handle is invalidated immediately via the
    /// generation bump, and the slot frees for reuse at the next boundary.
    ///
    /// # Errors
    ///
    /// * [`BarrierError::StaleGeneration`] — the handle already departed.
    /// * [`BarrierError::EmptyGroup`] — the last member cannot leave.
    ///
    /// # Panics
    ///
    /// Panics if the member already arrived for the in-flight epoch (the
    /// eviction contract; see the module docs).
    pub fn leave(&self, handle: MemberHandle) -> Result<(), BarrierError> {
        self.depart(handle.slot, handle.generation)
    }

    /// Evicts the member occupying `slot` at `generation` — the external
    /// (supervisor-driven) form of [`Self::leave`], for members that
    /// crashed before arriving. The generation check makes eviction
    /// idempotent and race-safe against slot reuse: an evictor holding
    /// yesterday's generation cannot evict today's occupant.
    ///
    /// # Errors
    ///
    /// As [`Self::leave`], plus [`BarrierError::NotAParticipant`] if the
    /// slot is inactive.
    ///
    /// # Panics
    ///
    /// Panics if the member already arrived for the in-flight epoch.
    pub fn evict(&self, slot: usize, generation: u64) -> Result<(), BarrierError> {
        self.depart(slot, generation)?;
        self.stats.record_eviction();
        Ok(())
    }

    fn depart(&self, slot: usize, held: u64) -> Result<(), BarrierError> {
        assert!(
            slot < self.capacity,
            "slot {slot} out of range for capacity {}",
            self.capacity
        );
        let _g = self.gate.acquire();
        let current = self.generation[slot].load(Ordering::Acquire);
        if current != held {
            return Err(BarrierError::StaleGeneration {
                slot,
                held,
                current,
            });
        }
        let inner = {
            let ins = lock(&self.installed);
            let rank = ins.rank_of[slot].ok_or(BarrierError::NotAParticipant { id: slot })?;
            if ins.members <= 1 {
                return Err(BarrierError::EmptyGroup);
            }
            let epoch = self.epoch.load(Ordering::Acquire);
            assert!(
                self.last_arrive[slot].load(Ordering::Acquire) != epoch,
                "cannot remove slot {slot}: it already arrived for in-flight epoch {epoch}"
            );
            drop(ins);
            let mut ins = lock(&self.installed);
            let inner = Arc::clone(&ins.inner);
            // The stand-in arrival first: if the inner backend refuses,
            // nothing was mutated.
            inner.evict(rank)?;
            self.generation[slot].fetch_add(1, Ordering::AcqRel);
            self.activation[slot].store(NEVER, Ordering::Release);
            ins.rank_of[slot] = None;
            ins.members -= 1;
            self.pending_free[slot].store(1, Ordering::Release);
            inner
        };
        drop(inner);
        drop(_g);
        // The stand-in may have completed the inner episode while every
        // async member sits parked; wake them to re-probe.
        self.wake_parked();
        Ok(())
    }

    /// Poisons the current inner backend: bounded waits of the in-flight
    /// epoch return [`BarrierError::Poisoned`].
    pub fn poison(&self) {
        let inner = {
            let _g = self.gate.acquire();
            Arc::clone(&lock(&self.installed).inner)
        };
        inner.poison();
        self.wake_parked();
    }

    /// Clears a poisoned inner backend.
    pub fn clear_poison(&self) {
        let _g = self.gate.acquire();
        lock(&self.installed).inner.clear_poison();
    }

    /// True if the current inner backend is poisoned.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        let _g = self.gate.acquire();
        lock(&self.installed).inner.is_poisoned()
    }

    /// Snapshot of the wrapper's accumulated statistics (arrivals and
    /// waits are indexed by slot; episodes count wrapper epochs).
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Full wrapper telemetry: flat counters plus stall histogram and
    /// per-slot counters.
    #[must_use]
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.stats.telemetry()
    }

    fn wake_parked(&self) {
        let wakers: Vec<Waker> = std::mem::take(&mut *lock(&self.parked));
        for waker in wakers {
            waker.wake();
        }
    }

    fn park(&self, waker: &Waker) {
        lock(&self.parked).push(waker.clone());
    }
}

impl<S: SyncOps> ReconfigBarrier<S> {
    /// Async form of [`Self::wait`]: a future resolving when the epoch the
    /// token arrived for publishes (or the barrier is poisoned first).
    /// Dropping the future unresolved poisons the barrier, mirroring
    /// [`crate::BarrierFuture`].
    pub fn wait_future(self: &Arc<Self>, token: ReconfigToken) -> ReconfigFuture<S> {
        ReconfigFuture {
            barrier: Arc::clone(self),
            token,
            parked: false,
            polls: 0,
            first_pending: None,
            done: false,
        }
    }

    /// Async form of [`Self::wait_active`]: a future resolving to the
    /// member's handle once the staged join activates. This is what lets
    /// an executor park joiners until their epoch activates instead of
    /// pinning a thread per joiner.
    pub fn activation_future(self: &Arc<Self>, ticket: &JoinTicket) -> ActivationFuture<S> {
        ActivationFuture {
            barrier: Arc::clone(self),
            ticket: *ticket,
        }
    }
}

impl<S: SyncOps> fmt::Debug for ReconfigBarrier<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReconfigBarrier")
            .field("capacity", &self.capacity)
            .field("epoch", &self.epoch.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

/// A future resolving when the wrapper epoch its token arrived for
/// publishes; created by [`ReconfigBarrier::wait_future`].
#[must_use = "an async arrival must be polled to completion"]
pub struct ReconfigFuture<S: SyncOps = RealSync> {
    barrier: Arc<ReconfigBarrier<S>>,
    token: ReconfigToken,
    parked: bool,
    polls: u64,
    first_pending: Option<Instant>,
    done: bool,
}

impl<S: SyncOps> fmt::Debug for ReconfigFuture<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReconfigFuture")
            .field("slot", &self.token.slot)
            .field("epoch", &self.token.epoch)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl<S: SyncOps> Future for ReconfigFuture<S> {
    type Output = Result<WaitOutcome, BarrierError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = Pin::into_inner(self);
        assert!(!this.done, "ReconfigFuture polled after completion");
        this.polls += 1;
        let e = this.token.epoch;
        let barrier = &this.barrier;
        let own = ArrivalToken::new(this.token.rank, this.token.inner_episode);
        // Ready requires BOTH the epoch publication and the member's own
        // inner completion: on cooperative backends the own-probe is what
        // help-drives this member's rounds before it re-arrives.
        let ready = |b: &ReconfigBarrier<S>, t: &ReconfigToken| {
            b.epoch.load(Ordering::Acquire) > e
                && t.inner
                    .is_complete(&ArrivalToken::new(t.rank, t.inner_episode))
        };
        if !ready(barrier, &this.token) {
            if this.token.inner.is_poisoned() {
                this.done = true;
                return Poll::Ready(Err(BarrierError::Poisoned { episode: e }));
            }
            if this.token.inner.is_complete(&own) {
                // All of epoch e arrived; run the boundary if unclaimed.
                if barrier.claim.fetch_max(e + 1, Ordering::AcqRel) <= e {
                    barrier.install(e);
                }
                // Own episode done: only the publication is outstanding,
                // and the installer wakes everyone parked. Park before
                // the final re-check so a racing publication is not lost.
                barrier.park(cx.waker());
                if !ready(barrier, &this.token) {
                    if this.first_pending.is_none() {
                        this.first_pending = Some(Instant::now());
                    }
                    this.parked = true;
                    return Poll::Pending;
                }
            } else {
                // Cooperative backends (dissemination, hier) advance this
                // member's rounds only through its own probes; parking now
                // — possibly with every peer parked too — would deadlock.
                // Yield through the executor instead: the re-poll probes
                // again, help-driving the rounds until they complete.
                if this.first_pending.is_none() {
                    this.first_pending = Some(Instant::now());
                }
                cx.waker().wake_by_ref();
                return Poll::Pending;
            }
        }
        this.done = true;
        let outcome = WaitOutcome {
            episode: e,
            stalled: this.polls > 1,
            descheduled: this.parked,
            probes: this.polls,
            stall_time: this.first_pending.map(|t| t.elapsed()).unwrap_or_default(),
        };
        barrier.stats.record_wait(this.token.slot, &outcome);
        Poll::Ready(Ok(outcome))
    }
}

impl<S: SyncOps> Drop for ReconfigFuture<S> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // An arrival that will never be waited on would hang its peers:
        // poison, mirroring BarrierFuture's drop.
        let own = ArrivalToken::new(self.token.rank, self.token.inner_episode);
        if !self.token.inner.is_complete(&own) {
            self.barrier.poison();
        }
    }
}

/// A future resolving to a [`MemberHandle`] once a staged join activates;
/// created by [`ReconfigBarrier::activation_future`].
#[must_use = "a staged join activates only if awaited"]
pub struct ActivationFuture<S: SyncOps = RealSync> {
    barrier: Arc<ReconfigBarrier<S>>,
    ticket: JoinTicket,
}

impl<S: SyncOps> fmt::Debug for ActivationFuture<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActivationFuture")
            .field("slot", &self.ticket.slot)
            .finish_non_exhaustive()
    }
}

impl<S: SyncOps> Future for ActivationFuture<S> {
    type Output = MemberHandle;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = Pin::into_inner(self);
        if this.barrier.is_active(&this.ticket) {
            return Poll::Ready(MemberHandle {
                slot: this.ticket.slot,
                generation: this.ticket.generation,
            });
        }
        // Park before re-checking so an activation racing this poll is
        // not lost.
        this.barrier.park(cx.waker());
        if this.barrier.is_active(&this.ticket) {
            return Poll::Ready(MemberHandle {
                slot: this.ticket.slot,
                generation: this.ticket.generation,
            });
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::CentralBarrier;
    use crate::dissemination::DisseminationBarrier;
    use crate::hier::{HierBarrier, TopLevel};

    fn central_factory(n: usize) -> Arc<dyn SplitBarrier> {
        Arc::new(CentralBarrier::with_policy(n, StallPolicy::yielding()))
    }

    fn poll_once<F: Future + Unpin>(fut: &mut F) -> Poll<F::Output> {
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        Pin::new(fut).poll(&mut cx)
    }

    #[test]
    fn solo_member_advances_epochs() {
        let (b, handles) = ReconfigBarrier::new(2, 1, central_factory);
        let h = handles[0];
        for e in 0..5 {
            let t = b.arrive(&h).unwrap();
            assert_eq!(t.epoch(), e);
            let o = b.wait(&t).unwrap();
            assert_eq!(o.episode, e);
        }
        assert_eq!(b.epoch(), 5);
        assert_eq!(b.stats().episodes, 5);
    }

    #[test]
    fn joiner_activates_at_the_next_boundary() {
        let (b, handles) = ReconfigBarrier::new(4, 2, central_factory);
        let b = Arc::new(b);
        let ticket = b.join().unwrap();
        assert!(
            !b.is_active(&ticket),
            "join stages; it must not apply early"
        );
        std::thread::scope(|s| {
            for h in handles {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    // Epoch 0: two members. Epoch 1: three.
                    for _ in 0..2 {
                        let t = b.arrive(&h).unwrap();
                        b.wait(&t).unwrap();
                    }
                });
            }
            let b2 = Arc::clone(&b);
            s.spawn(move || {
                let h = b2.wait_active(&ticket);
                let t = b2.arrive(&h).unwrap();
                assert_eq!(t.epoch(), 1, "joiner's first epoch is post-boundary");
                b2.wait(&t).unwrap();
            });
        });
        assert_eq!(b.members(), 3);
        assert_eq!(b.epoch(), 2);
    }

    #[test]
    fn leave_invalidates_the_handle_and_shrinks() {
        let (b, handles) = ReconfigBarrier::new(4, 2, central_factory);
        let b = Arc::new(b);
        std::thread::scope(|s| {
            let b0 = Arc::clone(&b);
            let h0 = handles[0];
            s.spawn(move || {
                // Epoch 0 with both, epoch 1 alone (peer's leave stands in).
                for e in 0..2 {
                    let t = b0.arrive(&h0).unwrap();
                    assert_eq!(b0.wait(&t).unwrap().episode, e);
                }
            });
            let b1 = Arc::clone(&b);
            let h1 = handles[1];
            s.spawn(move || {
                let t = b1.arrive(&h1).unwrap();
                b1.wait(&t).unwrap();
                b1.leave(h1).unwrap();
                assert_eq!(
                    b1.arrive(&h1).unwrap_err(),
                    BarrierError::StaleGeneration {
                        slot: 1,
                        held: 0,
                        current: 1
                    }
                );
            });
        });
        assert_eq!(b.members(), 1);
    }

    #[test]
    fn evict_releases_a_stuck_epoch_and_respects_generations() {
        let (b, handles) = ReconfigBarrier::new(2, 2, central_factory);
        let b = Arc::new(b);
        std::thread::scope(|s| {
            let b0 = Arc::clone(&b);
            let h0 = handles[0];
            s.spawn(move || {
                let t = b0.arrive(&h0).unwrap();
                // Member 1 never arrives; its eviction must release us.
                assert_eq!(b0.wait(&t).unwrap().episode, 0);
            });
            std::thread::sleep(std::time::Duration::from_millis(5));
            // Wrong generation is refused; the right one evicts.
            assert!(matches!(
                b.evict(1, 99).unwrap_err(),
                BarrierError::StaleGeneration { .. }
            ));
            b.evict(1, handles[1].generation()).unwrap();
        });
        assert_eq!(b.members(), 1);
        assert_eq!(b.stats().evictions, 1);
        // Double-evict with the old generation is now stale.
        assert!(matches!(
            b.evict(1, handles[1].generation()).unwrap_err(),
            BarrierError::StaleGeneration { .. }
        ));
    }

    #[test]
    fn slot_reuse_issues_a_fresh_generation() {
        let (b, handles) = ReconfigBarrier::new(2, 2, central_factory);
        let b = Arc::new(b);
        let h0 = handles[0];
        // Member 1 leaves before arriving; its stand-in covers epoch 0.
        b.leave(handles[1]).unwrap();
        let t = b.arrive(&h0).unwrap();
        b.wait(&t).unwrap();
        // The boundary freed slot 1; a new joiner reuses it at gen 1.
        let ticket = b.join().unwrap();
        assert_eq!(ticket.slot(), 1);
        let t = b.arrive(&h0).unwrap();
        b.wait(&t).unwrap();
        let h1b = b.wait_active(&ticket);
        assert_eq!(h1b.generation(), 1);
        // Old and new handles now disagree on generation: the stale one
        // can never arrive into the resized barrier.
        assert!(matches!(
            b.arrive(&handles[1]).unwrap_err(),
            BarrierError::StaleGeneration {
                slot: 1,
                held: 0,
                current: 1
            }
        ));
        std::thread::scope(|s| {
            for h in [h0, h1b] {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    let t = b.arrive(&h).unwrap();
                    b.wait(&t).unwrap();
                });
            }
        });
        assert_eq!(b.members(), 2);
    }

    #[test]
    fn join_fails_when_all_slots_claimed() {
        let (b, _handles) = ReconfigBarrier::new(2, 2, central_factory);
        assert_eq!(
            b.join().unwrap_err(),
            BarrierError::GroupFull { capacity: 2 }
        );
    }

    #[test]
    fn last_member_cannot_leave() {
        let (b, handles) = ReconfigBarrier::new(2, 1, central_factory);
        assert_eq!(b.leave(handles[0]).unwrap_err(), BarrierError::EmptyGroup);
    }

    #[test]
    fn timeout_keeps_the_token_retryable() {
        let (b, handles) = ReconfigBarrier::new(2, 2, central_factory);
        let b = Arc::new(b);
        std::thread::scope(|s| {
            let b0 = Arc::clone(&b);
            let h0 = handles[0];
            s.spawn(move || {
                let t = b0.arrive(&h0).unwrap();
                let err = b0
                    .wait_deadline(&t, Deadline::after(std::time::Duration::from_millis(5)))
                    .unwrap_err();
                assert_eq!(err, BarrierError::Timeout { episode: 0 });
                // Retry with the same token once the peer shows up.
                assert_eq!(b0.wait(&t).unwrap().episode, 0);
            });
            let b1 = Arc::clone(&b);
            let h1 = handles[1];
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                let t = b1.arrive(&h1).unwrap();
                b1.wait(&t).unwrap();
            });
        });
    }

    #[test]
    fn works_over_cooperative_backends() {
        for factory in [
            (|n| {
                Arc::new(DisseminationBarrier::with_policy(
                    n,
                    StallPolicy::yielding(),
                )) as _
            }) as fn(usize) -> Arc<dyn SplitBarrier>,
            |n| {
                Arc::new(HierBarrier::with_shards(
                    n,
                    2,
                    TopLevel::Dissemination,
                    StallPolicy::yielding(),
                )) as _
            },
        ] {
            let (b, handles) = ReconfigBarrier::new(6, 3, factory);
            let b = Arc::new(b);
            let ticket = b.join().unwrap();
            std::thread::scope(|s| {
                for h in handles {
                    let b = Arc::clone(&b);
                    s.spawn(move || {
                        for _ in 0..3 {
                            let t = b.arrive(&h).unwrap();
                            b.wait(&t).unwrap();
                        }
                    });
                }
                let b2 = Arc::clone(&b);
                s.spawn(move || {
                    let h = b2.wait_active(&ticket);
                    for _ in 0..2 {
                        let t = b2.arrive(&h).unwrap();
                        b2.wait(&t).unwrap();
                    }
                });
            });
            assert_eq!(b.members(), 4);
            assert_eq!(b.epoch(), 3);
        }
    }

    #[test]
    fn async_wait_future_resolves_on_publication() {
        let (b, handles) = ReconfigBarrier::new(2, 2, central_factory);
        let b = Arc::new(b);
        let t0 = b.arrive(&handles[0]).unwrap();
        let mut f0 = b.wait_future(t0);
        assert!(poll_once(&mut f0).is_pending(), "peer not arrived yet");
        let t1 = b.arrive(&handles[1]).unwrap();
        let mut f1 = b.wait_future(t1);
        // The last arriver's poll runs the boundary install itself.
        match poll_once(&mut f1) {
            Poll::Ready(Ok(o)) => assert_eq!(o.episode, 0),
            other => panic!("expected Ready(Ok(_)), got {other:?}"),
        }
        match poll_once(&mut f0) {
            Poll::Ready(Ok(o)) => {
                assert_eq!(o.episode, 0);
                assert!(o.stalled);
            }
            other => panic!("expected Ready(Ok(_)), got {other:?}"),
        }
        assert_eq!(b.epoch(), 1);
    }

    #[test]
    fn activation_future_parks_until_the_boundary() {
        let (b, handles) = ReconfigBarrier::new(3, 1, central_factory);
        let b = Arc::new(b);
        let ticket = b.join().unwrap();
        let mut act = b.activation_future(&ticket);
        assert!(poll_once(&mut act).is_pending());
        // One solo epoch triggers the install that activates the joiner.
        let t = b.arrive(&handles[0]).unwrap();
        b.wait(&t).unwrap();
        match poll_once(&mut act) {
            Poll::Ready(h) => assert_eq!(h.slot(), ticket.slot()),
            Poll::Pending => panic!("activation future must resolve after the boundary"),
        }
        assert_eq!(b.members(), 2);
    }

    #[test]
    fn dropping_an_unresolved_wait_future_poisons() {
        let (b, handles) = ReconfigBarrier::new(2, 2, central_factory);
        let b = Arc::new(b);
        let t0 = b.arrive(&handles[0]).unwrap();
        drop(b.wait_future(t0));
        assert!(b.is_poisoned());
    }

    #[test]
    fn churn_under_load_stays_live() {
        // One permanent core member keeps episodes flowing (so boundaries —
        // and thus activations — always come) while a revolving door of
        // joiners joins, runs two epochs, and leaves again. The stop flag
        // is raised only after every joiner has fully left, so the core's
        // exit can never strand an active member mid-wait.
        let (b, handles) = ReconfigBarrier::new(8, 1, central_factory);
        let b = Arc::new(b);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let core = {
                let b = Arc::clone(&b);
                let stop = Arc::clone(&stop);
                let h = handles[0];
                s.spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let t = b.arrive(&h).unwrap();
                        b.wait(&t).unwrap();
                    }
                })
            };
            let joiners: Vec<_> = (0..3)
                .map(|_| {
                    let b = Arc::clone(&b);
                    s.spawn(move || {
                        for _ in 0..10 {
                            let ticket = loop {
                                match b.join() {
                                    Ok(t) => break t,
                                    Err(_) => std::thread::yield_now(),
                                }
                            };
                            let h = b.wait_active(&ticket);
                            for _ in 0..2 {
                                let t = b.arrive(&h).unwrap();
                                b.wait(&t).unwrap();
                            }
                            b.leave(h).unwrap();
                        }
                    })
                })
                .collect();
            for j in joiners {
                j.join().unwrap();
            }
            stop.store(true, Ordering::Release);
            core.join().unwrap();
        });
        assert_eq!(b.members(), 1, "all transient joiners left again");
    }
}
