//! Participant masks: which processors take part in a barrier.
//!
//! The paper's hardware gives each processor an *n − 1*-bit mask naming the
//! processors it synchronizes with (Sec. 6). [`ProcMask`] is the software
//! analogue — a bitset over global participant ids — used by
//! [`crate::SubsetBarrier`] to let "disjoint subsets of processors …
//! independently synchronize among themselves".

use std::fmt;

/// A set of participant ids, at most [`ProcMask::CAPACITY`] of them.
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::ProcMask;
///
/// let mask: ProcMask = [0, 2, 3].into_iter().collect();
/// assert!(mask.contains(2));
/// assert!(!mask.contains(1));
/// assert_eq!(mask.len(), 3);
/// assert_eq!(mask.iter().collect::<Vec<_>>(), vec![0, 2, 3]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcMask(u64);

impl ProcMask {
    /// Maximum participant id representable plus one.
    pub const CAPACITY: usize = 64;

    /// The empty mask.
    #[must_use]
    pub fn new() -> Self {
        ProcMask(0)
    }

    /// A mask containing ids `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[must_use]
    pub fn first_n(n: usize) -> Self {
        assert!(n <= Self::CAPACITY, "mask supports at most 64 participants");
        if n == Self::CAPACITY {
            ProcMask(u64::MAX)
        } else {
            ProcMask((1u64 << n) - 1)
        }
    }

    /// A mask containing a single id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 64`.
    #[must_use]
    pub fn single(id: usize) -> Self {
        let mut m = ProcMask::new();
        m.insert(id);
        m
    }

    /// Inserts `id`; returns true if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 64`.
    pub fn insert(&mut self, id: usize) -> bool {
        assert!(
            id < Self::CAPACITY,
            "participant id {id} exceeds mask capacity"
        );
        let bit = 1u64 << id;
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes `id`; returns true if it was present.
    pub fn remove(&mut self, id: usize) -> bool {
        if id >= Self::CAPACITY {
            return false;
        }
        let bit = 1u64 << id;
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Whether `id` is in the mask.
    #[must_use]
    pub fn contains(&self, id: usize) -> bool {
        id < Self::CAPACITY && self.0 & (1u64 << id) != 0
    }

    /// Number of participants in the mask.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the mask is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &ProcMask) -> ProcMask {
        ProcMask(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(&self, other: &ProcMask) -> ProcMask {
        ProcMask(self.0 & other.0)
    }

    /// Whether the two masks share no participants — the condition under
    /// which two barriers may proceed fully independently (Sec. 5).
    #[must_use]
    pub fn is_disjoint(&self, other: &ProcMask) -> bool {
        self.0 & other.0 == 0
    }

    /// Whether every member of `self` is also in `other`.
    #[must_use]
    pub fn is_subset(&self, other: &ProcMask) -> bool {
        self.0 & !other.0 == 0
    }

    /// The dense rank of `id` within the mask (how many smaller members
    /// precede it), or `None` if `id` is not a member. Used to map global
    /// ids onto a subset barrier's dense participant indices.
    #[must_use]
    pub fn rank_of(&self, id: usize) -> Option<usize> {
        if !self.contains(id) {
            return None;
        }
        let below = self.0 & ((1u64 << id) - 1);
        Some(below.count_ones() as usize)
    }

    /// Iterates over member ids in ascending order.
    pub fn iter(&self) -> Iter {
        Iter(self.0)
    }

    /// The raw 64-bit representation (bit *i* set ⇔ id *i* is a member),
    /// matching the paper's hardware mask register.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.0
    }

    /// Builds a mask from its raw bit representation.
    #[must_use]
    pub fn from_bits(bits: u64) -> Self {
        ProcMask(bits)
    }
}

impl fmt::Display for ProcMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for id in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{id}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for ProcMask {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut mask = ProcMask::new();
        for id in iter {
            mask.insert(id);
        }
        mask
    }
}

impl Extend<usize> for ProcMask {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl IntoIterator for ProcMask {
    type Item = usize;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        Iter(self.0)
    }
}

impl IntoIterator for &ProcMask {
    type Item = usize;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        Iter(self.0)
    }
}

/// Iterator over the member ids of a [`ProcMask`], ascending.
#[derive(Debug, Clone)]
pub struct Iter(u64);

impl Iterator for Iter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let id = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(id)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_n_and_len() {
        assert_eq!(ProcMask::first_n(0).len(), 0);
        assert_eq!(ProcMask::first_n(4).len(), 4);
        assert_eq!(ProcMask::first_n(64).len(), 64);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn first_n_over_capacity_panics() {
        let _ = ProcMask::first_n(65);
    }

    #[test]
    fn insert_remove_contains() {
        let mut m = ProcMask::new();
        assert!(m.insert(5));
        assert!(!m.insert(5));
        assert!(m.contains(5));
        assert!(m.remove(5));
        assert!(!m.remove(5));
        assert!(m.is_empty());
    }

    #[test]
    fn rank_is_dense_index() {
        let m: ProcMask = [1, 4, 9].into_iter().collect();
        assert_eq!(m.rank_of(1), Some(0));
        assert_eq!(m.rank_of(4), Some(1));
        assert_eq!(m.rank_of(9), Some(2));
        assert_eq!(m.rank_of(2), None);
    }

    #[test]
    fn set_algebra() {
        let a: ProcMask = [0, 1].into_iter().collect();
        let b: ProcMask = [1, 2].into_iter().collect();
        let c: ProcMask = [3].into_iter().collect();
        assert_eq!(a.union(&b), [0, 1, 2].into_iter().collect());
        assert_eq!(a.intersection(&b), ProcMask::single(1));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert!(ProcMask::single(1).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn display_lists_members() {
        let m: ProcMask = [2, 0].into_iter().collect();
        assert_eq!(m.to_string(), "{0,2}");
        assert_eq!(ProcMask::new().to_string(), "{}");
    }

    #[test]
    fn iter_ascending_and_exact_size() {
        let m: ProcMask = [7, 3, 63].into_iter().collect();
        let v: Vec<usize> = m.iter().collect();
        assert_eq!(v, vec![3, 7, 63]);
        assert_eq!(m.iter().len(), 3);
    }

    #[test]
    fn bits_round_trip() {
        let m: ProcMask = [0, 63].into_iter().collect();
        assert_eq!(ProcMask::from_bits(m.bits()), m);
    }
}
