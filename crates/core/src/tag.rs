//! Barrier tags: the identity of a logical barrier.
//!
//! The paper's hardware attaches an *m*-bit tag register to each processor;
//! "two processors can only synchronize at a barrier if their tags match",
//! and "a system with an m-bit tag supports 2^m − 1 logical barriers, where
//! a combination of all zeros is used to indicate that the processor is not
//! participating" (Sec. 6). [`Tag`] encodes exactly that: a non-zero 16-bit
//! identity, with `Option<Tag>` standing in for the all-zeros
//! "not participating" encoding.

use std::fmt;
use std::num::NonZeroU16;

/// A non-zero barrier identity.
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::Tag;
///
/// let t = Tag::new(3).expect("non-zero");
/// assert_eq!(t.get(), 3);
/// assert!(Tag::new(0).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(NonZeroU16);

impl Tag {
    /// Number of distinct logical barriers supported: 2^16 − 1.
    pub const MAX_LOGICAL_BARRIERS: usize = u16::MAX as usize;

    /// Creates a tag from a raw value; `None` if `raw == 0` (the paper's
    /// "not participating" encoding).
    #[must_use]
    pub fn new(raw: u16) -> Option<Self> {
        NonZeroU16::new(raw).map(Tag)
    }

    /// The raw tag value.
    #[must_use]
    pub fn get(&self) -> u16 {
        self.0.get()
    }

    /// Whether two tags match, i.e. the processors may synchronize.
    #[must_use]
    pub fn matches(&self, other: &Tag) -> bool {
        self == other
    }

    /// The successor tag, wrapping from 2^16 − 1 back to 1 (skipping 0).
    /// Convenient for allocators that hand out fresh tags.
    #[must_use]
    pub fn next(&self) -> Tag {
        match self.0.get().checked_add(1) {
            Some(v) => Tag(NonZeroU16::new(v).expect("v >= 2")),
            None => Tag(NonZeroU16::new(1).expect("1 is non-zero")),
        }
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag({})", self.0)
    }
}

impl From<Tag> for u16 {
    fn from(tag: Tag) -> u16 {
        tag.get()
    }
}

impl TryFrom<u16> for Tag {
    type Error = ZeroTagError;

    fn try_from(raw: u16) -> Result<Self, ZeroTagError> {
        Tag::new(raw).ok_or(ZeroTagError)
    }
}

/// Error returned when constructing a [`Tag`] from zero — the reserved
/// "not participating" encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroTagError;

impl fmt::Display for ZeroTagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag zero is reserved for \"not participating\"")
    }
}

impl std::error::Error for ZeroTagError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_rejected() {
        assert!(Tag::new(0).is_none());
        assert_eq!(Tag::try_from(0u16), Err(ZeroTagError));
    }

    #[test]
    fn matches_is_equality() {
        let a = Tag::new(7).unwrap();
        let b = Tag::new(7).unwrap();
        let c = Tag::new(8).unwrap();
        assert!(a.matches(&b));
        assert!(!a.matches(&c));
    }

    #[test]
    fn next_wraps_past_max() {
        let max = Tag::new(u16::MAX).unwrap();
        assert_eq!(max.next().get(), 1);
        assert_eq!(Tag::new(1).unwrap().next().get(), 2);
    }

    #[test]
    fn round_trips_through_u16() {
        let t = Tag::new(42).unwrap();
        let raw: u16 = t.into();
        assert_eq!(Tag::try_from(raw).unwrap(), t);
    }

    #[test]
    fn option_is_pointer_sized() {
        // The all-zeros niche means Option<Tag> costs nothing extra, just
        // like the hardware's zero encoding.
        assert_eq!(
            std::mem::size_of::<Option<Tag>>(),
            std::mem::size_of::<Tag>()
        );
    }
}
