//! Topology-aware hierarchical split-phase barrier.
//!
//! Flat backends make every participant touch globally shared state each
//! episode: one counter word (centralized/counting) or O(log N) pairwise
//! flags spanning all participants (dissemination). [`HierBarrier`]
//! localizes arrival traffic instead: participants are partitioned into
//! contiguous *shards*, each shard owns its own cache-line-padded arrivals
//! word, and only the last arriver of a shard — its *leader* for that
//! episode — takes part in the global top-level protocol over the (much
//! smaller) set of shards. Release is broadcast back per shard through a
//! shard-local epoch word, so steady-state waiters poll a line that only
//! their own shard writes.
//!
//! The shape follows the cluster-hierarchical barriers used on manycore
//! RISC-V fabrics (see PAPERS.md): arrival cost is O(shard) contention on
//! a private line plus O(log shards) leader traffic, instead of O(N) on
//! one hot line. The fuzzy split is fully preserved — `arrive` never
//! blocks, even for the leader, whose top-level sign-in is non-blocking.

use crate::error::BarrierError;
use crate::failure::{self, Deadline, OnTimeout, WaitPolicy};
use crate::spin::StallPolicy;
use crate::stats::{BarrierStats, StatsSnapshot, TelemetrySnapshot};
use crate::sync::{Atomic, RealSync, SyncOps};
use crate::token::{ArrivalToken, WaitOutcome};
use crate::SplitBarrier;
use fuzzy_util::CachePadded;
use std::sync::atomic::Ordering;

/// How shard leaders synchronize once every member of their shard has
/// arrived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TopLevel {
    /// Pairwise leader rounds at shard granularity (the
    /// [`crate::DisseminationBarrier`] pattern): no shared word at all,
    /// `ceil(log2(shards))` rounds, each shard discovers completion
    /// itself. The default.
    #[default]
    Dissemination,
    /// A fan-in-2 combining tree over shards (the [`crate::TreeBarrier`]
    /// pattern): the root publishes a single global episode word that all
    /// shards' waiters poll until their shard epoch catches up.
    Tree,
}

/// Per-shard arrival state. Each shard is wrapped in a `CachePadded` so
/// the hot `count` word of one shard never false-shares with another's.
#[derive(Debug)]
struct Shard<S: SyncOps> {
    /// Remaining arrivals in the shard's current episode (counts down
    /// from `expected`).
    count: S::AtomicUsize,
    /// Live members of the shard (shrinks on eviction; 0 = dead shard).
    expected: S::AtomicUsize,
    /// Highest episode goal broadcast to this shard's waiters — the
    /// shard-local release word.
    epoch: S::AtomicU64,
    /// Episodes this shard has fully arrived for (its sign-in counter).
    arrived: S::AtomicU64,
}

/// One node of the top-level combining tree (only built for
/// [`TopLevel::Tree`]).
#[derive(Debug)]
struct TopNode<S: SyncOps> {
    /// Remaining sign-ins at this node for the in-flight episode.
    count: S::AtomicUsize,
    /// Live contributors to this node (shrinks when shards die).
    expected: S::AtomicUsize,
    /// Parent node index; `None` for the root.
    parent: Option<usize>,
}

impl<S: SyncOps> TopNode<S> {
    fn new(expected: usize) -> Self {
        TopNode {
            count: S::AtomicUsize::new(expected),
            expected: S::AtomicUsize::new(expected),
            parent: None,
        }
    }
}

/// The combining-tree node array plus each shard's level-0 node index.
type TreeTop<S> = (Box<[CachePadded<TopNode<S>>]>, Box<[usize]>);

/// Top-level synchronization state, matching the configured [`TopLevel`].
#[derive(Debug)]
enum Top<S: SyncOps> {
    /// Round-major flag matrix (`rounds * shards` slots, each padded) plus
    /// a per-shard progress word counting completed leader rounds across
    /// all episodes. Both empty when there is a single shard.
    Dissemination {
        flags: Box<[CachePadded<S::AtomicU64>]>,
        progress: Box<[CachePadded<S::AtomicU64>]>,
    },
    /// Combining-tree nodes (level by level, root last) and each shard's
    /// level-0 node index.
    Tree {
        nodes: Box<[CachePadded<TopNode<S>>]>,
        leaf_of_shard: Box<[usize]>,
    },
}

/// A hierarchical split-phase barrier: sharded arrival words, a
/// configurable leader protocol over shards, and per-shard release
/// broadcast.
///
/// Participant `id` belongs to shard `id / shard_size` (shards are
/// contiguous, so co-scheduled neighbours share a shard and its arrival
/// line). The last member to arrive in a shard re-arms the shard counter
/// and *signs the shard in* at the top level without blocking; waiters
/// poll their shard's epoch word, falling back to the top-level state
/// until the first of them observes completion and broadcasts it into the
/// epoch word for the rest.
///
/// [`HierBarrier::new`] pairs the hierarchy with
/// [`StallPolicy::adaptive`]: sharding shortens the common wait, and the
/// adaptive budget stops paying long spin budgets when waits are long
/// anyway — the two halves of this backend's performance story.
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::{HierBarrier, SplitBarrier};
///
/// let b = HierBarrier::new(1);
/// let token = b.arrive(0);
/// let outcome = b.wait(token);
/// assert!(!outcome.stalled);
/// ```
#[derive(Debug)]
pub struct HierBarrier<S: SyncOps = RealSync> {
    n: usize,
    shard_size: usize,
    top_level: TopLevel,
    policy: StallPolicy,
    /// Top-level dissemination rounds, `ceil(log2(shards))` (0 for one
    /// shard); fixed at construction even as shards die.
    rounds: u32,
    shards: Box<[CachePadded<Shard<S>>]>,
    top: Top<S>,
    /// Completed global episodes: the release word for the tree top, pure
    /// episode bookkeeping for the dissemination top.
    episode: CachePadded<S::AtomicU64>,
    /// Live participants across all shards (guards `EmptyGroup`).
    live: CachePadded<S::AtomicUsize>,
    /// Per-participant count of arrivals performed, used to stamp tokens.
    local_episode: Vec<CachePadded<S::AtomicU64>>,
    /// Non-zero once the barrier is poisoned (see [`SplitBarrier::poison`]).
    poisoned: CachePadded<S::AtomicU32>,
    /// Per-participant eviction flags (non-zero once evicted).
    evicted: Vec<CachePadded<S::AtomicU32>>,
    stats: BarrierStats,
}

impl HierBarrier {
    /// Default shard size: 8 participants share one arrival word, the
    /// sweet spot between shard-local contention and leader count for
    /// line-sized sharing domains.
    pub const DEFAULT_SHARD_SIZE: usize = 8;

    /// Creates a hierarchical barrier for `n` participants with the
    /// default shard size, a dissemination top level, and — unlike the
    /// flat backends — [`StallPolicy::adaptive`], this backend's
    /// canonical configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_policy(n, StallPolicy::adaptive())
    }

    /// Creates a barrier with an explicit [`StallPolicy`] (default shard
    /// size and top level).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_policy(n: usize, policy: StallPolicy) -> Self {
        Self::with_shards(n, Self::DEFAULT_SHARD_SIZE, TopLevel::default(), policy)
    }

    /// Creates a barrier with explicit shard size and top-level protocol.
    /// `shard_size` is clamped to `1..=n`; size 1 degenerates to a pure
    /// top-level barrier over singleton shards, size `n` to a single
    /// centralized shard.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `shard_size == 0`.
    #[must_use]
    pub fn with_shards(n: usize, shard_size: usize, top: TopLevel, policy: StallPolicy) -> Self {
        Self::with_shards_in(n, shard_size, top, policy)
    }
}

impl<S: SyncOps> HierBarrier<S> {
    /// Creates a barrier in an explicit [`SyncOps`] domain — `RealSync` in
    /// production, instrumented shadow state under the `fuzzy-check` model
    /// checker.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `shard_size == 0`.
    #[must_use]
    pub fn with_shards_in(
        n: usize,
        shard_size: usize,
        top_level: TopLevel,
        policy: StallPolicy,
    ) -> Self {
        assert!(n > 0, "a barrier needs at least one participant");
        assert!(shard_size > 0, "a shard needs at least one member");
        let shard_size = shard_size.min(n);
        let m = n.div_ceil(shard_size);
        let rounds = if m == 1 {
            0
        } else {
            usize::BITS - (m - 1).leading_zeros()
        };
        let shards: Box<[CachePadded<Shard<S>>]> = (0..m)
            .map(|k| {
                let members = shard_size.min(n - k * shard_size);
                CachePadded::new(Shard {
                    count: S::AtomicUsize::new(members),
                    expected: S::AtomicUsize::new(members),
                    epoch: S::AtomicU64::new(0),
                    arrived: S::AtomicU64::new(0),
                })
            })
            .collect();
        let top = match top_level {
            TopLevel::Dissemination => Top::Dissemination {
                flags: (0..rounds as usize * m)
                    .map(|_| CachePadded::new(S::AtomicU64::new(0)))
                    .collect(),
                progress: if rounds == 0 {
                    Box::new([])
                } else {
                    (0..m)
                        .map(|_| CachePadded::new(S::AtomicU64::new(0)))
                        .collect()
                },
            },
            TopLevel::Tree => {
                let (nodes, leaf_of_shard) = Self::build_top_tree(m);
                Top::Tree {
                    nodes,
                    leaf_of_shard,
                }
            }
        };
        HierBarrier {
            n,
            shard_size,
            top_level,
            policy,
            rounds,
            shards,
            top,
            episode: CachePadded::new(S::AtomicU64::new(0)),
            live: CachePadded::new(S::AtomicUsize::new(n)),
            local_episode: (0..n)
                .map(|_| CachePadded::new(S::AtomicU64::new(0)))
                .collect(),
            poisoned: CachePadded::new(S::AtomicU32::new(0)),
            evicted: (0..n)
                .map(|_| CachePadded::new(S::AtomicU32::new(0)))
                .collect(),
            stats: BarrierStats::with_participants(n),
        }
    }

    /// Builds the fan-in-2 combining tree over `m` shards, level by level
    /// (root last), returning the nodes and each shard's leaf node index.
    fn build_top_tree(m: usize) -> TreeTop<S> {
        const FAN_IN: usize = 2;
        let leaf_of_shard: Box<[usize]> = (0..m).map(|k| k / FAN_IN).collect();
        let mut nodes: Vec<TopNode<S>> = Vec::new();
        let mut level_start = 0;
        let mut level_count = m.div_ceil(FAN_IN);
        for j in 0..level_count {
            nodes.push(TopNode::new(FAN_IN.min(m - j * FAN_IN)));
        }
        while level_count > 1 {
            let next_start = level_start + level_count;
            let next_count = level_count.div_ceil(FAN_IN);
            for j in 0..next_count {
                nodes.push(TopNode::new(FAN_IN.min(level_count - j * FAN_IN)));
            }
            for i in 0..level_count {
                nodes[level_start + i].parent = Some(next_start + i / FAN_IN);
            }
            level_start = next_start;
            level_count = next_count;
        }
        (
            nodes.into_iter().map(CachePadded::new).collect(),
            leaf_of_shard,
        )
    }

    /// The stall policy waits use.
    #[must_use]
    pub fn policy(&self) -> StallPolicy {
        self.policy
    }

    /// The (clamped) shard size.
    #[must_use]
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Number of shards (`ceil(n / shard_size)`).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The leader protocol over shards.
    #[must_use]
    pub fn top_level(&self) -> TopLevel {
        self.top_level
    }

    /// Participants still in the barrier (construction count minus
    /// evictions).
    #[must_use]
    pub fn remaining_participants(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }

    fn shard_of(&self, id: usize) -> usize {
        id / self.shard_size
    }

    fn check_id(&self, id: usize) {
        assert!(
            id < self.n,
            "participant id {id} out of range for {} participants",
            self.n
        );
    }

    /// One arrival (real or eviction stand-in) against shard `k`'s
    /// count-down word. The member that completes the shard re-arms the
    /// counter and signs the shard in at the top level — *without
    /// blocking*, preserving the fuzzy split for the leader too.
    fn shard_arrival(&self, k: usize) {
        let shard = &self.shards[k];
        if shard.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Re-arm BEFORE the sign-in: the sign-in can transitively
            // complete the top level and release this shard's waiters,
            // which may immediately re-arrive and must find a full
            // counter. The expectation is re-read because members may
            // have been evicted meanwhile.
            let expected = shard.expected.load(Ordering::Acquire);
            shard.count.store(expected, Ordering::Release);
            let goal = shard.arrived.fetch_add(1, Ordering::AcqRel) + 1;
            self.top_sign_in(k, goal);
        }
    }

    /// Signs shard `k` in for episode `goal` at the top level.
    fn top_sign_in(&self, k: usize, goal: u64) {
        match &self.top {
            Top::Tree {
                nodes,
                leaf_of_shard,
            } => self.top_signal_node(nodes, leaf_of_shard[k]),
            Top::Dissemination { flags, .. } => {
                if self.rounds == 0 {
                    // One shard: its completion is the global episode.
                    if self.episode.fetch_max(goal, Ordering::AcqRel) < goal {
                        self.stats.record_episode();
                    }
                } else {
                    // Round-0 signal to the distance-1 neighbour; relay
                    // rounds are driven by the shard's waiters (see
                    // `try_top_rounds`). fetch_max keeps the flag
                    // monotone under racing drivers.
                    let m = self.shards.len();
                    flags[(k + 1) % m].fetch_max(goal, Ordering::AcqRel);
                }
            }
        }
    }

    /// Propagates one sign-in up the combining tree; the root publishes
    /// the completed episode.
    fn top_signal_node(&self, nodes: &[CachePadded<TopNode<S>>], index: usize) {
        let node = &nodes[index];
        if node.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            node.count
                .store(node.expected.load(Ordering::Acquire), Ordering::Release);
            match node.parent {
                Some(parent) => self.top_signal_node(nodes, parent),
                None => {
                    self.episode.fetch_add(1, Ordering::Release);
                    self.stats.record_episode();
                }
            }
        }
    }

    /// The wait predicate: is episode `goal` (1-based) complete from
    /// shard `k`'s point of view? The shard epoch word is the fast path;
    /// the first waiter to observe top-level completion broadcasts it
    /// there so the rest of the shard stops touching global state.
    fn episode_done(&self, k: usize, goal: u64) -> bool {
        let shard = &self.shards[k];
        if shard.epoch.load(Ordering::Acquire) >= goal {
            return true;
        }
        let done = match &self.top {
            Top::Tree { .. } => self.episode.load(Ordering::Acquire) >= goal,
            Top::Dissemination { flags, progress } => self.try_top_rounds(flags, progress, k, goal),
        };
        if done {
            shard.epoch.fetch_max(goal, Ordering::AcqRel);
        }
        done
    }

    /// Drives shard `j`'s leader rounds as far as the received signals
    /// allow, up to `goal * rounds`, and returns the progress value
    /// reached. Any waiter may drive any shard: every update is a
    /// monotone `fetch_max`, so racing drivers are safe.
    fn drive_shard(
        &self,
        flags: &[CachePadded<S::AtomicU64>],
        progress: &[CachePadded<S::AtomicU64>],
        j: usize,
        goal: u64,
    ) -> u64 {
        let m = self.shards.len();
        let rounds = u64::from(self.rounds);
        loop {
            let done = progress[j].load(Ordering::Acquire);
            if done >= goal * rounds {
                return done;
            }
            let g = done / rounds + 1;
            let r = (done % rounds) as u32;
            // A shard's leader rounds for episode `g` must not start
            // until the shard itself has fully arrived for `g`: incoming
            // flags alone prove the *other* shards arrived, and relaying
            // them early could release this shard's waiters before its
            // own stragglers arrive — a fuzzy violation.
            if self.shards[j].arrived.load(Ordering::Acquire) < g {
                return done;
            }
            if !self.top_flag_ready(flags, j, r, g) {
                return done;
            }
            if r + 1 < self.rounds {
                let to = (j + (1usize << (r + 1))) % m;
                flags[(r as usize + 1) * m + to].fetch_max(g, Ordering::AcqRel);
            }
            progress[j].fetch_max(done + 1, Ordering::AcqRel);
            if done + 1 == g * rounds {
                // Last round: shard j has now heard (transitively) from
                // every shard for `g`. Record the episode exactly once
                // across shards.
                if self.episode.fetch_max(g, Ordering::AcqRel) < g {
                    self.stats.record_episode();
                }
            }
        }
    }

    /// Returns true once shard `k` has completed all leader rounds for
    /// `goal`. If `k` is stuck on a missing relay, the caller helps along:
    /// it sweeps the *other* shards' pending rounds (whose own waiters may
    /// simply not be polling right now) until either `k` completes or a
    /// full sweep makes no progress anywhere — so a single probing waiter
    /// can always discover a globally complete episode by itself.
    fn try_top_rounds(
        &self,
        flags: &[CachePadded<S::AtomicU64>],
        progress: &[CachePadded<S::AtomicU64>],
        k: usize,
        goal: u64,
    ) -> bool {
        if self.rounds == 0 {
            return self.shards[k].arrived.load(Ordering::Acquire) >= goal;
        }
        let target = goal * u64::from(self.rounds);
        loop {
            if self.drive_shard(flags, progress, k, goal) >= target {
                return true;
            }
            let mut advanced = false;
            for j in (0..self.shards.len()).filter(|&j| j != k) {
                let before = progress[j].load(Ordering::Relaxed);
                advanced |= self.drive_shard(flags, progress, j, goal) > before;
            }
            if !advanced {
                return false;
            }
        }
    }

    /// Has shard `k` received (or been excused from) its round-`round`
    /// signal for episode `goal`?
    fn top_flag_ready(
        &self,
        flags: &[CachePadded<S::AtomicU64>],
        k: usize,
        round: u32,
        goal: u64,
    ) -> bool {
        let m = self.shards.len();
        if flags[round as usize * m + k].load(Ordering::Acquire) >= goal {
            return true;
        }
        let source = (k + m - (1usize << round)) % m;
        self.top_ghost_sent(flags, source, round, goal)
    }

    /// Would dead shard `s` (no live members left) have sent its
    /// round-`round` signal for `goal`? Always false for live shards. A
    /// dead shard's sign-in is vacuous, so only its *incoming* earlier
    /// rounds gate the answer; the recursion strictly decreases the round
    /// and terminates.
    fn top_ghost_sent(
        &self,
        flags: &[CachePadded<S::AtomicU64>],
        s: usize,
        round: u32,
        goal: u64,
    ) -> bool {
        if self.shards[s].expected.load(Ordering::Acquire) != 0 {
            return false;
        }
        (0..round).all(|r| self.top_flag_ready(flags, s, r, goal))
    }

    /// Shrinks the top tree when shard `k` dies: walk up from its leaf,
    /// removing the shard's contribution; the first node with other live
    /// contributors gets one stand-in signal for the in-flight episode.
    fn top_retire_shard(&self, nodes: &[CachePadded<TopNode<S>>], leaf: usize) {
        let mut index = leaf;
        loop {
            let node = &nodes[index];
            let prev = node.expected.fetch_sub(1, Ordering::AcqRel);
            if prev > 1 {
                self.top_signal_node(nodes, index);
                return;
            }
            match node.parent {
                Some(parent) => index = parent,
                // The EmptyGroup guard keeps at least one participant —
                // and therefore one live shard whose path joins ours at
                // or below the root — so the walk always stops early.
                None => unreachable!("retiring the last live shard"),
            }
        }
    }

    /// The poison-aware bounded wait all wait flavors funnel through.
    fn wait_core(
        &self,
        token: &ArrivalToken,
        deadline: Deadline,
        policy: StallPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        let policy = self.stats.resolve_policy(policy);
        let k = self.shard_of(token.id);
        let goal = token.episode + 1;
        let result = failure::guarded_wait::<S>(
            policy,
            deadline,
            token.episode,
            || self.episode_done(k, goal),
            || self.poisoned.load(Ordering::Acquire) != 0,
        );
        match result {
            Ok(outcome) => {
                self.stats.record_wait(token.id, &outcome);
                Ok(outcome)
            }
            Err(fault) => {
                if matches!(fault.error, BarrierError::Timeout { .. }) {
                    self.stats.record_timeout(token.id, &fault.report);
                }
                Err(fault.error)
            }
        }
    }
}

impl<S: SyncOps> SplitBarrier for HierBarrier<S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        self.check_id(id);
        let episode = self.local_episode[id].fetch_add(1, Ordering::Relaxed);
        self.stats.record_arrival(id);
        self.shard_arrival(self.shard_of(id));
        ArrivalToken::new(id, episode)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        // Like the dissemination backend's `is_complete`, this may drive
        // the caller's shard through its pending leader rounds.
        self.episode_done(self.shard_of(token.id), token.episode + 1)
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        match self.wait_core(&token, Deadline::never(), self.policy) {
            Ok(outcome) => outcome,
            Err(e) => panic!("HierBarrier::wait failed: {e} (use wait_deadline to recover)"),
        }
    }

    fn wait_deadline(
        &self,
        token: ArrivalToken,
        deadline: Deadline,
    ) -> Result<WaitOutcome, BarrierError> {
        self.wait_core(&token, deadline, self.policy)
    }

    fn wait_with(
        &self,
        token: ArrivalToken,
        policy: &WaitPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        let backoff = policy.backoff.unwrap_or(self.policy);
        let result = self.wait_core(&token, policy.arm(), backoff);
        if matches!(result, Err(BarrierError::Timeout { .. }))
            && policy.on_timeout == OnTimeout::Poison
        {
            self.poison();
        }
        result
    }

    fn poison(&self) {
        if self.poisoned.fetch_max(1, Ordering::AcqRel) == 0 {
            self.stats.record_poisoning();
        }
    }

    fn clear_poison(&self) {
        self.poisoned.store(0, Ordering::Release);
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire) != 0
    }

    fn evict(&self, id: usize) -> Result<(), BarrierError> {
        if id >= self.n {
            return Err(BarrierError::InvalidParticipant {
                id,
                capacity: self.n,
            });
        }
        // A dead id stays dead regardless of how many live remain, so the
        // already-evicted check comes first; the RMW below re-checks it
        // when claiming.
        if self.evicted[id].load(Ordering::Acquire) != 0 {
            return Err(BarrierError::NotAParticipant { id });
        }
        if self.live.load(Ordering::Acquire) <= 1 {
            return Err(BarrierError::EmptyGroup);
        }
        if self.evicted[id].fetch_max(1, Ordering::AcqRel) != 0 {
            return Err(BarrierError::NotAParticipant { id });
        }
        self.live.fetch_sub(1, Ordering::AcqRel);
        self.stats.record_eviction();
        let k = self.shard_of(id);
        // Shrink the shard's expectation BEFORE the stand-in arrival so
        // the shard's re-armer picks up the shrunk value (same discipline
        // as the flat backends). The evicted participant must not have
        // arrived for the in-flight episode — the stand-in below is that
        // arrival.
        let prev = self.shards[k].expected.fetch_sub(1, Ordering::AcqRel);
        if prev == 1 {
            // Last live member: the shard dies. Its pending top-level
            // sign-in is covered structurally — the dissemination top's
            // ghost closure reads `expected == 0`, the tree top shrinks
            // the dead shard out of the combining tree with one stand-in
            // signal for the in-flight episode. (A shard with waiters
            // always has `expected >= 1`: waiters are live members.)
            if let Top::Tree {
                nodes,
                leaf_of_shard,
            } = &self.top
            {
                self.top_retire_shard(nodes, leaf_of_shard[k]);
            }
        } else {
            self.shard_arrival(k);
        }
        Ok(())
    }

    fn participants(&self) -> usize {
        self.n
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        self.stats.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Every (n, shard_size) shape used by the sweeps below, including
    /// non-power-of-two N and both degenerate shard sizes.
    const SHAPES: &[(usize, usize)] = &[
        (1, 1),
        (2, 1),
        (2, 2),
        (3, 1),
        (3, 2),
        (3, 3),
        (4, 2),
        (5, 2),
        (5, 5),
        (6, 4),
        (7, 1),
        (7, 3),
        (7, 7),
        (9, 4),
        (13, 4),
    ];

    const TOPS: &[TopLevel] = &[TopLevel::Dissemination, TopLevel::Tree];

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_panics() {
        let _ = HierBarrier::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_shard_size_panics() {
        let _ = HierBarrier::with_shards(4, 0, TopLevel::Dissemination, StallPolicy::default());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        let b = HierBarrier::new(2);
        let _ = b.arrive(2);
    }

    #[test]
    fn default_configuration_is_adaptive_dissemination() {
        let b = HierBarrier::new(20);
        assert!(matches!(b.policy(), StallPolicy::Adaptive { .. }));
        assert_eq!(b.top_level(), TopLevel::Dissemination);
        assert_eq!(b.shard_size(), HierBarrier::DEFAULT_SHARD_SIZE);
        assert_eq!(b.shard_count(), 3);
    }

    #[test]
    fn shard_shapes_and_clamping() {
        let b: HierBarrier =
            HierBarrier::with_shards(5, 100, TopLevel::Dissemination, StallPolicy::default());
        assert_eq!(b.shard_size(), 5, "shard size clamps to n");
        assert_eq!(b.shard_count(), 1);
        let b: HierBarrier = HierBarrier::with_shards(7, 1, TopLevel::Tree, StallPolicy::default());
        assert_eq!(b.shard_count(), 7, "size 1 degenerates to pure top level");
    }

    #[test]
    fn episodes_advance_in_order_for_all_shapes() {
        for &top in TOPS {
            for &(n, shard) in SHAPES {
                let b = HierBarrier::with_shards(n, shard, top, StallPolicy::default());
                // Single-threaded full rotation: everyone arrives, then
                // everyone waits (the fuzzy split — no arrive may block).
                for e in 0..5u64 {
                    let tokens: Vec<_> = (0..n).map(|id| b.arrive(id)).collect();
                    for t in tokens {
                        assert_eq!(t.episode(), e, "{top:?} n={n} shard={shard}");
                        assert!(b.is_complete(&t));
                        let o = b.wait(t);
                        assert!(!o.stalled);
                    }
                }
                let s = b.stats();
                assert_eq!(s.episodes, 5, "{top:?} n={n} shard={shard}");
                assert_eq!(s.arrivals, 5 * n as u64);
                assert_eq!(s.waits, 5 * n as u64);
            }
        }
    }

    #[test]
    fn many_threads_many_shapes() {
        let episodes = 60u64;
        for &top in TOPS {
            for &(n, shard) in &[(3usize, 2usize), (4, 2), (5, 2), (7, 3), (9, 4), (13, 4)] {
                let b = Arc::new(HierBarrier::with_shards(
                    n,
                    shard,
                    top,
                    StallPolicy::yielding(),
                ));
                std::thread::scope(|s| {
                    for id in 0..n {
                        let b = Arc::clone(&b);
                        s.spawn(move || {
                            for e in 0..episodes {
                                let t = b.arrive(id);
                                let o = b.wait(t);
                                assert_eq!(o.episode, e, "{top:?} n={n} shard={shard}");
                            }
                        });
                    }
                });
                let s = b.stats();
                assert_eq!(s.episodes, episodes, "{top:?} n={n} shard={shard}");
                assert_eq!(s.arrivals, episodes * n as u64);
                assert_eq!(s.waits, episodes * n as u64);
            }
        }
    }

    #[test]
    fn adaptive_policy_end_to_end() {
        // The default (adaptive) configuration, multi-threaded: budgets
        // resolve per wait from live history without disturbing counts.
        let n = 6;
        let b = Arc::new(HierBarrier::with_shards(
            n,
            2,
            TopLevel::Dissemination,
            StallPolicy::adaptive(),
        ));
        std::thread::scope(|s| {
            for id in 0..n {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for e in 0..100u64 {
                        let t = b.arrive(id);
                        assert_eq!(b.wait(t).episode, e);
                    }
                });
            }
        });
        let t = b.telemetry();
        assert_eq!(t.base.episodes, 100);
        assert_eq!(t.adaptive.observations, 100 * n as u64);
    }

    #[test]
    fn barrier_actually_separates_phases() {
        use std::sync::atomic::AtomicU64;
        for &top in TOPS {
            let n = 5;
            let cells: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
            let b = Arc::new(HierBarrier::with_shards(n, 2, top, StallPolicy::yielding()));
            std::thread::scope(|s| {
                for id in 0..n {
                    let b = Arc::clone(&b);
                    let cells = Arc::clone(&cells);
                    s.spawn(move || {
                        for phase in 1..=200u64 {
                            cells[id].store(phase, Ordering::Release);
                            let t = b.arrive(id);
                            b.wait(t);
                            // Cross-shard read: id 0 (shard 0) checks id
                            // n-1 (last shard) and vice versa.
                            let neighbour = cells[(id + 1) % n].load(Ordering::Acquire);
                            assert!(
                                neighbour >= phase,
                                "{top:?}: participant {id} saw stale phase {neighbour} < {phase}"
                            );
                            let t = b.arrive(id);
                            b.wait(t);
                        }
                    });
                }
            });
        }
    }

    #[test]
    fn stall_detection_sees_late_arriver() {
        // Participants in *different* shards: the early one must stall
        // until the late shard signs in through the top level.
        let b = Arc::new(HierBarrier::with_shards(
            2,
            1,
            TopLevel::Dissemination,
            StallPolicy::yielding(),
        ));
        std::thread::scope(|s| {
            let early = Arc::clone(&b);
            s.spawn(move || {
                let t = early.arrive(0);
                let o = early.wait(t);
                assert_eq!(o.episode, 0);
            });
            let late = Arc::clone(&b);
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                let t = late.arrive(1);
                let o = late.wait(t);
                assert!(!o.stalled, "the last arriver completes the episode");
            });
        });
        assert!(
            b.stats().stalls >= 1,
            "the early thread should have stalled"
        );
    }

    #[test]
    fn stalled_participant_times_out_then_eviction_recovers() {
        for &top in TOPS {
            let n = 5;
            let b = Arc::new(HierBarrier::with_shards(n, 2, top, StallPolicy::yielding()));
            std::thread::scope(|s| {
                for id in 0..4 {
                    let b = Arc::clone(&b);
                    s.spawn(move || {
                        let t = b.arrive(id);
                        let err = b
                            .wait_deadline(t, Deadline::after(std::time::Duration::from_millis(30)))
                            .unwrap_err();
                        assert_eq!(err, BarrierError::Timeout { episode: 0 }, "{top:?}");
                    });
                }
            });
            // Participant 4 is the sole member of the last shard: evicting
            // it kills that shard entirely, exercising ghost sign-ins
            // (dissemination) / tree shrinking (tree).
            b.evict(4).unwrap();
            assert_eq!(b.remaining_participants(), 4);
            std::thread::scope(|s| {
                for id in 0..4 {
                    let b = Arc::clone(&b);
                    s.spawn(move || {
                        let t = b.arrive(id);
                        let o = b.wait(t);
                        assert_eq!(o.episode, 1, "{top:?}");
                    });
                }
            });
            let stats = b.stats();
            assert_eq!(stats.timeouts, 4, "{top:?}");
            assert_eq!(stats.evictions, 1);
            assert_eq!(stats.episodes, 2);
        }
    }

    #[test]
    fn whole_shard_eviction_mid_group() {
        // Kill an *interior* shard ({2,3} of shards {0,1},{2,3},{4}) while
        // nobody has arrived, then run episodes over the survivors.
        for &top in TOPS {
            let b = Arc::new(HierBarrier::with_shards(5, 2, top, StallPolicy::yielding()));
            b.evict(2).unwrap();
            b.evict(3).unwrap();
            assert_eq!(b.remaining_participants(), 3);
            std::thread::scope(|s| {
                for id in [0usize, 1, 4] {
                    let b = Arc::clone(&b);
                    s.spawn(move || {
                        for e in 0..30u64 {
                            let t = b.arrive(id);
                            assert_eq!(b.wait(t).episode, e, "{top:?}");
                        }
                    });
                }
            });
            assert_eq!(b.stats().episodes, 30, "{top:?}");
        }
    }

    #[test]
    fn eviction_completes_in_flight_episode() {
        for &top in TOPS {
            let b: HierBarrier = HierBarrier::with_shards(3, 2, top, StallPolicy::yielding());
            // Shard {0,1}: 0 arrives; shard {2}: 2 arrives. Evicting 1
            // supplies the missing arrival and completes episode 0.
            let t0 = b.arrive(0);
            let t2 = b.arrive(2);
            assert!(!b.is_complete(&t0), "{top:?}");
            b.evict(1).unwrap();
            assert_eq!(b.wait(t0).episode, 0, "{top:?}");
            assert_eq!(b.wait(t2).episode, 0, "{top:?}");
            assert_eq!(b.stats().episodes, 1);
        }
    }

    #[test]
    fn evict_guards_reject_bad_ids() {
        let b = HierBarrier::new(2);
        assert_eq!(
            b.evict(5).unwrap_err(),
            BarrierError::InvalidParticipant { id: 5, capacity: 2 }
        );
        b.evict(1).unwrap();
        assert_eq!(
            b.evict(1).unwrap_err(),
            BarrierError::NotAParticipant { id: 1 }
        );
        assert_eq!(b.evict(0).unwrap_err(), BarrierError::EmptyGroup);
        // The survivor still synchronizes: its arrival joins the
        // evictee's stand-in arrival to complete episode 0.
        let t = b.arrive(0);
        assert_eq!(b.wait(t).episode, 0);
    }

    #[test]
    fn poison_releases_unbounded_deadline_waiters() {
        let b = Arc::new(HierBarrier::with_shards(
            2,
            1,
            TopLevel::Tree,
            StallPolicy::yielding(),
        ));
        std::thread::scope(|s| {
            let b0 = Arc::clone(&b);
            s.spawn(move || {
                let t = b0.arrive(0);
                let err = b0.wait_deadline(t, Deadline::never()).unwrap_err();
                assert_eq!(err, BarrierError::Poisoned { episode: 0 });
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            b.poison();
        });
        assert!(b.is_poisoned());
        assert_eq!(b.stats().poisonings, 1);
        b.clear_poison();
        assert!(!b.is_poisoned());
        b.evict(1).unwrap();
        let t = b.arrive(0);
        assert_eq!(b.wait(t).episode, 1);
    }

    #[test]
    #[should_panic(expected = "use wait_deadline to recover")]
    fn plain_wait_panics_on_poison() {
        let b = HierBarrier::new(2);
        let t = b.arrive(0);
        b.poison();
        let _ = b.wait(t);
    }

    #[test]
    fn abort_consumes_token_and_poisons() {
        let b = HierBarrier::new(2);
        let t = b.arrive(0);
        b.abort(t);
        assert!(b.is_poisoned());
    }

    #[test]
    fn completion_wins_over_poison() {
        let b = HierBarrier::new(1);
        let t = b.arrive(0);
        b.poison();
        let o = b
            .wait_deadline(t, Deadline::never())
            .expect("completed episode must win over poison");
        assert_eq!(o.episode, 0);
    }

    #[test]
    fn wait_with_poison_on_timeout_releases_peers() {
        let b = Arc::new(HierBarrier::with_shards(
            3,
            2,
            TopLevel::Dissemination,
            StallPolicy::yielding(),
        ));
        std::thread::scope(|s| {
            let b0 = Arc::clone(&b);
            s.spawn(move || {
                let t = b0.arrive(0);
                let policy = WaitPolicy::new()
                    .deadline(std::time::Duration::from_millis(20))
                    .on_timeout(OnTimeout::Poison);
                let err = b0.wait_with(t, &policy).unwrap_err();
                assert_eq!(err, BarrierError::Timeout { episode: 0 });
            });
            let b1 = Arc::clone(&b);
            s.spawn(move || {
                let t = b1.arrive(2);
                let err = b1.wait_deadline(t, Deadline::never()).unwrap_err();
                assert_eq!(err, BarrierError::Poisoned { episode: 0 });
            });
        });
        assert!(b.is_poisoned());
    }

    #[test]
    fn telemetry_per_participant_attribution() {
        let n = 4;
        let b = Arc::new(HierBarrier::with_shards(
            n,
            2,
            TopLevel::Dissemination,
            StallPolicy::yielding(),
        ));
        std::thread::scope(|s| {
            for id in 0..n {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for _ in 0..20u64 {
                        let t = b.arrive(id);
                        b.wait(t);
                    }
                });
            }
        });
        let t = b.telemetry();
        assert_eq!(t.per_participant.len(), n);
        let per: u64 = t.per_participant.iter().map(|p| p.arrivals).sum();
        assert_eq!(per, 20 * n as u64);
        assert_eq!(t.base, b.stats());
    }
}
