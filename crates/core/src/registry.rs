//! A registry of logical barriers for dynamically created streams.
//!
//! Sec. 5 of the paper: *"Barriers are allocated when the streams are
//! created. The creation of the first stream does not require allocation of
//! a barrier … Subsequently, creation of every stream requires allocation
//! of at most one barrier which may be used by the newly created stream to
//! synchronize with its parent. Thus, in a N processor system which allows
//! creation of at most N streams, a maximum of N−1 barriers is needed."*
//!
//! [`GroupRegistry`] enforces exactly that budget and hands out
//! tag-identified [`SubsetBarrier`]s.

use crate::centralized::CentralBarrier;
use crate::error::BarrierError;
use crate::group::SubsetBarrier;
use crate::mask::ProcMask;
use crate::spin::StallPolicy;
use crate::stats::TelemetrySnapshot;
use crate::sync::{RealSync, SyncOps};
use crate::tag::Tag;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Allocates and tracks logical barriers for up to `max_streams` streams.
///
/// At most `max_streams − 1` barriers may be live at once. Barriers are
/// identified by [`Tag`]; looking one up with the wrong tag fails, which is
/// how the library surfaces the paper's Fig. 6 bug (processor P₃ reaching
/// barrier B₁ must not synchronize with P₁ waiting at B₂).
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::{GroupRegistry, ProcMask};
///
/// let registry = GroupRegistry::new(4); // up to 4 streams, 3 barriers
/// let (tag, barrier) = registry.allocate([0, 1].into_iter().collect())?;
/// assert_eq!(barrier.tag(), tag);
/// assert_eq!(registry.live_barriers(), 1);
/// registry.release(tag)?;
/// # Ok::<(), fuzzy_barrier::BarrierError>(())
/// ```
#[derive(Debug)]
pub struct GroupRegistry<S: SyncOps = RealSync> {
    max_streams: usize,
    policy: StallPolicy,
    inner: Mutex<Inner<S>>,
}

/// A registry-managed barrier: a tagged subset view over the centralized
/// backend, shared between the registry and its users.
pub type RegistryBarrier<S> = Arc<SubsetBarrier<CentralBarrier<S>>>;

#[derive(Debug)]
struct Inner<S: SyncOps> {
    barriers: HashMap<Tag, RegistryBarrier<S>>,
    next_tag: Tag,
}

impl GroupRegistry {
    /// Creates a registry for a system with at most `max_streams` streams.
    ///
    /// # Panics
    ///
    /// Panics if `max_streams < 2` (a single stream never synchronizes, so
    /// a registry would be pointless — the paper's "creation of the first
    /// stream does not require allocation of a barrier").
    #[must_use]
    pub fn new(max_streams: usize) -> Self {
        Self::with_policy(max_streams, StallPolicy::default())
    }

    /// Creates a registry whose barriers use `policy` when stalling.
    ///
    /// # Panics
    ///
    /// Panics if `max_streams < 2`.
    #[must_use]
    pub fn with_policy(max_streams: usize, policy: StallPolicy) -> Self {
        Self::with_policy_in(max_streams, policy)
    }
}

impl<S: SyncOps> GroupRegistry<S> {
    /// Creates a registry in an explicit [`SyncOps`] domain — `RealSync`
    /// in production, instrumented shadow state under the `fuzzy-check`
    /// model checker.
    ///
    /// # Panics
    ///
    /// Panics if `max_streams < 2`.
    #[must_use]
    pub fn with_policy_in(max_streams: usize, policy: StallPolicy) -> Self {
        assert!(
            max_streams >= 2,
            "a registry needs at least two streams to ever synchronize"
        );
        GroupRegistry {
            max_streams,
            policy,
            inner: Mutex::new(Inner {
                barriers: HashMap::new(),
                next_tag: Tag::new(1).expect("1 is non-zero"),
            }),
        }
    }

    /// Maximum number of simultaneously live barriers: `max_streams − 1`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.max_streams - 1
    }

    /// Number of currently live barriers.
    #[must_use]
    pub fn live_barriers(&self) -> usize {
        self.inner.lock().expect("registry lock").barriers.len()
    }

    /// Allocates a fresh barrier over `mask`, assigning it the next free
    /// tag.
    ///
    /// # Errors
    ///
    /// * [`BarrierError::RegistryFull`] if `max_streams − 1` barriers are
    ///   already live.
    /// * [`BarrierError::EmptyGroup`] if `mask` is empty.
    pub fn allocate(&self, mask: ProcMask) -> Result<(Tag, RegistryBarrier<S>), BarrierError> {
        let mut inner = self.inner.lock().expect("registry lock");
        if inner.barriers.len() >= self.capacity() {
            Self::sweep_orphans_locked(&mut inner);
        }
        if inner.barriers.len() >= self.capacity() {
            return Err(BarrierError::RegistryFull {
                capacity: self.capacity(),
            });
        }
        // Find the next unused tag (tags of released barriers are reusable,
        // mirroring the paper's "streams that need to synchronize repeatedly
        // can reuse the barrier shared by them").
        let mut tag = inner.next_tag;
        while inner.barriers.contains_key(&tag) {
            tag = tag.next();
        }
        let barrier = Arc::new(SubsetBarrier::with_policy_in(tag, mask, self.policy)?);
        inner.barriers.insert(tag, Arc::clone(&barrier));
        inner.next_tag = tag.next();
        Ok((tag, barrier))
    }

    /// Capacity-aware admission: like [`Self::allocate`], but on
    /// [`BarrierError::RegistryFull`] backs off and retries up to
    /// `retries` times with exponential backoff (`base`, doubling per
    /// attempt), giving concurrently departing streams time to release or
    /// orphan their slots. Each retry re-sweeps orphans via the allocation
    /// path.
    ///
    /// This is the admission side of dynamic membership: a recovered
    /// worker re-joining a fully subscribed system waits for churn instead
    /// of failing fast.
    ///
    /// # Errors
    ///
    /// As [`Self::allocate`]; [`BarrierError::RegistryFull`] only after
    /// every retry is exhausted.
    pub fn allocate_with_backoff(
        &self,
        mask: ProcMask,
        retries: u32,
        base: std::time::Duration,
    ) -> Result<(Tag, RegistryBarrier<S>), BarrierError> {
        let mut attempt = 0;
        loop {
            match self.allocate(mask) {
                Err(BarrierError::RegistryFull { .. }) if attempt < retries => {
                    std::thread::sleep(base.saturating_mul(1 << attempt.min(16)));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Allocates a barrier with a caller-chosen tag.
    ///
    /// # Errors
    ///
    /// Like [`Self::allocate`], plus [`BarrierError::DuplicateTag`] if the
    /// tag is already live.
    pub fn allocate_tagged(
        &self,
        tag: Tag,
        mask: ProcMask,
    ) -> Result<RegistryBarrier<S>, BarrierError> {
        let mut inner = self.inner.lock().expect("registry lock");
        if inner.barriers.len() >= self.capacity() {
            Self::sweep_orphans_locked(&mut inner);
        }
        if inner.barriers.len() >= self.capacity() {
            return Err(BarrierError::RegistryFull {
                capacity: self.capacity(),
            });
        }
        if inner.barriers.contains_key(&tag) {
            return Err(BarrierError::DuplicateTag { tag });
        }
        let barrier = Arc::new(SubsetBarrier::with_policy_in(tag, mask, self.policy)?);
        inner.barriers.insert(tag, Arc::clone(&barrier));
        Ok(barrier)
    }

    /// Looks up the live barrier with `tag`.
    ///
    /// # Errors
    ///
    /// Returns [`BarrierError::UnknownTag`] if no such barrier is live.
    pub fn lookup(&self, tag: Tag) -> Result<RegistryBarrier<S>, BarrierError> {
        self.inner
            .lock()
            .expect("registry lock")
            .barriers
            .get(&tag)
            .cloned()
            .ok_or(BarrierError::UnknownTag { tag })
    }

    /// Aggregates telemetry across all currently live barriers: flat
    /// counters and spread totals are summed, histograms are merged.
    /// Per-participant counters are dropped (ranks of different masks do
    /// not line up), and the per-barrier breakdown is returned alongside,
    /// keyed by tag and sorted for deterministic reporting.
    #[must_use]
    pub fn aggregate_telemetry(&self) -> (TelemetrySnapshot, Vec<(Tag, TelemetrySnapshot)>) {
        let per_barrier: Vec<(Tag, TelemetrySnapshot)> = {
            let inner = self.inner.lock().expect("registry lock");
            let mut v: Vec<_> = inner
                .barriers
                .iter()
                .map(|(tag, b)| (*tag, b.telemetry()))
                .collect();
            v.sort_by_key(|(tag, _)| *tag);
            v
        };
        let mut total = TelemetrySnapshot::default();
        for (_, t) in &per_barrier {
            total.base.episodes += t.base.episodes;
            total.base.arrivals += t.base.arrivals;
            total.base.waits += t.base.waits;
            total.base.stalls += t.base.stalls;
            total.base.deschedules += t.base.deschedules;
            total.base.stall_time += t.base.stall_time;
            total.base.probes += t.base.probes;
            total.base.timeouts += t.base.timeouts;
            total.base.evictions += t.base.evictions;
            total.base.poisonings += t.base.poisonings;
            total.stall_hist.merge(&t.stall_hist);
            total.spread.episodes += t.spread.episodes;
            total.spread.total += t.spread.total;
            total.spread.max = total.spread.max.max(t.spread.max);
            total.spread.last = t.spread.last;
        }
        (total, per_barrier)
    }

    /// Drops orphaned barriers — entries whose only remaining handle is
    /// the registry's own — and returns how many were reclaimed.
    ///
    /// A stream that arrives, drops its [`ArrivalToken`](crate::token::ArrivalToken)
    /// and then its barrier handle without ever calling [`Self::release`]
    /// would otherwise pin a slot forever, starving the paper's *N − 1*
    /// budget. [`Self::allocate`] and [`Self::allocate_tagged`] sweep
    /// automatically before reporting [`BarrierError::RegistryFull`], so
    /// leaked tags can never wedge allocation; call this directly to
    /// reclaim eagerly.
    pub fn sweep_orphans(&self) -> usize {
        let mut inner = self.inner.lock().expect("registry lock");
        Self::sweep_orphans_locked(&mut inner)
    }

    fn sweep_orphans_locked(inner: &mut Inner<S>) -> usize {
        let before = inner.barriers.len();
        inner.barriers.retain(|_, b| Arc::strong_count(b) > 1);
        before - inner.barriers.len()
    }

    /// Releases the barrier with `tag`, freeing its registry slot.
    /// Existing `Arc` handles remain usable; only the slot is reclaimed.
    ///
    /// # Errors
    ///
    /// Returns [`BarrierError::UnknownTag`] if no such barrier is live.
    pub fn release(&self, tag: Tag) -> Result<(), BarrierError> {
        self.inner
            .lock()
            .expect("registry lock")
            .barriers
            .remove(&tag)
            .map(|_| ())
            .ok_or(BarrierError::UnknownTag { tag })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least two streams")]
    fn single_stream_registry_panics() {
        let _ = GroupRegistry::new(1);
    }

    #[test]
    fn capacity_is_n_minus_one() {
        assert_eq!(GroupRegistry::new(4).capacity(), 3);
        assert_eq!(GroupRegistry::new(2).capacity(), 1);
    }

    #[test]
    fn allocation_exhausts_at_capacity() {
        let r = GroupRegistry::new(3);
        let m = ProcMask::first_n(2);
        // Hold the handles: only *live* barriers exhaust the budget
        // (orphaned ones are swept on demand; see below).
        let (_t1, _b1) = r.allocate(m).unwrap();
        let (_t2, _b2) = r.allocate(m).unwrap();
        assert_eq!(
            r.allocate(m).unwrap_err(),
            BarrierError::RegistryFull { capacity: 2 }
        );
    }

    #[test]
    fn release_frees_slot_and_tag_reuse_works() {
        let r = GroupRegistry::new(2);
        let m = ProcMask::first_n(2);
        let (tag, _b) = r.allocate(m).unwrap();
        assert!(r.allocate(m).is_err());
        r.release(tag).unwrap();
        assert_eq!(r.live_barriers(), 0);
        let (_tag2, _b2) = r.allocate(m).unwrap();
        assert_eq!(r.live_barriers(), 1);
    }

    #[test]
    fn tags_are_unique_among_live_barriers() {
        let r = GroupRegistry::new(8);
        let m = ProcMask::first_n(2);
        let mut tags = std::collections::HashSet::new();
        for _ in 0..7 {
            let (tag, _) = r.allocate(m).unwrap();
            assert!(tags.insert(tag), "duplicate live tag {tag}");
        }
    }

    #[test]
    fn explicit_tag_allocation_and_duplicate_rejection() {
        let r = GroupRegistry::new(4);
        let tag = Tag::new(17).unwrap();
        let m = ProcMask::first_n(2);
        r.allocate_tagged(tag, m).unwrap();
        assert_eq!(
            r.allocate_tagged(tag, m).unwrap_err(),
            BarrierError::DuplicateTag { tag }
        );
        assert_eq!(r.lookup(tag).unwrap().tag(), tag);
    }

    #[test]
    fn dropped_handle_without_release_does_not_leak_slot() {
        // Regression: a stream that arrives, drops the token without
        // waiting, and then drops its handle must not pin the slot under
        // the N−1 budget forever.
        let r = GroupRegistry::new(2); // capacity 1
        let m = ProcMask::first_n(2);
        let (_tag, barrier) = r.allocate(m).unwrap();
        let token = barrier.arrive(0, barrier.tag()).unwrap();
        drop(token);
        drop(barrier); // no release(tag): the slot is now orphaned
        assert_eq!(r.live_barriers(), 1);
        // Allocation sweeps the orphan instead of reporting RegistryFull.
        let (_tag2, _b2) = r.allocate(m).unwrap();
        assert_eq!(r.live_barriers(), 1);
    }

    #[test]
    fn sweep_spares_live_handles() {
        let r = GroupRegistry::new(3);
        let m = ProcMask::first_n(2);
        let (tag_live, _held) = r.allocate(m).unwrap();
        let (tag_leak, leaked) = r.allocate(m).unwrap();
        drop(leaked);
        assert_eq!(r.sweep_orphans(), 1);
        assert_eq!(r.live_barriers(), 1);
        assert!(r.lookup(tag_live).is_ok());
        assert_eq!(
            r.lookup(tag_leak).unwrap_err(),
            BarrierError::UnknownTag { tag: tag_leak }
        );
        assert_eq!(r.sweep_orphans(), 0);
    }

    #[test]
    fn sweep_at_zero_groups_is_a_noop() {
        let r = GroupRegistry::new(4);
        assert_eq!(r.sweep_orphans(), 0);
        assert_eq!(r.live_barriers(), 0);
        // And again: sweeping an already-empty registry stays a no-op.
        assert_eq!(r.sweep_orphans(), 0);
    }

    #[test]
    fn double_sweep_is_idempotent() {
        let r = GroupRegistry::new(4);
        let m = ProcMask::first_n(2);
        let (_tag, leaked) = r.allocate(m).unwrap();
        drop(leaked);
        assert_eq!(r.sweep_orphans(), 1);
        // The orphan is gone; a second sweep finds nothing new to reclaim
        // and must not disturb surviving entries.
        let (tag_live, _held) = r.allocate(m).unwrap();
        assert_eq!(r.sweep_orphans(), 0);
        assert_eq!(r.sweep_orphans(), 0);
        assert!(r.lookup(tag_live).is_ok());
    }

    #[test]
    fn sweep_racing_concurrent_joins_never_reclaims_live_handles() {
        use std::sync::atomic::{AtomicBool, Ordering};
        // Joiners continuously allocate-and-hold while a sweeper loops;
        // a sweep must only ever reclaim handles the joiners dropped.
        let r = std::sync::Arc::new(GroupRegistry::new(64));
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let r = std::sync::Arc::clone(&r);
                let stop = std::sync::Arc::clone(&stop);
                s.spawn(move || {
                    let m = ProcMask::first_n(2);
                    while !stop.load(Ordering::Acquire) {
                        let (tag, barrier) = r
                            .allocate_with_backoff(m, 8, std::time::Duration::from_micros(50))
                            .expect("backoff admission should eventually succeed");
                        // The held handle must survive any concurrent sweep.
                        assert_eq!(r.lookup(tag).unwrap().tag(), barrier.tag());
                        drop(barrier); // orphan it for the sweeper
                    }
                });
            }
            let sweeper = {
                let r = std::sync::Arc::clone(&r);
                let stop = std::sync::Arc::clone(&stop);
                s.spawn(move || {
                    let mut reclaimed = 0usize;
                    while !stop.load(Ordering::Acquire) {
                        reclaimed += r.sweep_orphans();
                        std::thread::yield_now();
                    }
                    reclaimed
                })
            };
            std::thread::sleep(std::time::Duration::from_millis(50));
            stop.store(true, Ordering::Release);
            let _ = sweeper;
        });
        // Whatever is left is orphaned; a final sweep drains it all.
        r.sweep_orphans();
        assert_eq!(r.live_barriers(), 0);
    }

    #[test]
    fn backoff_admission_waits_out_a_full_registry() {
        let r = std::sync::Arc::new(GroupRegistry::new(2)); // capacity 1
        let m = ProcMask::first_n(2);
        let (tag, _held) = r.allocate(m).unwrap();
        // Fail-fast path: zero retries surfaces RegistryFull immediately.
        assert_eq!(
            r.allocate_with_backoff(m, 0, std::time::Duration::from_micros(10))
                .unwrap_err(),
            BarrierError::RegistryFull { capacity: 1 }
        );
        std::thread::scope(|s| {
            let r2 = std::sync::Arc::clone(&r);
            let admitted = s.spawn(move || {
                r2.allocate_with_backoff(m, 12, std::time::Duration::from_micros(100))
            });
            std::thread::sleep(std::time::Duration::from_millis(5));
            r.release(tag).unwrap();
            let (tag2, _b2) = admitted
                .join()
                .unwrap()
                .expect("admission must succeed once the slot frees");
            assert!(r.lookup(tag2).is_ok());
        });
    }

    #[test]
    fn lookup_unknown_tag_fails() {
        let r = GroupRegistry::new(4);
        let tag = Tag::new(5).unwrap();
        assert_eq!(r.lookup(tag).unwrap_err(), BarrierError::UnknownTag { tag });
        assert_eq!(
            r.release(tag).unwrap_err(),
            BarrierError::UnknownTag { tag }
        );
    }
}
