//! Error types for barrier operations.

use crate::tag::Tag;
use std::error::Error;
use std::fmt;

/// Errors returned by fallible barrier operations.
///
/// Most of the split-phase protocol is infallible by construction (the type
/// system ties an [`crate::ArrivalToken`] to the episode it belongs to);
/// errors arise only at the edges the paper calls out — tag mismatches
/// between processors that try to synchronize at logically different
/// barriers (Sec. 5), invalid participants, and exhaustion of the *N − 1*
/// barrier budget of a registry.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BarrierError {
    /// A participant tried to synchronize at a barrier whose tag does not
    /// match the tag it holds. In the paper's hardware "two processors can
    /// only synchronize at a barrier if their tags match"; the software
    /// library surfaces the mismatch instead of silently mis-synchronizing.
    TagMismatch {
        /// The tag the participant presented.
        presented: Tag,
        /// The tag of the barrier it addressed.
        expected: Tag,
    },
    /// The participant id is not a member of the barrier's mask.
    NotAParticipant {
        /// The offending participant id.
        id: usize,
    },
    /// A participant id exceeds the capacity of the underlying mask or
    /// barrier (participant ids must be `< n`).
    InvalidParticipant {
        /// The offending participant id.
        id: usize,
        /// The number of participants the barrier was built for.
        capacity: usize,
    },
    /// The registry has already allocated its maximum of *N − 1* barriers
    /// (Sec. 5: "in a N processor system which allows creation of at most N
    /// streams, a maximum of N−1 barriers is needed").
    RegistryFull {
        /// The registry capacity that was exhausted.
        capacity: usize,
    },
    /// A barrier with this tag has already been allocated.
    DuplicateTag {
        /// The tag that was requested twice.
        tag: Tag,
    },
    /// No barrier with this tag exists in the registry.
    UnknownTag {
        /// The tag that was looked up.
        tag: Tag,
    },
    /// A barrier group was asked for zero participants.
    EmptyGroup,
    /// A bounded wait (see [`crate::failure::Deadline`]) expired before the
    /// episode completed. The arrival already counted; the caller may retry
    /// the wait with a fresh token-free probe, poison the barrier, or evict
    /// the straggler and re-synchronize.
    Timeout {
        /// The episode the waiter was stalled on.
        episode: u64,
    },
    /// The barrier was poisoned (a participant panicked or called `abort`)
    /// while the caller was waiting; the episode may never complete.
    Poisoned {
        /// The episode the waiter was stalled on.
        episode: u64,
    },
    /// The backend does not implement participant eviction.
    EvictionUnsupported,
    /// A reconfigurable group (see [`crate::reconfig::ReconfigBarrier`])
    /// has no free membership slot for a joiner. Slots free up when the
    /// departure of a leaver or evictee is applied at the next episode
    /// boundary, so callers may back off and retry.
    GroupFull {
        /// The fixed slot capacity of the group.
        capacity: usize,
    },
    /// A remote peer of a message-passing barrier (see the `fuzzy-net`
    /// crate) is unreachable or its link died: connect/send retries were
    /// exhausted, or the peer's connection closed without a goodbye frame.
    /// Survivors of a mid-episode peer death observe the barrier poisoned;
    /// this variant names the peer on the transport-facing paths.
    PeerDown {
        /// The mesh rank of the unreachable or dead peer.
        peer: usize,
    },
    /// A membership handle is stale: the slot's generation has advanced
    /// past the one stamped into the handle (its holder left or was
    /// evicted, and the slot may since have been re-issued to a new
    /// joiner). A stale handle can never arrive into the resized barrier.
    StaleGeneration {
        /// The membership slot the handle named.
        slot: usize,
        /// The generation stamped into the handle.
        held: u64,
        /// The slot's current generation.
        current: u64,
    },
}

impl fmt::Display for BarrierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BarrierError::TagMismatch {
                presented,
                expected,
            } => write!(
                f,
                "tag mismatch: presented {presented}, barrier expects {expected}"
            ),
            BarrierError::NotAParticipant { id } => {
                write!(f, "participant {id} is not in the barrier mask")
            }
            BarrierError::InvalidParticipant { id, capacity } => {
                write!(
                    f,
                    "participant id {id} out of range for {capacity} participants"
                )
            }
            BarrierError::RegistryFull { capacity } => {
                write!(
                    f,
                    "registry full: at most {capacity} barriers may be allocated"
                )
            }
            BarrierError::DuplicateTag { tag } => {
                write!(f, "a barrier with tag {tag} already exists")
            }
            BarrierError::UnknownTag { tag } => {
                write!(f, "no barrier with tag {tag} exists")
            }
            BarrierError::EmptyGroup => write!(f, "barrier group must have at least one member"),
            BarrierError::Timeout { episode } => {
                write!(
                    f,
                    "wait deadline expired before episode {episode} completed"
                )
            }
            BarrierError::Poisoned { episode } => {
                write!(f, "barrier poisoned while waiting on episode {episode}")
            }
            BarrierError::EvictionUnsupported => {
                write!(f, "this backend does not support participant eviction")
            }
            BarrierError::GroupFull { capacity } => {
                write!(f, "group full: all {capacity} membership slots are claimed")
            }
            BarrierError::PeerDown { peer } => {
                write!(f, "peer {peer} is down or unreachable")
            }
            BarrierError::StaleGeneration {
                slot,
                held,
                current,
            } => {
                write!(
                    f,
                    "stale handle for slot {slot}: holds generation {held}, slot is at {current}"
                )
            }
        }
    }
}

impl Error for BarrierError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = BarrierError::NotAParticipant { id: 3 };
        let s = e.to_string();
        assert!(s.starts_with("participant"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error + Send + Sync> = Box::new(BarrierError::RegistryFull { capacity: 7 });
        assert!(e.to_string().contains("registry full"));
    }

    #[test]
    fn reconfig_errors_mention_slots_and_generations() {
        let full = BarrierError::GroupFull { capacity: 8 };
        assert_eq!(
            full.to_string(),
            "group full: all 8 membership slots are claimed"
        );
        let stale = BarrierError::StaleGeneration {
            slot: 2,
            held: 1,
            current: 3,
        };
        let s = stale.to_string();
        assert!(
            s.contains("slot 2") && s.contains("generation 1") && s.contains("at 3"),
            "{s}"
        );
        // Both thread through a boxed error stack like any std error.
        let boxed: Box<dyn Error + Send + Sync> = Box::new(stale);
        assert!(boxed.to_string().starts_with("stale handle"));
    }

    #[test]
    fn peer_down_names_the_peer() {
        let e = BarrierError::PeerDown { peer: 3 };
        assert_eq!(e.to_string(), "peer 3 is down or unreachable");
    }

    #[test]
    fn tag_mismatch_mentions_both_tags() {
        let a = Tag::new(3).unwrap();
        let b = Tag::new(5).unwrap();
        let e = BarrierError::TagMismatch {
            presented: a,
            expected: b,
        };
        let s = e.to_string();
        assert!(s.contains("tag(3)") && s.contains("tag(5)"), "{s}");
    }
}
