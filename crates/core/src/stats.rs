//! Lock-free per-barrier statistics and episode telemetry.
//!
//! Every backend records how many episodes completed, how many arrivals it
//! saw, and — crucially for reproducing the paper's Sec. 8 measurement —
//! how many waits actually *stalled* and for how long. A stall that
//! escalates to a deschedule corresponds to the Encore context save/restore
//! the paper identifies as the dominant synchronization cost.
//!
//! On top of the flat counters, [`BarrierStats`] maintains per-episode
//! telemetry:
//!
//! * a fixed-bucket power-of-two-nanosecond **stall-time histogram**
//!   ([`StallHistogram`]) — bucket `i` counts stalls whose duration in
//!   nanoseconds satisfies `2^i <= ns < 2^(i+1)` (bucket 0 also absorbs
//!   zero), so the whole `u64` range is covered by 64 buckets;
//! * **arrival spread** — the time between the first and last `arrive`
//!   of each episode, the direct measure of how much drift the fuzzy
//!   barrier region absorbed;
//! * **per-participant** stall/probe counters, which expose asymmetric
//!   load (one slow stream stalls everyone else, Sec. 8).
//!
//! Everything is updated with relaxed atomic adds on paths that already
//! performed at least one synchronizing atomic; nothing on the hot path
//! allocates (all storage is sized at construction).

use crate::spin::{AdaptiveSpin, StallPolicy};
use crate::token::WaitOutcome;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of histogram buckets: one per power of two of a `u64` value.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Sentinel meaning "no arrival recorded yet for this episode".
const SPREAD_ARMED: u64 = u64::MAX;

/// A lock-free fixed-bucket histogram over power-of-two ranges.
///
/// Bucket `i` counts recorded values `v` with `floor(log2(v)) == i`
/// (bucket 0 also counts `v == 0`). For barrier stalls the recorded value
/// is nanoseconds, so bucket 10 ≈ 1–2 µs, bucket 20 ≈ 1–2 ms, and so on;
/// `u64::MAX` saturates into the last bucket.
#[derive(Debug)]
pub struct StallHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for StallHistogram {
    fn default() -> Self {
        StallHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl StallHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in: `floor(log2(v))`, with 0 for 0.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (63 - value.leading_zeros()) as usize
        }
    }

    /// Inclusive lower and upper bound of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= HISTOGRAM_BUCKETS`.
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS);
        let lo = if i == 0 { 0 } else { 1u64 << i };
        let hi = if i == 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        };
        (lo, hi)
    }

    /// Records one observation of `value`.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the bucket counts.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a [`StallHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per power-of-two bucket; see [`StallHistogram::bucket_bounds`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Index of the highest non-empty bucket, or `None` when empty.
    #[must_use]
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 <= q <= 1.0`) of the recorded values, or `None` when empty.
    /// A coarse estimate — resolution is one power of two.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(StallHistogram::bucket_bounds(i).1);
            }
        }
        Some(u64::MAX)
    }

    /// Adds another snapshot's counts into this one (for aggregation
    /// across barriers or participants).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
    }
}

/// Per-episode arrival-spread accumulator: the gap between the first and
/// last arrival of each episode.
#[derive(Debug, Default)]
struct SpreadTracker {
    /// Earliest arrival timestamp (ns since the stats anchor) of the
    /// episode in flight; `SPREAD_ARMED` when none recorded yet.
    first: AtomicU64,
    /// Latest arrival timestamp of the episode in flight.
    last: AtomicU64,
    /// Sum of spreads over completed episodes.
    total_nanos: AtomicU64,
    /// Largest spread seen.
    max_nanos: AtomicU64,
    /// Spread of the most recently completed episode.
    last_nanos: AtomicU64,
    /// Episodes with a measured spread.
    episodes: AtomicU64,
}

/// Per-participant relaxed counters (indexed by participant id).
#[derive(Debug, Default)]
struct ParticipantCounters {
    arrivals: AtomicU64,
    waits: AtomicU64,
    stalls: AtomicU64,
    stall_nanos: AtomicU64,
    probes: AtomicU64,
}

/// Atomic counters updated by barrier operations.
///
/// Cheap enough to leave enabled: every field is a relaxed atomic add on a
/// path that already performed at least one synchronizing atomic. Construct
/// with [`BarrierStats::with_participants`] to additionally get
/// per-participant counters; the plain [`BarrierStats::new`] keeps only the
/// aggregate view.
#[derive(Debug)]
pub struct BarrierStats {
    episodes: AtomicU64,
    arrivals: AtomicU64,
    waits: AtomicU64,
    stalls: AtomicU64,
    deschedules: AtomicU64,
    stall_nanos: AtomicU64,
    probes: AtomicU64,
    timeouts: AtomicU64,
    evictions: AtomicU64,
    poisonings: AtomicU64,
    stall_hist: StallHistogram,
    spread: SpreadTracker,
    /// Wait-cost EWMAs feeding [`StallPolicy::Adaptive`] budget sizing.
    adaptive: AdaptiveSpin,
    /// Monotonic time origin for arrival timestamps.
    anchor: Instant,
    /// Per-participant counters; empty when participant-blind.
    per_participant: Box<[ParticipantCounters]>,
}

impl Default for BarrierStats {
    fn default() -> Self {
        Self::with_participants(0)
    }
}

impl BarrierStats {
    /// Creates a zeroed, participant-blind statistics block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a statistics block that also keeps per-participant counters
    /// for participants `0..n`. All storage is allocated here; recording
    /// never allocates.
    #[must_use]
    pub fn with_participants(n: usize) -> Self {
        let spread = SpreadTracker::default();
        spread.first.store(SPREAD_ARMED, Ordering::Relaxed);
        BarrierStats {
            episodes: AtomicU64::new(0),
            arrivals: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            deschedules: AtomicU64::new(0),
            stall_nanos: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            poisonings: AtomicU64::new(0),
            stall_hist: StallHistogram::new(),
            spread,
            adaptive: AdaptiveSpin::new(),
            anchor: Instant::now(),
            per_participant: (0..n).map(|_| ParticipantCounters::default()).collect(),
        }
    }

    fn now_nanos(&self) -> u64 {
        u64::try_from(self.anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records one arrival by participant `id` (aggregate, per-participant
    /// and arrival-spread bookkeeping).
    ///
    /// Public so that [`crate::SplitBarrier`] implementations outside this
    /// crate (the `fuzzy-net` message-passing backend, checker mutants) can
    /// feed the same telemetry schema as the in-process backends.
    pub fn record_arrival(&self, id: usize) {
        self.arrivals.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = self.per_participant.get(id) {
            p.arrivals.fetch_add(1, Ordering::Relaxed);
        }
        // Arrival-spread bookkeeping. `first` uses fetch_min against the
        // SPREAD_ARMED sentinel so the earliest arrival of the episode wins;
        // `last` uses fetch_max. When episodes overlap (a fast participant
        // arrives for episode e+1 before e's completion is recorded) the
        // spread attributed to e may include the head of e+1 — an accepted
        // approximation; telemetry is statistics, not synchronization.
        let now = self.now_nanos().min(SPREAD_ARMED - 1);
        self.spread.first.fetch_min(now, Ordering::Relaxed);
        self.spread.last.fetch_max(now, Ordering::Relaxed);
    }

    /// Records one completed episode and folds the episode's arrival
    /// spread. Call exactly once per episode, from whichever participant
    /// observes completion first.
    pub fn record_episode(&self) {
        self.episodes.fetch_add(1, Ordering::Relaxed);
        let first = self.spread.first.swap(SPREAD_ARMED, Ordering::Relaxed);
        let last = self.spread.last.swap(0, Ordering::Relaxed);
        if first != SPREAD_ARMED && last >= first {
            let spread = last - first;
            self.spread.total_nanos.fetch_add(spread, Ordering::Relaxed);
            self.spread.max_nanos.fetch_max(spread, Ordering::Relaxed);
            self.spread.last_nanos.store(spread, Ordering::Relaxed);
            self.spread.episodes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one completed wait by participant `id`: stall/deschedule
    /// counters, the stall histogram and the adaptive budget history.
    pub fn record_wait(&self, id: usize, outcome: &WaitOutcome) {
        self.waits.fetch_add(1, Ordering::Relaxed);
        let p = self.per_participant.get(id);
        if let Some(p) = p {
            p.waits.fetch_add(1, Ordering::Relaxed);
        }
        // Every completed wait — including the instant ones, which pull
        // the EWMAs toward zero — feeds the adaptive budget history.
        self.adaptive.observe(
            outcome.probes,
            u64::try_from(outcome.stall_time.as_nanos()).unwrap_or(u64::MAX),
        );
        if outcome.stalled {
            self.stalls.fetch_add(1, Ordering::Relaxed);
            let nanos = u64::try_from(outcome.stall_time.as_nanos()).unwrap_or(u64::MAX);
            self.stall_nanos.fetch_add(nanos, Ordering::Relaxed);
            self.probes.fetch_add(outcome.probes, Ordering::Relaxed);
            self.stall_hist.record(nanos);
            if let Some(p) = p {
                p.stalls.fetch_add(1, Ordering::Relaxed);
                p.stall_nanos.fetch_add(nanos, Ordering::Relaxed);
                p.probes.fetch_add(outcome.probes, Ordering::Relaxed);
            }
        }
        if outcome.descheduled {
            self.deschedules.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a wait that expired at its deadline. The time spent stalled
    /// before giving up goes into the same stall histogram and per
    /// participant attribution as a successful stalled wait — a timeout
    /// *is* a stall, just one that was cut short — plus the dedicated
    /// `timeouts` counter. `waits`/`stalls` are untouched so the
    /// waits-equals-arrivals invariant keeps holding once the wait is
    /// eventually retried to completion.
    pub fn record_timeout(&self, id: usize, report: &crate::spin::SpinReport) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
        let nanos = u64::try_from(report.waited.as_nanos()).unwrap_or(u64::MAX);
        self.adaptive.observe(report.probes, nanos);
        self.stall_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.probes.fetch_add(report.probes, Ordering::Relaxed);
        self.stall_hist.record(nanos);
        if report.descheduled {
            self.deschedules.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(p) = self.per_participant.get(id) {
            p.stall_nanos.fetch_add(nanos, Ordering::Relaxed);
            p.probes.fetch_add(report.probes, Ordering::Relaxed);
        }
    }

    /// Records a participant eviction (mask shrink due to failure).
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a poisoning transition (only the first `poison` call after a
    /// clear counts).
    pub fn record_poisoning(&self) {
        self.poisonings.fetch_add(1, Ordering::Relaxed);
    }

    /// The adaptive wait-cost history, fed by every recorded wait and
    /// timeout.
    #[must_use]
    pub fn adaptive(&self) -> &AdaptiveSpin {
        &self.adaptive
    }

    /// Resolves a stall policy for the next wait: [`StallPolicy::Adaptive`]
    /// is sized from this barrier's wait-cost EWMAs, everything else passes
    /// through unchanged. Backends call this at the top of their wait path.
    #[must_use]
    pub fn resolve_policy(&self, policy: StallPolicy) -> StallPolicy {
        self.adaptive.resolve(policy)
    }

    /// Takes a consistent-enough snapshot for reporting (fields are read
    /// individually with relaxed ordering; exact cross-field consistency is
    /// not needed for statistics).
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            episodes: self.episodes.load(Ordering::Relaxed),
            arrivals: self.arrivals.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            deschedules: self.deschedules.load(Ordering::Relaxed),
            stall_time: Duration::from_nanos(self.stall_nanos.load(Ordering::Relaxed)),
            probes: self.probes.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            poisonings: self.poisonings.load(Ordering::Relaxed),
        }
    }

    /// Takes the full telemetry snapshot: flat counters plus the stall
    /// histogram, arrival spread and per-participant counters.
    #[must_use]
    pub fn telemetry(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            base: self.snapshot(),
            stall_hist: self.stall_hist.snapshot(),
            spread: SpreadSnapshot {
                episodes: self.spread.episodes.load(Ordering::Relaxed),
                total: Duration::from_nanos(self.spread.total_nanos.load(Ordering::Relaxed)),
                max: Duration::from_nanos(self.spread.max_nanos.load(Ordering::Relaxed)),
                last: Duration::from_nanos(self.spread.last_nanos.load(Ordering::Relaxed)),
            },
            adaptive: AdaptiveSnapshot {
                observations: self.adaptive.observations(),
                ewma_probes: self.adaptive.ewma_probes(),
                ewma_stall: self.adaptive.ewma_stall(),
            },
            per_participant: self
                .per_participant
                .iter()
                .map(|p| ParticipantSnapshot {
                    arrivals: p.arrivals.load(Ordering::Relaxed),
                    waits: p.waits.load(Ordering::Relaxed),
                    stalls: p.stalls.load(Ordering::Relaxed),
                    stall_time: Duration::from_nanos(p.stall_nanos.load(Ordering::Relaxed)),
                    probes: p.probes.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of [`BarrierStats`]' flat counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Completed barrier episodes.
    pub episodes: u64,
    /// Total arrivals across all participants and episodes.
    pub arrivals: u64,
    /// Total waits (should equal arrivals when the protocol is followed).
    pub waits: u64,
    /// Waits that found synchronization incomplete and had to stall.
    pub stalls: u64,
    /// Stalls that escalated to a yield or park (context switch analogue).
    pub deschedules: u64,
    /// Total wall-clock time spent stalled, summed over participants.
    pub stall_time: Duration,
    /// Total wait probes performed while stalled.
    pub probes: u64,
    /// Bounded waits that expired at their deadline.
    pub timeouts: u64,
    /// Participants evicted from the barrier (mask shrinks due to failure).
    pub evictions: u64,
    /// Poisoning transitions (unpoisoned barrier marked poisoned).
    pub poisonings: u64,
}

impl StatsSnapshot {
    /// Fraction of waits that stalled, in `[0, 1]`. Returns 0 when no waits
    /// have happened yet.
    #[must_use]
    pub fn stall_rate(&self) -> f64 {
        if self.waits == 0 {
            0.0
        } else {
            self.stalls as f64 / self.waits as f64
        }
    }

    /// Mean stall time per wait (not per stall), the per-synchronization
    /// overhead comparable to the paper's µs-per-barrier numbers.
    #[must_use]
    pub fn mean_stall_per_wait(&self) -> Duration {
        if self.waits == 0 {
            Duration::ZERO
        } else {
            self.stall_time / u32::try_from(self.waits.min(u64::from(u32::MAX))).unwrap_or(1)
        }
    }
}

/// Arrival-spread summary: per-episode gap between first and last arrival.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpreadSnapshot {
    /// Episodes with a measured spread.
    pub episodes: u64,
    /// Sum of spreads over those episodes.
    pub total: Duration,
    /// Largest single-episode spread.
    pub max: Duration,
    /// Spread of the most recently completed episode.
    pub last: Duration,
}

impl SpreadSnapshot {
    /// Mean spread per measured episode.
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.episodes == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.episodes.min(u64::from(u32::MAX))).unwrap_or(1)
        }
    }
}

/// One participant's view of the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParticipantSnapshot {
    /// Arrivals performed by this participant.
    pub arrivals: u64,
    /// Waits performed by this participant.
    pub waits: u64,
    /// Waits that stalled.
    pub stalls: u64,
    /// Total time this participant spent stalled.
    pub stall_time: Duration,
    /// Probes performed while stalled.
    pub probes: u64,
}

/// A point-in-time copy of the adaptive wait-cost history backing
/// [`StallPolicy::Adaptive`] budget sizing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveSnapshot {
    /// Waits folded into the EWMAs so far.
    pub observations: u64,
    /// EWMA of per-wait predicate probes.
    pub ewma_probes: u64,
    /// EWMA of per-wait stall time.
    pub ewma_stall: Duration,
}

/// Relaxed counters for the async (poll-based) barrier frontend.
///
/// Tracked separately from [`BarrierStats`] on purpose: the flat
/// [`StatsSnapshot`] feeds schema-pinned experiment exports, so async-only
/// counters live in their own block rather than widening a frozen shape.
/// All record methods are public — `fuzzy-sched`'s executor records steal
/// events into its own instance; `fuzzy-barrier`'s `AsyncBarrier` records
/// the parking-protocol events.
#[derive(Debug, Default)]
pub struct AsyncStats {
    parked: AtomicU64,
    resumed: AtomicU64,
    drains: AtomicU64,
    wakes: AtomicU64,
    polls: AtomicU64,
    steals: AtomicU64,
}

impl AsyncStats {
    /// Creates a zeroed counter block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a waiter registering a waker (first `Poll::Pending`).
    pub fn record_parked(&self) {
        self.parked.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a previously parked waiter completing its episode.
    pub fn record_resumed(&self) {
        self.resumed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one drain sweep over the parked-waiter registry.
    pub fn record_drain(&self) {
        self.drains.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` wakers invoked by a drain.
    pub fn record_wakes(&self, n: u64) {
        if n > 0 {
            self.wakes.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one `Future::poll` of a barrier future.
    pub fn record_poll(&self) {
        self.polls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a task stolen from another worker's run queue.
    pub fn record_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> AsyncSnapshot {
        AsyncSnapshot {
            parked: self.parked.load(Ordering::Relaxed),
            resumed: self.resumed.load(Ordering::Relaxed),
            drains: self.drains.load(Ordering::Relaxed),
            wakes: self.wakes.load(Ordering::Relaxed),
            polls: self.polls.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`AsyncStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsyncSnapshot {
    /// Waiters that registered a waker (first pending poll).
    pub parked: u64,
    /// Previously parked waiters that completed their episode.
    pub resumed: u64,
    /// Drain sweeps over the parked-waiter registry.
    pub drains: u64,
    /// Wakers invoked by drains.
    pub wakes: u64,
    /// Barrier-future polls.
    pub polls: u64,
    /// Tasks stolen from another worker's run queue.
    pub steals: u64,
}

impl AsyncSnapshot {
    /// Adds another snapshot's counts into this one (for aggregation
    /// across barriers or executors).
    pub fn merge(&mut self, other: &AsyncSnapshot) {
        self.parked = self.parked.saturating_add(other.parked);
        self.resumed = self.resumed.saturating_add(other.resumed);
        self.drains = self.drains.saturating_add(other.drains);
        self.wakes = self.wakes.saturating_add(other.wakes);
        self.polls = self.polls.saturating_add(other.polls);
        self.steals = self.steals.saturating_add(other.steals);
    }
}

/// Per-peer link counters for a message-passing barrier (the `fuzzy-net`
/// crate).
///
/// Like [`AsyncStats`], this lives beside [`BarrierStats`] rather than
/// inside it: the flat [`StatsSnapshot`] feeds schema-pinned experiment
/// exports, so transport-only counters get their own block. One instance
/// covers one mesh endpoint; the `per-peer` rows are indexed by mesh rank
/// (the local rank's row stays zero).
#[derive(Debug)]
pub struct NetStats {
    retries: AtomicU64,
    decode_errors: AtomicU64,
    poison_frames: AtomicU64,
    nacks: AtomicU64,
    per_peer: Vec<LinkCounters>,
}

#[derive(Debug, Default)]
struct LinkCounters {
    sent: AtomicU64,
    received: AtomicU64,
    retries: AtomicU64,
}

impl NetStats {
    /// Creates a zeroed counter block for a mesh of `nodes` endpoints.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        NetStats {
            retries: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            poison_frames: AtomicU64::new(0),
            nacks: AtomicU64::new(0),
            per_peer: (0..nodes).map(|_| LinkCounters::default()).collect(),
        }
    }

    /// Records one frame sent to `peer`. Out-of-range ranks are counted in
    /// the aggregate only (snapshot totals still add up).
    pub fn record_send(&self, peer: usize) {
        if let Some(link) = self.per_peer.get(peer) {
            link.sent.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one frame received from `peer`.
    pub fn record_recv(&self, peer: usize) {
        if let Some(link) = self.per_peer.get(peer) {
            link.received.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one retransmission (send retry or nack-triggered resend)
    /// toward `peer`.
    pub fn record_retry(&self, peer: usize) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        if let Some(link) = self.per_peer.get(peer) {
            link.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a frame that failed to decode (bad magic/version/length).
    pub fn record_decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a poison frame sent or delivered.
    pub fn record_poison_frame(&self) {
        self.poison_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a nack frame sent (a receiver asking for a retransmission).
    pub fn record_nack(&self) {
        self.nacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> NetSnapshot {
        let per_peer: Vec<PeerLinkSnapshot> = self
            .per_peer
            .iter()
            .enumerate()
            .map(|(peer, link)| PeerLinkSnapshot {
                peer,
                sent: link.sent.load(Ordering::Relaxed),
                received: link.received.load(Ordering::Relaxed),
                retries: link.retries.load(Ordering::Relaxed),
            })
            .collect();
        NetSnapshot {
            frames_sent: per_peer.iter().map(|p| p.sent).sum(),
            frames_received: per_peer.iter().map(|p| p.received).sum(),
            retries: self.retries.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            poison_frames: self.poison_frames.load(Ordering::Relaxed),
            nacks: self.nacks.load(Ordering::Relaxed),
            per_peer,
        }
    }
}

/// A point-in-time copy of [`NetStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    /// Total frames sent across all links.
    pub frames_sent: u64,
    /// Total frames received across all links.
    pub frames_received: u64,
    /// Retransmissions (send retries plus nack-triggered resends).
    pub retries: u64,
    /// Frames that failed to decode.
    pub decode_errors: u64,
    /// Poison frames sent or delivered.
    pub poison_frames: u64,
    /// Nack frames sent.
    pub nacks: u64,
    /// Per-peer link rows, indexed by mesh rank.
    pub per_peer: Vec<PeerLinkSnapshot>,
}

/// One peer's row in a [`NetSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerLinkSnapshot {
    /// The peer's mesh rank.
    pub peer: usize,
    /// Frames sent to this peer.
    pub sent: u64,
    /// Frames received from this peer.
    pub received: u64,
    /// Retransmissions toward this peer.
    pub retries: u64,
}

/// The full telemetry picture: flat counters, stall histogram, arrival
/// spread, adaptive-policy state, and per-participant counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// The flat counters (same values as [`BarrierStats::snapshot`]).
    pub base: StatsSnapshot,
    /// Power-of-two-nanosecond histogram of individual stall durations.
    pub stall_hist: HistogramSnapshot,
    /// Per-episode first-to-last arrival gap summary.
    pub spread: SpreadSnapshot,
    /// Wait-cost EWMAs driving [`StallPolicy::Adaptive`] budget sizing.
    pub adaptive: AdaptiveSnapshot,
    /// Per-participant counters; empty for participant-blind stats.
    pub per_participant: Vec<ParticipantSnapshot>,
}

impl TelemetrySnapshot {
    /// Wraps a flat snapshot with empty telemetry — the default
    /// [`crate::SplitBarrier::telemetry`] for backends that only track flat
    /// counters.
    #[must_use]
    pub fn from_base(base: StatsSnapshot) -> Self {
        TelemetrySnapshot {
            base,
            ..TelemetrySnapshot::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_of_fresh_stats_is_zero() {
        let s = BarrierStats::new().snapshot();
        assert_eq!(s, StatsSnapshot::default());
        assert_eq!(s.stall_rate(), 0.0);
        assert_eq!(s.mean_stall_per_wait(), Duration::ZERO);
    }

    #[test]
    fn record_wait_accumulates() {
        let stats = BarrierStats::new();
        stats.record_arrival(0);
        stats.record_wait(
            0,
            &WaitOutcome {
                episode: 0,
                stalled: true,
                descheduled: true,
                probes: 12,
                stall_time: Duration::from_micros(3),
            },
        );
        stats.record_wait(0, &WaitOutcome::default());
        let s = stats.snapshot();
        assert_eq!(s.arrivals, 1);
        assert_eq!(s.waits, 2);
        assert_eq!(s.stalls, 1);
        assert_eq!(s.deschedules, 1);
        assert_eq!(s.probes, 12);
        assert!((s.stall_rate() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn mean_stall_divides_by_waits() {
        let stats = BarrierStats::new();
        for _ in 0..4 {
            stats.record_wait(
                0,
                &WaitOutcome {
                    episode: 0,
                    stalled: true,
                    descheduled: false,
                    probes: 1,
                    stall_time: Duration::from_micros(8),
                },
            );
        }
        let s = stats.snapshot();
        assert_eq!(s.mean_stall_per_wait(), Duration::from_micros(8));
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 holds 0 and 1; bucket i holds [2^i, 2^(i+1)).
        assert_eq!(StallHistogram::bucket_index(0), 0);
        assert_eq!(StallHistogram::bucket_index(1), 0);
        assert_eq!(StallHistogram::bucket_index(2), 1);
        assert_eq!(StallHistogram::bucket_index(3), 1);
        assert_eq!(StallHistogram::bucket_index(4), 2);
        assert_eq!(StallHistogram::bucket_index(1023), 9);
        assert_eq!(StallHistogram::bucket_index(1024), 10);
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = StallHistogram::bucket_bounds(i);
            assert_eq!(StallHistogram::bucket_index(lo.max(1)), i);
            assert_eq!(StallHistogram::bucket_index(hi), i);
            if i > 0 {
                let (_, prev_hi) = StallHistogram::bucket_bounds(i - 1);
                assert_eq!(prev_hi + 1, lo, "buckets must tile the u64 range");
            }
        }
    }

    #[test]
    fn histogram_saturates_at_u64_max() {
        let h = StallHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        let s = h.snapshot();
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 2);
        assert_eq!(s.total(), 2);
        assert_eq!(s.max_bucket(), Some(HISTOGRAM_BUCKETS - 1));
    }

    #[test]
    fn histogram_quantiles() {
        let h = StallHistogram::new();
        for _ in 0..9 {
            h.record(100); // bucket 6 (64..127)
        }
        h.record(1 << 20); // bucket 20
        let s = h.snapshot();
        assert_eq!(s.quantile_upper_bound(0.5), Some(127));
        assert_eq!(s.quantile_upper_bound(1.0), Some((1 << 21) - 1));
        assert_eq!(HistogramSnapshot::default().quantile_upper_bound(0.5), None);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let a = StallHistogram::new();
        let b = StallHistogram::new();
        a.record(10);
        b.record(10);
        b.record(1000);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.buckets[StallHistogram::bucket_index(10)], 2);
        assert_eq!(sa.buckets[StallHistogram::bucket_index(1000)], 1);
        assert_eq!(sa.total(), 3);
    }

    #[test]
    fn empty_episode_telemetry_snapshot() {
        let t = BarrierStats::with_participants(3).telemetry();
        assert_eq!(t.base, StatsSnapshot::default());
        assert!(t.stall_hist.is_empty());
        assert_eq!(t.spread, SpreadSnapshot::default());
        assert_eq!(t.spread.mean(), Duration::ZERO);
        assert_eq!(t.per_participant.len(), 3);
        assert!(t
            .per_participant
            .iter()
            .all(|p| *p == ParticipantSnapshot::default()));
    }

    #[test]
    fn spread_measures_first_to_last_arrival() {
        let stats = BarrierStats::with_participants(2);
        stats.record_arrival(0);
        std::thread::sleep(Duration::from_millis(2));
        stats.record_arrival(1);
        stats.record_episode();
        let t = stats.telemetry();
        assert_eq!(t.spread.episodes, 1);
        assert!(t.spread.last >= Duration::from_millis(2), "{:?}", t.spread);
        assert_eq!(t.spread.last, t.spread.max);
        assert_eq!(t.spread.last, t.spread.total);
        // The next episode re-arms cleanly.
        stats.record_arrival(0);
        stats.record_arrival(1);
        stats.record_episode();
        let t = stats.telemetry();
        assert_eq!(t.spread.episodes, 2);
        assert!(t.spread.last <= t.spread.max);
    }

    #[test]
    fn fault_counters_accumulate() {
        let stats = BarrierStats::with_participants(2);
        stats.record_timeout(
            1,
            &crate::spin::SpinReport {
                probes: 40,
                descheduled: true,
                waited: Duration::from_micros(9),
                timed_out: true,
            },
        );
        stats.record_eviction();
        stats.record_poisoning();
        let t = stats.telemetry();
        assert_eq!(t.base.timeouts, 1);
        assert_eq!(t.base.evictions, 1);
        assert_eq!(t.base.poisonings, 1);
        assert_eq!(t.base.deschedules, 1);
        assert_eq!(t.base.stall_time, Duration::from_micros(9));
        assert_eq!(t.stall_hist.total(), 1, "timeout stall lands in the hist");
        assert_eq!(t.per_participant[1].probes, 40);
        // Waits/stalls untouched: the arrival has not completed its wait.
        assert_eq!(t.base.waits, 0);
        assert_eq!(t.base.stalls, 0);
    }

    #[test]
    fn per_participant_counters_attribute_stalls() {
        let stats = BarrierStats::with_participants(2);
        stats.record_arrival(0);
        stats.record_arrival(1);
        stats.record_wait(
            1,
            &WaitOutcome {
                episode: 0,
                stalled: true,
                descheduled: false,
                probes: 7,
                stall_time: Duration::from_micros(5),
            },
        );
        stats.record_wait(0, &WaitOutcome::default());
        let t = stats.telemetry();
        assert_eq!(t.per_participant[0].stalls, 0);
        assert_eq!(t.per_participant[1].stalls, 1);
        assert_eq!(t.per_participant[1].probes, 7);
        assert_eq!(t.per_participant[1].stall_time, Duration::from_micros(5));
        assert_eq!(t.stall_hist.total(), 1);
        // Out-of-range ids (from participant-blind callers) are ignored,
        // not a panic.
        stats.record_wait(9, &WaitOutcome::default());
        assert_eq!(stats.snapshot().waits, 3);
    }

    #[test]
    fn waits_feed_the_adaptive_history() {
        let stats = BarrierStats::with_participants(2);
        stats.record_wait(
            0,
            &WaitOutcome {
                episode: 0,
                stalled: true,
                descheduled: false,
                probes: 64,
                stall_time: Duration::from_nanos(400),
            },
        );
        let t = stats.telemetry();
        assert_eq!(t.adaptive.observations, 1);
        assert_eq!(t.adaptive.ewma_probes, 64);
        assert_eq!(t.adaptive.ewma_stall, Duration::from_nanos(400));
        // Short recorded waits produce a budget near twice the EWMA, so an
        // adaptive policy resolves to a concrete SpinYield in that range.
        let resolved = stats.resolve_policy(StallPolicy::adaptive());
        assert_eq!(resolved, StallPolicy::SpinYield { spin_limit: 128 });
        // Non-adaptive policies are untouched.
        assert_eq!(stats.resolve_policy(StallPolicy::Spin), StallPolicy::Spin);
        // Timeouts count as (expensive) waits in the history too.
        stats.record_timeout(
            1,
            &crate::spin::SpinReport {
                probes: 1_000,
                descheduled: true,
                waited: Duration::from_millis(10),
                timed_out: true,
            },
        );
        assert_eq!(stats.telemetry().adaptive.observations, 2);
        assert!(stats.adaptive().ewma_stall() > Duration::from_nanos(400));
    }

    #[test]
    fn net_stats_aggregates_match_per_peer_rows() {
        let net = NetStats::new(3);
        net.record_send(1);
        net.record_send(2);
        net.record_send(2);
        net.record_recv(1);
        net.record_retry(2);
        net.record_decode_error();
        net.record_poison_frame();
        net.record_nack();
        let snap = net.snapshot();
        assert_eq!(snap.frames_sent, 3);
        assert_eq!(snap.frames_received, 1);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.decode_errors, 1);
        assert_eq!(snap.poison_frames, 1);
        assert_eq!(snap.nacks, 1);
        assert_eq!(snap.per_peer.len(), 3);
        assert_eq!(snap.per_peer[2].sent, 2);
        assert_eq!(snap.per_peer[2].retries, 1);
        assert_eq!(snap.per_peer[0].sent, 0);
        // Out-of-range ranks never panic and never skew the per-peer rows.
        net.record_send(99);
        assert_eq!(
            net.snapshot().per_peer.iter().map(|p| p.sent).sum::<u64>(),
            3
        );
    }
}
