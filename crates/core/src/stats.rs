//! Lock-free per-barrier statistics.
//!
//! Every backend records how many episodes completed, how many arrivals it
//! saw, and — crucially for reproducing the paper's Sec. 8 measurement —
//! how many waits actually *stalled* and for how long. A stall that
//! escalates to a deschedule corresponds to the Encore context save/restore
//! the paper identifies as the dominant synchronization cost.

use crate::token::WaitOutcome;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Atomic counters updated by barrier operations.
///
/// Cheap enough to leave enabled: every field is a relaxed atomic add on a
/// path that already performed at least one synchronizing atomic.
#[derive(Debug, Default)]
pub struct BarrierStats {
    episodes: AtomicU64,
    arrivals: AtomicU64,
    waits: AtomicU64,
    stalls: AtomicU64,
    deschedules: AtomicU64,
    stall_nanos: AtomicU64,
    probes: AtomicU64,
}

impl BarrierStats {
    /// Creates a zeroed statistics block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_arrival(&self) {
        self.arrivals.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_episode(&self) {
        self.episodes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_wait(&self, outcome: &WaitOutcome) {
        self.waits.fetch_add(1, Ordering::Relaxed);
        if outcome.stalled {
            self.stalls.fetch_add(1, Ordering::Relaxed);
            let nanos = u64::try_from(outcome.stall_time.as_nanos()).unwrap_or(u64::MAX);
            self.stall_nanos.fetch_add(nanos, Ordering::Relaxed);
            self.probes.fetch_add(outcome.probes, Ordering::Relaxed);
        }
        if outcome.descheduled {
            self.deschedules.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Takes a consistent-enough snapshot for reporting (fields are read
    /// individually with relaxed ordering; exact cross-field consistency is
    /// not needed for statistics).
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            episodes: self.episodes.load(Ordering::Relaxed),
            arrivals: self.arrivals.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            deschedules: self.deschedules.load(Ordering::Relaxed),
            stall_time: Duration::from_nanos(self.stall_nanos.load(Ordering::Relaxed)),
            probes: self.probes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`BarrierStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Completed barrier episodes.
    pub episodes: u64,
    /// Total arrivals across all participants and episodes.
    pub arrivals: u64,
    /// Total waits (should equal arrivals when the protocol is followed).
    pub waits: u64,
    /// Waits that found synchronization incomplete and had to stall.
    pub stalls: u64,
    /// Stalls that escalated to a yield or park (context switch analogue).
    pub deschedules: u64,
    /// Total wall-clock time spent stalled, summed over participants.
    pub stall_time: Duration,
    /// Total wait probes performed while stalled.
    pub probes: u64,
}

impl StatsSnapshot {
    /// Fraction of waits that stalled, in `[0, 1]`. Returns 0 when no waits
    /// have happened yet.
    #[must_use]
    pub fn stall_rate(&self) -> f64 {
        if self.waits == 0 {
            0.0
        } else {
            self.stalls as f64 / self.waits as f64
        }
    }

    /// Mean stall time per wait (not per stall), the per-synchronization
    /// overhead comparable to the paper's µs-per-barrier numbers.
    #[must_use]
    pub fn mean_stall_per_wait(&self) -> Duration {
        if self.waits == 0 {
            Duration::ZERO
        } else {
            self.stall_time / u32::try_from(self.waits.min(u64::from(u32::MAX))).unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_of_fresh_stats_is_zero() {
        let s = BarrierStats::new().snapshot();
        assert_eq!(s, StatsSnapshot::default());
        assert_eq!(s.stall_rate(), 0.0);
        assert_eq!(s.mean_stall_per_wait(), Duration::ZERO);
    }

    #[test]
    fn record_wait_accumulates() {
        let stats = BarrierStats::new();
        stats.record_arrival();
        stats.record_wait(&WaitOutcome {
            episode: 0,
            stalled: true,
            descheduled: true,
            probes: 12,
            stall_time: Duration::from_micros(3),
        });
        stats.record_wait(&WaitOutcome::default());
        let s = stats.snapshot();
        assert_eq!(s.arrivals, 1);
        assert_eq!(s.waits, 2);
        assert_eq!(s.stalls, 1);
        assert_eq!(s.deschedules, 1);
        assert_eq!(s.probes, 12);
        assert!((s.stall_rate() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn mean_stall_divides_by_waits() {
        let stats = BarrierStats::new();
        for _ in 0..4 {
            stats.record_wait(&WaitOutcome {
                episode: 0,
                stalled: true,
                descheduled: false,
                probes: 1,
                stall_time: Duration::from_micros(8),
            });
        }
        let s = stats.snapshot();
        assert_eq!(s.mean_stall_per_wait(), Duration::from_micros(8));
    }
}
