//! Arrival tokens and wait outcomes for the split-phase protocol.

use crate::spin::SpinReport;
use std::time::Duration;

/// Proof that a participant has *arrived* at a barrier episode.
///
/// Returned by [`crate::SplitBarrier::arrive`] and consumed by
/// [`crate::SplitBarrier::wait`]. The token pins down *which* episode the
/// participant arrived for, so a `wait` can never be confused across
/// episodes — the software analogue of the paper's hardware state machine
/// knowing exactly which barrier the processor is inside.
///
/// The token is deliberately **not** `Clone`/`Copy`: each arrival must be
/// matched by exactly one wait.
#[derive(Debug, PartialEq, Eq)]
#[must_use = "an arrival must be completed by calling wait(token)"]
pub struct ArrivalToken {
    pub(crate) id: usize,
    pub(crate) episode: u64,
}

impl ArrivalToken {
    /// Creates a token for participant `id` arriving at `episode`.
    ///
    /// Public so that external [`crate::SplitBarrier`] implementations
    /// (alternative backends, the `fuzzy-check` model checker's mutants)
    /// can mint tokens; protocol users only ever *receive* tokens from
    /// [`crate::SplitBarrier::arrive`].
    pub fn new(id: usize, episode: u64) -> Self {
        ArrivalToken { id, episode }
    }

    /// The participant id that arrived.
    #[must_use]
    pub fn participant(&self) -> usize {
        self.id
    }

    /// The barrier episode (0-based) this arrival belongs to.
    #[must_use]
    pub fn episode(&self) -> u64 {
        self.episode
    }
}

/// What happened during [`crate::SplitBarrier::wait`].
///
/// The interesting question for the paper's evaluation is not *whether* the
/// barrier synchronized (it always does) but *whether this participant had
/// to stall* — i.e. whether its barrier region was long enough to cover the
/// arrival skew.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitOutcome {
    /// The episode that completed.
    pub episode: u64,
    /// True if the participant had to wait at all (the region was too
    /// short to absorb the skew).
    pub stalled: bool,
    /// True if the stall escalated to a yield/park (models the Encore
    /// context save/restore cost, Sec. 8).
    pub descheduled: bool,
    /// Number of wait probes performed.
    pub probes: u64,
    /// Wall-clock time spent stalled.
    pub stall_time: Duration,
}

impl WaitOutcome {
    /// Builds an outcome from a stall-loop [`SpinReport`]. Public so that
    /// external [`crate::SplitBarrier`] implementations (the `fuzzy-net`
    /// message-passing backend) report waits in the same shape as the
    /// stock backends.
    #[must_use]
    pub fn from_report(episode: u64, report: SpinReport) -> Self {
        WaitOutcome {
            episode,
            stalled: !report.was_instant(),
            descheduled: report.descheduled,
            probes: report.probes,
            stall_time: report.waited,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_reports_identity() {
        let t = ArrivalToken::new(2, 7);
        assert_eq!(t.participant(), 2);
        assert_eq!(t.episode(), 7);
    }

    #[test]
    fn outcome_from_instant_report_is_not_stalled() {
        let o = WaitOutcome::from_report(3, SpinReport::default());
        assert_eq!(o.episode, 3);
        assert!(!o.stalled);
        assert!(!o.descheduled);
    }

    #[test]
    fn outcome_from_busy_report_is_stalled() {
        let r = SpinReport {
            probes: 10,
            descheduled: true,
            waited: Duration::from_micros(5),
            timed_out: false,
        };
        let o = WaitOutcome::from_report(0, r);
        assert!(o.stalled);
        assert!(o.descheduled);
        assert_eq!(o.probes, 10);
    }
}
