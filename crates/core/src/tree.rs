//! Combining-tree split-phase barrier with configurable fan-in.

use crate::error::BarrierError;
use crate::failure::{self, Deadline, OnTimeout, WaitPolicy};
use crate::spin::StallPolicy;
use crate::stats::{BarrierStats, StatsSnapshot, TelemetrySnapshot};
use crate::sync::{Atomic, RealSync, SyncOps};
use crate::token::{ArrivalToken, WaitOutcome};
use crate::SplitBarrier;
use fuzzy_util::CachePadded;
use std::sync::atomic::Ordering;

/// A combining-tree barrier: arrivals are counted in a tree of nodes with
/// fan-in `k`, so at most `k` participants ever contend on the same word.
///
/// The last arriver at each node propagates one arrival to its parent; the
/// last arriver at the root publishes the episode, releasing all waiters.
/// Arrival latency is O(log_k n) for the final arriver and O(1) for
/// everyone else, splitting the difference between the centralized design
/// (O(1) instructions, O(n) contention) and dissemination (O(log n)
/// instructions, zero contention).
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::{TreeBarrier, SplitBarrier};
///
/// let b = TreeBarrier::new(1);
/// let t = b.arrive(0);
/// assert!(!b.wait(t).stalled);
/// ```
#[derive(Debug)]
pub struct TreeBarrier<S: SyncOps = RealSync> {
    n: usize,
    fan_in: usize,
    policy: StallPolicy,
    nodes: Vec<CachePadded<Node<S>>>,
    /// Leaf node index for each participant.
    leaf_of: Vec<usize>,
    episode: CachePadded<S::AtomicU64>,
    local_episode: Vec<CachePadded<S::AtomicU64>>,
    /// Live (non-evicted) participants; guards against emptying the tree.
    live: CachePadded<S::AtomicUsize>,
    /// Non-zero once the barrier is poisoned.
    poisoned: CachePadded<S::AtomicU32>,
    /// Per-participant eviction flags (non-zero once evicted).
    evicted: Vec<CachePadded<S::AtomicU32>>,
    stats: BarrierStats,
}

#[derive(Debug)]
struct Node<S: SyncOps> {
    count: S::AtomicUsize,
    /// Arrivals this node expects per episode. Atomic because eviction
    /// shrinks it at runtime; the completer re-reads it when re-arming.
    expected: S::AtomicUsize,
    parent: Option<usize>,
}

impl TreeBarrier {
    /// Creates a binary (fan-in 2) tree barrier for `n` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_fan_in(n, 2, StallPolicy::default())
    }

    /// Creates a tree barrier with explicit fan-in and stall policy.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `fan_in < 2`.
    #[must_use]
    pub fn with_fan_in(n: usize, fan_in: usize, policy: StallPolicy) -> Self {
        Self::with_fan_in_in(n, fan_in, policy)
    }
}

impl<S: SyncOps> TreeBarrier<S> {
    /// Creates a tree barrier in an explicit [`SyncOps`] domain —
    /// `RealSync` in production, instrumented shadow state under the
    /// `fuzzy-check` model checker.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `fan_in < 2`.
    #[must_use]
    pub fn with_fan_in_in(n: usize, fan_in: usize, policy: StallPolicy) -> Self {
        assert!(n > 0, "a barrier needs at least one participant");
        assert!(fan_in >= 2, "fan-in must be at least 2");

        // Build levels bottom-up. Level 0 nodes absorb the participants;
        // each higher level absorbs the level below, until one root remains.
        let mut nodes: Vec<CachePadded<Node<S>>> = Vec::new();
        let mut leaf_of = vec![0usize; n];

        // level 0
        let level0 = n.div_ceil(fan_in);
        for g in 0..level0 {
            let members = members_of_group(n, fan_in, g);
            nodes.push(CachePadded::new(Node {
                count: S::AtomicUsize::new(members),
                expected: S::AtomicUsize::new(members),
                parent: None,
            }));
        }
        for (id, leaf) in leaf_of.iter_mut().enumerate() {
            *leaf = id / fan_in;
        }

        // higher levels
        let mut level_start = 0usize;
        let mut level_len = level0;
        while level_len > 1 {
            let next_len = level_len.div_ceil(fan_in);
            let next_start = nodes.len();
            for g in 0..next_len {
                let members = members_of_group(level_len, fan_in, g);
                nodes.push(CachePadded::new(Node {
                    count: S::AtomicUsize::new(members),
                    expected: S::AtomicUsize::new(members),
                    parent: None,
                }));
            }
            for i in 0..level_len {
                let parent = next_start + i / fan_in;
                nodes[level_start + i].parent = Some(parent);
            }
            level_start = next_start;
            level_len = next_len;
        }

        TreeBarrier {
            n,
            fan_in,
            policy,
            nodes,
            leaf_of,
            episode: CachePadded::new(S::AtomicU64::new(0)),
            local_episode: (0..n)
                .map(|_| CachePadded::new(S::AtomicU64::new(0)))
                .collect(),
            live: CachePadded::new(S::AtomicUsize::new(n)),
            poisoned: CachePadded::new(S::AtomicU32::new(0)),
            evicted: (0..n)
                .map(|_| CachePadded::new(S::AtomicU32::new(0)))
                .collect(),
            stats: BarrierStats::with_participants(n),
        }
    }

    /// The tree fan-in.
    #[must_use]
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Total number of tree nodes (exposed for tests and diagnostics).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn signal_node(&self, index: usize) {
        let node = &self.nodes[index];
        if node.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Re-arm this node *before* propagating, so participants released
            // by the eventual episode bump find a full counter. The
            // expectation is re-read because eviction may have shrunk it
            // (the shrink is ordered before this read by the RMW chain on
            // `count`, exactly like the centralized barrier's `leave`).
            node.count
                .store(node.expected.load(Ordering::Acquire), Ordering::Release);
            match node.parent {
                Some(parent) => self.signal_node(parent),
                None => {
                    self.episode.fetch_add(1, Ordering::Release);
                    self.stats.record_episode();
                }
            }
        }
    }

    /// The poison-aware bounded wait all wait flavors funnel through.
    fn wait_core(
        &self,
        token: &ArrivalToken,
        deadline: Deadline,
        policy: StallPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        let policy = self.stats.resolve_policy(policy);
        let result = failure::guarded_wait::<S>(
            policy,
            deadline,
            token.episode,
            || self.episode.load(Ordering::Acquire) > token.episode,
            || self.poisoned.load(Ordering::Acquire) != 0,
        );
        match result {
            Ok(outcome) => {
                self.stats.record_wait(token.id, &outcome);
                Ok(outcome)
            }
            Err(fault) => {
                if matches!(fault.error, BarrierError::Timeout { .. }) {
                    self.stats.record_timeout(token.id, &fault.report);
                }
                Err(fault.error)
            }
        }
    }
}

fn members_of_group(total: usize, fan_in: usize, group: usize) -> usize {
    let start = group * fan_in;
    fan_in.min(total - start)
}

impl<S: SyncOps> SplitBarrier for TreeBarrier<S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        assert!(
            id < self.n,
            "participant id {id} out of range for {} participants",
            self.n
        );
        let episode = self.local_episode[id].fetch_add(1, Ordering::Relaxed);
        self.stats.record_arrival(id);
        self.signal_node(self.leaf_of[id]);
        ArrivalToken::new(id, episode)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.episode.load(Ordering::Acquire) > token.episode
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        match self.wait_core(&token, Deadline::never(), self.policy) {
            Ok(outcome) => outcome,
            Err(e) => panic!("TreeBarrier::wait failed: {e} (use wait_deadline to recover)"),
        }
    }

    fn wait_deadline(
        &self,
        token: ArrivalToken,
        deadline: Deadline,
    ) -> Result<WaitOutcome, BarrierError> {
        self.wait_core(&token, deadline, self.policy)
    }

    fn wait_with(
        &self,
        token: ArrivalToken,
        policy: &WaitPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        let backoff = policy.backoff.unwrap_or(self.policy);
        let result = self.wait_core(&token, policy.arm(), backoff);
        if matches!(result, Err(BarrierError::Timeout { .. }))
            && policy.on_timeout == OnTimeout::Poison
        {
            self.poison();
        }
        result
    }

    fn poison(&self) {
        if self.poisoned.fetch_max(1, Ordering::AcqRel) == 0 {
            self.stats.record_poisoning();
        }
    }

    fn clear_poison(&self) {
        self.poisoned.store(0, Ordering::Release);
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire) != 0
    }

    fn evict(&self, id: usize) -> Result<(), BarrierError> {
        if id >= self.n {
            return Err(BarrierError::InvalidParticipant {
                id,
                capacity: self.n,
            });
        }
        // Already-dead ids are rejected before the EmptyGroup guard: a
        // dead id stays dead regardless of how many live remain.
        if self.evicted[id].load(Ordering::Acquire) != 0 {
            return Err(BarrierError::NotAParticipant { id });
        }
        if self.live.load(Ordering::Acquire) <= 1 {
            return Err(BarrierError::EmptyGroup);
        }
        if self.evicted[id].fetch_max(1, Ordering::AcqRel) != 0 {
            return Err(BarrierError::NotAParticipant { id });
        }
        self.live.fetch_sub(1, Ordering::AcqRel);
        self.stats.record_eviction();
        // Walk the evicted participant's leaf-to-root path. At each node,
        // shrink the expectation first (the completer re-reads it when
        // re-arming); then:
        //  - if other contributors remain, perform one stand-in arrival at
        //    this node for the in-flight episode (the evicted participant
        //    must not have arrived for it) and stop — future episodes are
        //    handled by the shrunk expectation;
        //  - if the node's expectation dropped to zero, the node is retired
        //    (nothing will ever signal it again) and the eviction moves up:
        //    the parent must stop expecting the retired node's signal.
        let mut index = self.leaf_of[id];
        loop {
            let node = &self.nodes[index];
            let prev = node.expected.fetch_sub(1, Ordering::AcqRel);
            if prev > 1 {
                self.signal_node(index);
                return Ok(());
            }
            match node.parent {
                Some(parent) => index = parent,
                None => {
                    // Unreachable with the live-count guard: a surviving
                    // participant keeps the expectation chain on the shared
                    // path segment above 1, stopping the walk before the
                    // root retires.
                    unreachable!("evicting the last live participant is rejected above")
                }
            }
        }
    }

    fn participants(&self) -> usize {
        self.n
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        self.stats.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn group_membership_math() {
        assert_eq!(members_of_group(5, 2, 0), 2);
        assert_eq!(members_of_group(5, 2, 1), 2);
        assert_eq!(members_of_group(5, 2, 2), 1);
        assert_eq!(members_of_group(7, 4, 1), 3);
    }

    #[test]
    fn tree_shapes() {
        // 1 participant: a single root node.
        assert_eq!(TreeBarrier::new(1).node_count(), 1);
        // 4 participants, fan-in 2: 2 leaves + 1 root.
        assert_eq!(TreeBarrier::new(4).node_count(), 3);
        // 8 participants, fan-in 2: 4 + 2 + 1.
        assert_eq!(TreeBarrier::new(8).node_count(), 7);
        // 9 participants, fan-in 4: 3 leaves + 1 root.
        assert_eq!(
            TreeBarrier::with_fan_in(9, 4, StallPolicy::default()).node_count(),
            4
        );
    }

    #[test]
    #[should_panic(expected = "fan-in")]
    fn fan_in_one_panics() {
        let _ = TreeBarrier::with_fan_in(4, 1, StallPolicy::default());
    }

    #[test]
    fn single_participant() {
        let b = TreeBarrier::new(1);
        for e in 0..4 {
            let t = b.arrive(0);
            assert!(b.is_complete(&t));
            assert_eq!(b.wait(t).episode, e);
        }
    }

    #[test]
    fn eviction_over_all_survivor_counts_victims_and_fanins() {
        // Survivor counts 2..=9 (n = 3..=10) at fan-ins 2 and 3, evicting
        // each id once. Covers single-member leaf groups (whose node
        // retires and pushes the eviction up the tree) and multi-member
        // groups (stand-in arrival at the leaf).
        for fan_in in [2usize, 3] {
            for survivors in 2usize..=9 {
                let n = survivors + 1;
                for victim in 0..n {
                    let b = Arc::new(TreeBarrier::with_fan_in(n, fan_in, StallPolicy::default()));
                    std::thread::scope(|s| {
                        let bv = Arc::clone(&b);
                        let victim_thread = s.spawn(move || {
                            let t = bv.arrive(victim);
                            assert_eq!(bv.wait(t).episode, 0);
                        });
                        for id in (0..n).filter(|&id| id != victim) {
                            let b = Arc::clone(&b);
                            s.spawn(move || {
                                for e in 0..3u64 {
                                    let t = b.arrive(id);
                                    assert_eq!(
                                        b.wait(t).episode,
                                        e,
                                        "n={n} k={fan_in} victim={victim} id={id}"
                                    );
                                }
                            });
                        }
                        victim_thread.join().unwrap();
                        b.evict(victim).unwrap();
                    });
                    assert_eq!(b.stats().evictions, 1, "n={n} k={fan_in} victim={victim}");
                }
            }
        }
    }

    #[test]
    fn evicting_sole_leaf_member_retires_its_path() {
        // n = 5, fan-in 2: participant 4 sits alone in its leaf group, and
        // the leaf's parent chain up to (not including) the root has
        // expectation 1 throughout — eviction must retire the whole path.
        let b = TreeBarrier::new(5);
        b.evict(4).unwrap();
        for e in 0..3u64 {
            let tokens: Vec<_> = (0..4).map(|id| b.arrive(id)).collect();
            for t in tokens {
                assert_eq!(b.wait(t).episode, e);
            }
        }
    }

    #[test]
    fn evict_mid_episode_completes_it() {
        let b = TreeBarrier::new(3);
        let t0 = b.arrive(0);
        let t1 = b.arrive(1);
        b.evict(2).unwrap();
        assert!(b.is_complete(&t0), "stand-in arrival completes episode 0");
        assert_eq!(b.wait(t0).episode, 0);
        assert_eq!(b.wait(t1).episode, 0);
    }

    #[test]
    fn tree_evict_guards() {
        let b = TreeBarrier::new(2);
        assert_eq!(
            b.evict(9).unwrap_err(),
            BarrierError::InvalidParticipant { id: 9, capacity: 2 }
        );
        b.evict(0).unwrap();
        assert_eq!(
            b.evict(0).unwrap_err(),
            BarrierError::NotAParticipant { id: 0 }
        );
        assert_eq!(b.evict(1).unwrap_err(), BarrierError::EmptyGroup);
        let t = b.arrive(1);
        assert_eq!(b.wait(t).episode, 0);
    }

    #[test]
    fn poison_unblocks_tree_waiters() {
        // n = 3: participant 2 never arrives, so neither wait below can be
        // satisfied by completion.
        let b = Arc::new(TreeBarrier::new(3));
        std::thread::scope(|s| {
            let b0 = Arc::clone(&b);
            s.spawn(move || {
                let t = b0.arrive(0);
                let err = b0.wait_deadline(t, Deadline::never()).unwrap_err();
                assert_eq!(err, BarrierError::Poisoned { episode: 0 });
            });
            std::thread::sleep(std::time::Duration::from_millis(5));
            b.poison();
        });
        assert!(b.is_poisoned());
        // wait_with escalation path still reports the timeout distinctly.
        b.clear_poison();
        let t = b.arrive(1);
        let policy = WaitPolicy::new()
            .deadline(std::time::Duration::from_millis(5))
            .on_timeout(OnTimeout::Poison);
        assert!(matches!(
            b.wait_with(t, &policy),
            Err(BarrierError::Timeout { episode: 0 })
        ));
        assert!(b.is_poisoned());
    }

    #[test]
    fn many_threads_many_fanins() {
        for (n, fan_in) in [(3usize, 2usize), (4, 2), (7, 3), (8, 4), (13, 2)] {
            let b = Arc::new(TreeBarrier::with_fan_in(n, fan_in, StallPolicy::default()));
            std::thread::scope(|s| {
                for id in 0..n {
                    let b = Arc::clone(&b);
                    s.spawn(move || {
                        for e in 0..200u64 {
                            let t = b.arrive(id);
                            assert_eq!(b.wait(t).episode, e, "n={n} k={fan_in}");
                        }
                    });
                }
            });
            assert_eq!(b.stats().episodes, 200, "n={n} k={fan_in}");
        }
    }
}
