//! Combining-tree split-phase barrier with configurable fan-in.

use crate::spin::StallPolicy;
use crate::stats::{BarrierStats, StatsSnapshot, TelemetrySnapshot};
use crate::sync::{Atomic, RealSync, SyncOps};
use crate::token::{ArrivalToken, WaitOutcome};
use crate::SplitBarrier;
use fuzzy_util::CachePadded;
use std::sync::atomic::Ordering;

/// A combining-tree barrier: arrivals are counted in a tree of nodes with
/// fan-in `k`, so at most `k` participants ever contend on the same word.
///
/// The last arriver at each node propagates one arrival to its parent; the
/// last arriver at the root publishes the episode, releasing all waiters.
/// Arrival latency is O(log_k n) for the final arriver and O(1) for
/// everyone else, splitting the difference between the centralized design
/// (O(1) instructions, O(n) contention) and dissemination (O(log n)
/// instructions, zero contention).
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::{TreeBarrier, SplitBarrier};
///
/// let b = TreeBarrier::new(1);
/// let t = b.arrive(0);
/// assert!(!b.wait(t).stalled);
/// ```
#[derive(Debug)]
pub struct TreeBarrier<S: SyncOps = RealSync> {
    n: usize,
    fan_in: usize,
    policy: StallPolicy,
    nodes: Vec<CachePadded<Node<S>>>,
    /// Leaf node index for each participant.
    leaf_of: Vec<usize>,
    episode: CachePadded<S::AtomicU64>,
    local_episode: Vec<CachePadded<S::AtomicU64>>,
    stats: BarrierStats,
}

#[derive(Debug)]
struct Node<S: SyncOps> {
    count: S::AtomicUsize,
    expected: usize,
    parent: Option<usize>,
}

impl TreeBarrier {
    /// Creates a binary (fan-in 2) tree barrier for `n` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_fan_in(n, 2, StallPolicy::default())
    }

    /// Creates a tree barrier with explicit fan-in and stall policy.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `fan_in < 2`.
    #[must_use]
    pub fn with_fan_in(n: usize, fan_in: usize, policy: StallPolicy) -> Self {
        Self::with_fan_in_in(n, fan_in, policy)
    }
}

impl<S: SyncOps> TreeBarrier<S> {
    /// Creates a tree barrier in an explicit [`SyncOps`] domain —
    /// `RealSync` in production, instrumented shadow state under the
    /// `fuzzy-check` model checker.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `fan_in < 2`.
    #[must_use]
    pub fn with_fan_in_in(n: usize, fan_in: usize, policy: StallPolicy) -> Self {
        assert!(n > 0, "a barrier needs at least one participant");
        assert!(fan_in >= 2, "fan-in must be at least 2");

        // Build levels bottom-up. Level 0 nodes absorb the participants;
        // each higher level absorbs the level below, until one root remains.
        let mut nodes: Vec<CachePadded<Node<S>>> = Vec::new();
        let mut leaf_of = vec![0usize; n];

        // level 0
        let level0 = n.div_ceil(fan_in);
        for g in 0..level0 {
            let members = members_of_group(n, fan_in, g);
            nodes.push(CachePadded::new(Node {
                count: S::AtomicUsize::new(members),
                expected: members,
                parent: None,
            }));
        }
        for (id, leaf) in leaf_of.iter_mut().enumerate() {
            *leaf = id / fan_in;
        }

        // higher levels
        let mut level_start = 0usize;
        let mut level_len = level0;
        while level_len > 1 {
            let next_len = level_len.div_ceil(fan_in);
            let next_start = nodes.len();
            for g in 0..next_len {
                let members = members_of_group(level_len, fan_in, g);
                nodes.push(CachePadded::new(Node {
                    count: S::AtomicUsize::new(members),
                    expected: members,
                    parent: None,
                }));
            }
            for i in 0..level_len {
                let parent = next_start + i / fan_in;
                nodes[level_start + i].parent = Some(parent);
            }
            level_start = next_start;
            level_len = next_len;
        }

        TreeBarrier {
            n,
            fan_in,
            policy,
            nodes,
            leaf_of,
            episode: CachePadded::new(S::AtomicU64::new(0)),
            local_episode: (0..n)
                .map(|_| CachePadded::new(S::AtomicU64::new(0)))
                .collect(),
            stats: BarrierStats::with_participants(n),
        }
    }

    /// The tree fan-in.
    #[must_use]
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Total number of tree nodes (exposed for tests and diagnostics).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn signal_node(&self, index: usize) {
        let node = &self.nodes[index];
        if node.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Re-arm this node *before* propagating, so participants released
            // by the eventual episode bump find a full counter.
            node.count.store(node.expected, Ordering::Release);
            match node.parent {
                Some(parent) => self.signal_node(parent),
                None => {
                    self.episode.fetch_add(1, Ordering::Release);
                    self.stats.record_episode();
                }
            }
        }
    }
}

fn members_of_group(total: usize, fan_in: usize, group: usize) -> usize {
    let start = group * fan_in;
    fan_in.min(total - start)
}

impl<S: SyncOps> SplitBarrier for TreeBarrier<S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        assert!(
            id < self.n,
            "participant id {id} out of range for {} participants",
            self.n
        );
        let episode = self.local_episode[id].fetch_add(1, Ordering::Relaxed);
        self.stats.record_arrival(id);
        self.signal_node(self.leaf_of[id]);
        ArrivalToken::new(id, episode)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.episode.load(Ordering::Acquire) > token.episode
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        let report = S::wait_until(self.policy, || {
            self.episode.load(Ordering::Acquire) > token.episode
        });
        let outcome = WaitOutcome::from_report(token.episode, report);
        self.stats.record_wait(token.id, &outcome);
        outcome
    }

    fn participants(&self) -> usize {
        self.n
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        self.stats.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn group_membership_math() {
        assert_eq!(members_of_group(5, 2, 0), 2);
        assert_eq!(members_of_group(5, 2, 1), 2);
        assert_eq!(members_of_group(5, 2, 2), 1);
        assert_eq!(members_of_group(7, 4, 1), 3);
    }

    #[test]
    fn tree_shapes() {
        // 1 participant: a single root node.
        assert_eq!(TreeBarrier::new(1).node_count(), 1);
        // 4 participants, fan-in 2: 2 leaves + 1 root.
        assert_eq!(TreeBarrier::new(4).node_count(), 3);
        // 8 participants, fan-in 2: 4 + 2 + 1.
        assert_eq!(TreeBarrier::new(8).node_count(), 7);
        // 9 participants, fan-in 4: 3 leaves + 1 root.
        assert_eq!(
            TreeBarrier::with_fan_in(9, 4, StallPolicy::default()).node_count(),
            4
        );
    }

    #[test]
    #[should_panic(expected = "fan-in")]
    fn fan_in_one_panics() {
        let _ = TreeBarrier::with_fan_in(4, 1, StallPolicy::default());
    }

    #[test]
    fn single_participant() {
        let b = TreeBarrier::new(1);
        for e in 0..4 {
            let t = b.arrive(0);
            assert!(b.is_complete(&t));
            assert_eq!(b.wait(t).episode, e);
        }
    }

    #[test]
    fn many_threads_many_fanins() {
        for (n, fan_in) in [(3usize, 2usize), (4, 2), (7, 3), (8, 4), (13, 2)] {
            let b = Arc::new(TreeBarrier::with_fan_in(n, fan_in, StallPolicy::default()));
            std::thread::scope(|s| {
                for id in 0..n {
                    let b = Arc::clone(&b);
                    s.spawn(move || {
                        for e in 0..200u64 {
                            let t = b.arrive(id);
                            assert_eq!(b.wait(t).episode, e, "n={n} k={fan_in}");
                        }
                    });
                }
            });
            assert_eq!(b.stats().episodes, 200, "n={n} k={fan_in}");
        }
    }
}
