//! Fault tolerance: deadlines, poisoning, and the bounded-wait engine.
//!
//! The paper's protocol assumes every masked processor eventually reaches
//! the barrier; a single stuck stream therefore stalls all of its peers
//! forever. This module supplies the recovery primitives layered on top of
//! the split-phase protocol:
//!
//! - [`Deadline`] / [`WaitPolicy`] bound how long `wait` may stall, turning
//!   a straggler into an observable [`BarrierError::Timeout`] instead of a
//!   silent deadlock.
//! - **Poisoning** (std-`Mutex`-style): a participant that panics mid
//!   episode or calls `abort()` marks the barrier; peers blocked in a
//!   bounded wait unblock with [`BarrierError::Poisoned`].
//! - **Eviction** (Sec. 5 of the paper, in reverse): the same mask shrink
//!   that lets a dynamically terminating stream leave a barrier group is
//!   used to remove a *failed* stream, so survivors re-synchronize on the
//!   next episode.
//!
//! Completion always wins: if an episode completed *and* the barrier was
//! poisoned (or the deadline passed), the wait still returns the successful
//! [`WaitOutcome`] — the synchronization genuinely happened.

use crate::error::BarrierError;
use crate::spin::StallPolicy;
use crate::sync::SyncOps;
use crate::token::WaitOutcome;
use std::time::{Duration, Instant};

/// A point in time after which a blocked `wait` gives up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires: the wait is unbounded, exactly like
    /// plain `wait`.
    #[must_use]
    pub fn never() -> Self {
        Deadline { at: None }
    }

    /// A deadline at an absolute instant.
    #[must_use]
    pub fn at(instant: Instant) -> Self {
        Deadline { at: Some(instant) }
    }

    /// A deadline `timeout` from now. Saturates to [`Deadline::never`] if
    /// the addition overflows the clock.
    #[must_use]
    pub fn after(timeout: Duration) -> Self {
        Deadline {
            at: Instant::now().checked_add(timeout),
        }
    }

    /// The absolute expiry instant, if the deadline is bounded.
    #[must_use]
    pub fn instant(&self) -> Option<Instant> {
        self.at
    }

    /// True once the deadline has passed (never true for
    /// [`Deadline::never`]).
    #[must_use]
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }
}

/// What a waiter does when its deadline expires.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OnTimeout {
    /// Return [`BarrierError::Timeout`] and leave the barrier untouched;
    /// the caller decides what to do (retry, evict the straggler, give up).
    #[default]
    Fail,
    /// Poison the barrier before returning [`BarrierError::Timeout`], so
    /// every other waiter unblocks with [`BarrierError::Poisoned`] instead
    /// of stalling on an episode that will never complete.
    Poison,
}

/// Per-call wait configuration for `SplitBarrier::wait_with`.
///
/// The default policy is an unbounded wait with the barrier's own stall
/// policy — indistinguishable from plain `wait`, minus the panic on poison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitPolicy {
    /// How long the wait may stall before giving up; `None` waits forever.
    pub deadline: Option<Duration>,
    /// Stall policy override for this call; `None` uses the policy the
    /// barrier was constructed with.
    pub backoff: Option<StallPolicy>,
    /// What to do when the deadline expires.
    pub on_timeout: OnTimeout,
}

impl WaitPolicy {
    /// An unbounded wait using the barrier's own stall policy.
    #[must_use]
    pub fn new() -> Self {
        WaitPolicy::default()
    }

    /// Sets the wait deadline (relative; armed when the wait starts).
    #[must_use]
    pub fn deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(timeout);
        self
    }

    /// Overrides the stall policy for this call.
    #[must_use]
    pub fn backoff(mut self, policy: StallPolicy) -> Self {
        self.backoff = Some(policy);
        self
    }

    /// Sets the timeout reaction.
    #[must_use]
    pub fn on_timeout(mut self, action: OnTimeout) -> Self {
        self.on_timeout = action;
        self
    }

    /// Arms the relative deadline into an absolute [`Deadline`].
    #[must_use]
    pub fn arm(&self) -> Deadline {
        match self.deadline {
            Some(timeout) => Deadline::after(timeout),
            None => Deadline::never(),
        }
    }
}

/// A failed bounded wait: the error to surface plus the spin report the
/// backend needs for stall telemetry.
pub(crate) struct FaultedWait {
    pub(crate) error: BarrierError,
    pub(crate) report: crate::spin::SpinReport,
}

/// Drives one poison-aware bounded wait over the sync domain `S`.
///
/// Blocks (per `policy`) until `complete()` holds, `poisoned()` holds, or
/// `deadline` passes. Completion wins over both fault outcomes: the
/// predicates are re-checked after the stall loop exits, in that order, so
/// an episode that completed concurrently with a poison or timeout still
/// reports success.
///
/// Instrumented domains (the model checker's `ShadowSync`) ignore the
/// deadline entirely — a descheduled virtual thread never times out,
/// because wall-clock expiry is nondeterminism the checker must not
/// explore. Poisoning, by contrast, is an ordinary shadow write and is
/// fully explored.
pub(crate) fn guarded_wait<S: SyncOps>(
    policy: StallPolicy,
    deadline: Deadline,
    episode: u64,
    mut complete: impl FnMut() -> bool,
    poisoned: impl Fn() -> bool,
) -> Result<WaitOutcome, FaultedWait> {
    let report = S::wait_until_budget(policy, deadline.instant(), || complete() || poisoned());
    if complete() {
        return Ok(WaitOutcome::from_report(episode, report));
    }
    let error = if poisoned() {
        BarrierError::Poisoned { episode }
    } else {
        BarrierError::Timeout { episode }
    };
    Err(FaultedWait { error, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::RealSync;

    #[test]
    fn never_deadline_does_not_expire() {
        let d = Deadline::never();
        assert!(!d.expired());
        assert!(d.instant().is_none());
    }

    #[test]
    fn after_deadline_expires() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
    }

    #[test]
    fn wait_policy_builder_chains() {
        let p = WaitPolicy::new()
            .deadline(Duration::from_millis(5))
            .backoff(StallPolicy::Spin)
            .on_timeout(OnTimeout::Poison);
        assert_eq!(p.deadline, Some(Duration::from_millis(5)));
        assert_eq!(p.backoff, Some(StallPolicy::Spin));
        assert_eq!(p.on_timeout, OnTimeout::Poison);
        assert!(p.arm().instant().is_some());
        assert!(WaitPolicy::new().arm().instant().is_none());
    }

    #[test]
    fn guarded_wait_completion_wins_over_poison() {
        let r = guarded_wait::<RealSync>(StallPolicy::Spin, Deadline::never(), 7, || true, || true);
        let outcome = r.unwrap_or_else(|_| panic!("completion must win"));
        assert_eq!(outcome.episode, 7);
    }

    #[test]
    fn guarded_wait_reports_poison() {
        let r =
            guarded_wait::<RealSync>(StallPolicy::Spin, Deadline::never(), 3, || false, || true);
        match r {
            Err(fault) => assert_eq!(fault.error, BarrierError::Poisoned { episode: 3 }),
            Ok(_) => panic!("expected poison"),
        }
    }

    /// Regression: the evict-vs-timeout race. A waiter whose peer is
    /// evicted in the same episode must resolve deterministically — either
    /// the eviction's stand-in arrival releases it (`Ok`) or its deadline
    /// fires first (`Err(Timeout)`) — and the episode must be complete
    /// once the eviction returns, so a timed-out waiter's retry succeeds
    /// immediately. It must never hang and never see any third outcome.
    #[test]
    fn evicted_peer_vs_deadline_resolves_deterministically() {
        use crate::centralized::CentralBarrier;
        use crate::fuzzy::SplitBarrier;
        use crate::token::ArrivalToken;
        use std::sync::Arc;

        // Jitter both sides around the same scale so the interleaving
        // lands on every side of the race across iterations.
        for i in 0..50u64 {
            let b = Arc::new(CentralBarrier::with_policy(2, StallPolicy::yielding()));
            let wait_us = 20 * (i % 5);
            let evict_us = 20 * ((i / 5) % 5);
            std::thread::scope(|s| {
                let waiter = {
                    let b = Arc::clone(&b);
                    s.spawn(move || {
                        let token = b.arrive(0);
                        b.wait_deadline(token, Deadline::after(Duration::from_micros(wait_us)))
                    })
                };
                std::thread::sleep(Duration::from_micros(evict_us));
                b.evict(1).expect("peer never arrived, eviction is legal");
                match waiter.join().expect("waiter must not panic") {
                    Ok(outcome) => assert_eq!(outcome.episode, 0),
                    Err(BarrierError::Timeout { episode }) => assert_eq!(episode, 0),
                    Err(other) => panic!("unexpected outcome {other:?}"),
                }
            });
            // The eviction's stand-in arrival completed the episode: a
            // retry probe observes completion without any further waiting.
            assert!(
                b.is_complete(&ArrivalToken::new(0, 0)),
                "episode must be complete once the eviction returned"
            );
        }
    }

    #[test]
    fn guarded_wait_reports_timeout() {
        let r = guarded_wait::<RealSync>(
            StallPolicy::Spin,
            Deadline::after(Duration::from_millis(1)),
            5,
            || false,
            || false,
        );
        match r {
            Err(fault) => {
                assert_eq!(fault.error, BarrierError::Timeout { episode: 5 });
                assert!(fault.report.timed_out);
            }
            Ok(_) => panic!("expected timeout"),
        }
    }
}
