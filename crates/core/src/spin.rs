//! Stall policies: what a participant does when it truly has to wait.
//!
//! The paper's Sec. 8 observes that on the Encore Multimax "the cost of
//! barrier synchronization is mainly due to context saves and restores for
//! the tasks that must be stalled". [`StallPolicy`] lets experiments model
//! that spectrum: pure spinning (cheap stall, the hardware-like case),
//! spin-then-yield, and spin-then-park (expensive stall, the Encore-like
//! case where a stall implies a context switch).

use std::time::{Duration, Instant};

/// How a participant waits once it has exhausted its barrier region and
/// synchronization has not yet occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StallPolicy {
    /// Busy-wait with a CPU relax hint. Models a hardware stall: the
    /// processor simply does not issue instructions.
    Spin,
    /// Spin for `spin_limit` iterations, then call
    /// [`std::thread::yield_now`] between probes.
    SpinYield {
        /// Number of busy-wait probes before yielding the CPU.
        spin_limit: u32,
    },
    /// Spin for `spin_limit` iterations, then sleep in `park_interval`
    /// slices between probes. Models the Encore software implementation
    /// where a stalled task suffers a context save/restore.
    Park {
        /// Number of busy-wait probes before parking.
        spin_limit: u32,
        /// How long each park slice lasts.
        park_interval: Duration,
    },
}

impl StallPolicy {
    /// A spin-then-yield policy with a reasonable default spin budget.
    #[must_use]
    pub fn yielding() -> Self {
        StallPolicy::SpinYield {
            spin_limit: 1 << 10,
        }
    }

    /// A spin-then-park policy with a reasonable default spin budget and a
    /// 50 µs park slice; models an expensive (context-switching) stall.
    #[must_use]
    pub fn parking() -> Self {
        StallPolicy::Park {
            spin_limit: 1 << 8,
            park_interval: Duration::from_micros(50),
        }
    }
}

impl Default for StallPolicy {
    fn default() -> Self {
        StallPolicy::SpinYield {
            spin_limit: 1 << 10,
        }
    }
}

/// Outcome of a [`wait_until`] call: how hard the caller had to wait.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpinReport {
    /// Total number of predicate probes performed (0 means the predicate
    /// held on entry — the fuzzy ideal: no stall at all).
    pub probes: u64,
    /// Whether the policy escalated past pure spinning (a yield or park
    /// happened — the "context switch" the paper wants to avoid).
    pub descheduled: bool,
    /// Wall-clock time spent waiting.
    pub waited: Duration,
    /// Whether the wait gave up because its deadline passed (only ever set
    /// by [`wait_until_budget`]; the predicate did *not* hold on exit).
    pub timed_out: bool,
}

impl SpinReport {
    /// True if the caller never had to wait at all.
    #[must_use]
    pub fn was_instant(&self) -> bool {
        self.probes == 0
    }
}

/// Wait until `pred` returns true, following `policy`.
///
/// Returns a [`SpinReport`] describing the wait. The first probe happens
/// before any timing machinery is set up, so the common fuzzy-barrier fast
/// path (synchronization already happened while the caller was in its
/// barrier region) costs a single predicate call.
pub fn wait_until(policy: StallPolicy, pred: impl FnMut() -> bool) -> SpinReport {
    wait_until_budget(policy, None, pred)
}

/// While pure-spinning, the wall clock is consulted only once every this
/// many probes; an `Instant::now()` per probe would dominate the spin loop.
/// Once the policy deschedules, probes are already slow and every one
/// checks the clock.
const DEADLINE_CHECK_MASK: u64 = (1 << 6) - 1;

/// Bounded variant of [`wait_until`]: waits until `pred` returns true *or*
/// `deadline` passes, whichever comes first.
///
/// With `deadline: None` this is exactly [`wait_until`] — an unbounded
/// wait. On expiry the report has [`SpinReport::timed_out`] set and the
/// predicate did not hold at the final probe. The predicate is always
/// probed at least once more after the deadline check fails, never the
/// other way round, so a satisfied predicate always wins over the clock.
pub fn wait_until_budget(
    policy: StallPolicy,
    deadline: Option<Instant>,
    mut pred: impl FnMut() -> bool,
) -> SpinReport {
    if pred() {
        return SpinReport::default();
    }
    let start = Instant::now();
    let mut probes: u64 = 1;
    let mut descheduled = false;
    let mut timed_out = false;
    loop {
        match policy {
            StallPolicy::Spin => std::hint::spin_loop(),
            StallPolicy::SpinYield { spin_limit } => {
                if probes < u64::from(spin_limit) {
                    std::hint::spin_loop();
                } else {
                    descheduled = true;
                    std::thread::yield_now();
                }
            }
            StallPolicy::Park {
                spin_limit,
                park_interval,
            } => {
                if probes < u64::from(spin_limit) {
                    std::hint::spin_loop();
                } else {
                    descheduled = true;
                    std::thread::sleep(park_interval);
                }
            }
        }
        probes += 1;
        if pred() {
            break;
        }
        if let Some(deadline) = deadline {
            if (descheduled || probes & DEADLINE_CHECK_MASK == 0) && Instant::now() >= deadline {
                timed_out = true;
                break;
            }
        }
    }
    SpinReport {
        probes,
        descheduled,
        waited: start.elapsed(),
        timed_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn immediate_predicate_is_free() {
        let r = wait_until(StallPolicy::Spin, || true);
        assert!(r.was_instant());
        assert_eq!(r.probes, 0);
        assert!(!r.descheduled);
    }

    #[test]
    fn spin_waits_for_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            f2.store(true, Ordering::Release);
        });
        let r = wait_until(StallPolicy::yielding(), || flag.load(Ordering::Acquire));
        h.join().unwrap();
        assert!(r.probes > 0);
        assert!(!r.was_instant());
    }

    #[test]
    fn park_policy_marks_descheduled() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            f2.store(true, Ordering::Release);
        });
        let policy = StallPolicy::Park {
            spin_limit: 4,
            park_interval: Duration::from_micros(100),
        };
        let r = wait_until(policy, || flag.load(Ordering::Acquire));
        h.join().unwrap();
        assert!(r.descheduled, "park policy should have descheduled: {r:?}");
    }

    #[test]
    fn expired_budget_times_out() {
        let deadline = Instant::now() + Duration::from_millis(2);
        let r = wait_until_budget(StallPolicy::yielding(), Some(deadline), || false);
        assert!(r.timed_out, "deadline should have fired: {r:?}");
        // `waited` starts ticking inside the call, a hair after the
        // deadline was anchored — only a loose lower bound is exact.
        assert!(r.waited >= Duration::from_millis(1));
        assert!(!r.was_instant());
    }

    #[test]
    fn satisfied_predicate_beats_the_budget() {
        let deadline = Instant::now() + Duration::from_secs(60);
        let r = wait_until_budget(StallPolicy::Spin, Some(deadline), || true);
        assert!(!r.timed_out);
        assert!(r.was_instant());
    }

    #[test]
    fn budget_still_sees_late_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            f2.store(true, Ordering::Release);
        });
        let deadline = Instant::now() + Duration::from_secs(60);
        let r = wait_until_budget(StallPolicy::yielding(), Some(deadline), || {
            flag.load(Ordering::Acquire)
        });
        h.join().unwrap();
        assert!(!r.timed_out, "flag arrived well before the deadline: {r:?}");
    }

    #[test]
    fn default_policy_is_spin_yield() {
        assert!(matches!(
            StallPolicy::default(),
            StallPolicy::SpinYield { .. }
        ));
    }
}
