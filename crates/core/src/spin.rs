//! Stall policies: what a participant does when it truly has to wait.
//!
//! The paper's Sec. 8 observes that on the Encore Multimax "the cost of
//! barrier synchronization is mainly due to context saves and restores for
//! the tasks that must be stalled". [`StallPolicy`] lets experiments model
//! that spectrum: pure spinning (cheap stall, the hardware-like case),
//! spin-then-yield, and spin-then-park (expensive stall, the Encore-like
//! case where a stall implies a context switch).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How a participant waits once it has exhausted its barrier region and
/// synchronization has not yet occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StallPolicy {
    /// Busy-wait with a CPU relax hint. Models a hardware stall: the
    /// processor simply does not issue instructions.
    Spin,
    /// Spin for `spin_limit` iterations, then call
    /// [`std::thread::yield_now`] between probes.
    SpinYield {
        /// Number of busy-wait probes before yielding the CPU.
        spin_limit: u32,
    },
    /// Spin for `spin_limit` iterations, then sleep in `park_interval`
    /// slices between probes. Models the Encore software implementation
    /// where a stalled task suffers a context save/restore.
    Park {
        /// Number of busy-wait probes before parking.
        spin_limit: u32,
        /// How long each park slice lasts.
        park_interval: Duration,
    },
    /// Size the spin budget from an EWMA of recent wait costs: spin when
    /// recent waits have been short (the budget grows to cover them),
    /// escalate to yielding almost immediately when they have been long
    /// (spinning through a wait that dwarfs a context switch buys
    /// nothing — the Sec. 8 trade-off, decided per barrier at runtime).
    ///
    /// The history lives in an [`AdaptiveSpin`] accumulator owned by the
    /// barrier's statistics block; backends resolve this variant to a
    /// concrete `SpinYield` budget before each wait. Passed directly to
    /// [`wait_until_budget`] (no accumulator in sight) it degrades to
    /// `SpinYield { spin_limit: max_spin }`.
    Adaptive {
        /// Smallest spin budget the EWMA may shrink the policy to.
        min_spin: u32,
        /// Largest spin budget the EWMA may grow the policy to; also the
        /// optimistic budget used before any wait has been observed.
        max_spin: u32,
    },
}

impl StallPolicy {
    /// A spin-then-yield policy with a reasonable default spin budget.
    #[must_use]
    pub fn yielding() -> Self {
        StallPolicy::SpinYield {
            spin_limit: 1 << 10,
        }
    }

    /// A spin-then-park policy with a reasonable default spin budget and a
    /// 50 µs park slice; models an expensive (context-switching) stall.
    #[must_use]
    pub fn parking() -> Self {
        StallPolicy::Park {
            spin_limit: 1 << 8,
            park_interval: Duration::from_micros(50),
        }
    }

    /// An adaptive policy with a reasonable budget range: between 32 and
    /// 4096 spin probes, sized per wait by the barrier's recent history.
    #[must_use]
    pub fn adaptive() -> Self {
        StallPolicy::Adaptive {
            min_spin: 1 << 5,
            max_spin: 1 << 12,
        }
    }
}

impl Default for StallPolicy {
    fn default() -> Self {
        StallPolicy::SpinYield {
            spin_limit: 1 << 10,
        }
    }
}

/// Outcome of a [`wait_until`] call: how hard the caller had to wait.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpinReport {
    /// Total number of predicate probes performed (0 means the predicate
    /// held on entry — the fuzzy ideal: no stall at all).
    pub probes: u64,
    /// Whether the policy escalated past pure spinning (a yield or park
    /// happened — the "context switch" the paper wants to avoid).
    pub descheduled: bool,
    /// Wall-clock time spent waiting.
    pub waited: Duration,
    /// Whether the wait gave up because its deadline passed (only ever set
    /// by [`wait_until_budget`]; the predicate did *not* hold on exit).
    pub timed_out: bool,
}

impl SpinReport {
    /// True if the caller never had to wait at all.
    #[must_use]
    pub fn was_instant(&self) -> bool {
        self.probes == 0
    }
}

/// Wait until `pred` returns true, following `policy`.
///
/// Returns a [`SpinReport`] describing the wait. The first probe happens
/// before any timing machinery is set up, so the common fuzzy-barrier fast
/// path (synchronization already happened while the caller was in its
/// barrier region) costs a single predicate call.
pub fn wait_until(policy: StallPolicy, pred: impl FnMut() -> bool) -> SpinReport {
    wait_until_budget(policy, None, pred)
}

/// While pure-spinning, the wall clock is consulted only once every this
/// many probes; an `Instant::now()` per probe would dominate the spin loop.
/// Once the policy deschedules, probes are already slow and every one
/// checks the clock.
const DEADLINE_CHECK_MASK: u64 = (1 << 6) - 1;

/// How long a parked (or otherwise sleeping) waiter may nap without
/// overshooting `deadline`: the full `interval` when no deadline is armed
/// or it is far away, the remaining budget when the deadline is nearer,
/// and zero once it has passed.
///
/// This is the overshoot clamp shared by every sleep the waiting machinery
/// takes against a deadline: [`wait_until_budget`]'s park slices and the
/// per-round receive naps in `fuzzy-net`'s socket readers both size their
/// sleeps here, so deadline arithmetic lives in exactly one place.
#[must_use]
pub fn clamped_nap(deadline: Option<Instant>, interval: Duration) -> Duration {
    deadline.map_or(interval, |d| {
        d.saturating_duration_since(Instant::now()).min(interval)
    })
}

/// The nearer of two optional deadlines; `None` means unbounded.
///
/// Used to combine an outer wait deadline with a per-round receive budget
/// (a bounded `wait_deadline` must win over a longer round timeout, and
/// vice versa) without re-deriving `Instant` comparisons at each call site.
#[must_use]
pub fn nearest_deadline(a: Option<Instant>, b: Option<Instant>) -> Option<Instant> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Bounded variant of [`wait_until`]: waits until `pred` returns true *or*
/// `deadline` passes, whichever comes first.
///
/// With `deadline: None` this is exactly [`wait_until`] — an unbounded
/// wait. On expiry the report has [`SpinReport::timed_out`] set and the
/// predicate did not hold at the final probe. The predicate is always
/// probed at least once more after the deadline check fails, never the
/// other way round, so a satisfied predicate always wins over the clock.
pub fn wait_until_budget(
    policy: StallPolicy,
    deadline: Option<Instant>,
    mut pred: impl FnMut() -> bool,
) -> SpinReport {
    if pred() {
        return SpinReport::default();
    }
    // Timing is lazy: the clock is only armed when a deadline must be
    // policed or the policy escalates past pure spinning. A no-deadline
    // pure-`Spin` wait therefore performs zero `Instant::now()` calls —
    // the loop is nothing but predicate probes and relax hints — and
    // reports `waited == 0`. For escalating no-deadline waits, `waited`
    // measures from the first deschedule: the portion of the stall that
    // actually costs a context switch, which is the part Sec. 8 prices.
    let mut start: Option<Instant> = deadline.map(|_| Instant::now());
    let mut probes: u64 = 1;
    let mut descheduled = false;
    let mut timed_out = false;
    loop {
        match policy {
            StallPolicy::Spin => std::hint::spin_loop(),
            StallPolicy::SpinYield { spin_limit }
            | StallPolicy::Adaptive {
                // No accumulator here: fall back to the policy's widest
                // (most optimistic) budget and let yielding bound the
                // damage, exactly a `SpinYield { spin_limit: max_spin }`.
                max_spin: spin_limit,
                ..
            } => {
                if probes < u64::from(spin_limit) {
                    std::hint::spin_loop();
                } else {
                    if !descheduled {
                        descheduled = true;
                        start.get_or_insert_with(Instant::now);
                    }
                    std::thread::yield_now();
                }
            }
            StallPolicy::Park {
                spin_limit,
                park_interval,
            } => {
                if probes < u64::from(spin_limit) {
                    std::hint::spin_loop();
                } else {
                    if !descheduled {
                        descheduled = true;
                        start.get_or_insert_with(Instant::now);
                    }
                    // Never sleep past the deadline: a full slice here
                    // would overshoot a nearer `wait_deadline` by up to
                    // one `park_interval`.
                    let nap = clamped_nap(deadline, park_interval);
                    if !nap.is_zero() {
                        std::thread::sleep(nap);
                    }
                }
            }
        }
        probes += 1;
        if pred() {
            break;
        }
        if let Some(deadline) = deadline {
            if (descheduled || probes & DEADLINE_CHECK_MASK == 0) && Instant::now() >= deadline {
                timed_out = true;
                break;
            }
        }
    }
    SpinReport {
        probes,
        descheduled,
        waited: start.map_or(Duration::ZERO, |s| s.elapsed()),
        timed_out,
    }
}

/// Wait-cost history backing [`StallPolicy::Adaptive`]: integer EWMAs of
/// recent per-wait probe counts and descheduled stall time, updated by the
/// statistics layer after every completed wait and consulted by backends
/// to size the *next* wait's spin budget.
///
/// The counters are plain process-wide atomics updated with racy
/// read-modify-write sequences: concurrent observers may each fold their
/// sample against the same previous value and one update may be lost. That
/// is deliberate — this is a sizing heuristic, not synchronization, and it
/// sits outside the `SyncOps` model so the shadow-sync model checker never
/// schedules against it.
#[derive(Debug, Default)]
pub struct AdaptiveSpin {
    /// EWMA of per-wait predicate probes (weight 1/2^[`Self::EWMA_SHIFT`]),
    /// stored in fixed-point: the real value shifted left by
    /// [`Self::EWMA_SHIFT`]. Keeping the fractional bits matters: folding
    /// in integer units would drop any sample below `2^EWMA_SHIFT` on the
    /// way in *and* leave the decay term `prev >> EWMA_SHIFT` stuck at zero
    /// once the average fell below `2^EWMA_SHIFT`, freezing short-wait
    /// history.
    ewma_probes: AtomicU64,
    /// EWMA of per-wait stall time in nanoseconds, same weight and same
    /// fixed-point representation.
    ewma_stall_nanos: AtomicU64,
    /// Number of waits folded in so far.
    observations: AtomicU64,
}

impl AdaptiveSpin {
    /// EWMA weight: each new sample contributes 1/8, so the history spans
    /// roughly the last dozen waits — long enough to smooth jitter, short
    /// enough to track a phase change within an episode or two.
    pub const EWMA_SHIFT: u32 = 3;

    /// Stalls longer than this (50 µs — context-switch scale) are not
    /// worth covering by spinning at all: the budget collapses to
    /// `min_spin` so the waiter deschedules almost immediately.
    pub const SPIN_WORTH_NANOS: u64 = 50_000;

    /// A fresh accumulator with no history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one completed wait (its probe count and stall time) into the
    /// history. The first observation seeds the EWMAs directly so the
    /// policy does not spend its warm-up decaying from zero.
    pub fn observe(&self, probes: u64, stall_nanos: u64) {
        if self.observations.fetch_add(1, Ordering::Relaxed) == 0 {
            self.ewma_probes
                .store(probes << Self::EWMA_SHIFT, Ordering::Relaxed);
            self.ewma_stall_nanos
                .store(stall_nanos << Self::EWMA_SHIFT, Ordering::Relaxed);
            return;
        }
        // In fixed-point (value × 2^EWMA_SHIFT) the fold
        //   next = prev − prev/2^s + sample
        // is exactly next_real = (1 − 1/2^s)·prev_real + sample/2^s with
        // the fractional bits retained, so a run of small samples decays
        // the average all the way down instead of freezing at 2^s.
        let fold = |cell: &AtomicU64, sample: u64| {
            let prev = cell.load(Ordering::Relaxed);
            let shifted = prev - (prev >> Self::EWMA_SHIFT) + sample;
            cell.store(shifted, Ordering::Relaxed);
        };
        fold(&self.ewma_probes, probes);
        fold(&self.ewma_stall_nanos, stall_nanos);
    }

    /// Current probe-count EWMA.
    #[must_use]
    pub fn ewma_probes(&self) -> u64 {
        self.ewma_probes.load(Ordering::Relaxed) >> Self::EWMA_SHIFT
    }

    /// Current stall-time EWMA.
    #[must_use]
    pub fn ewma_stall(&self) -> Duration {
        Duration::from_nanos(self.ewma_stall_nanos.load(Ordering::Relaxed) >> Self::EWMA_SHIFT)
    }

    /// Number of waits observed so far.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations.load(Ordering::Relaxed)
    }

    /// The spin budget the history recommends, clamped to
    /// `[min_spin, max_spin]`: optimistic (`max_spin`) before any wait has
    /// been seen, `min_spin` once stalls run past
    /// [`Self::SPIN_WORTH_NANOS`], and twice the probe EWMA in between
    /// (enough headroom to absorb a typical wait without descheduling).
    #[must_use]
    pub fn spin_budget(&self, min_spin: u32, max_spin: u32) -> u32 {
        if self.observations() == 0 {
            return max_spin;
        }
        if self.ewma_stall_nanos.load(Ordering::Relaxed) >> Self::EWMA_SHIFT
            > Self::SPIN_WORTH_NANOS
        {
            return min_spin;
        }
        let want = self.ewma_probes().saturating_mul(2);
        want.clamp(u64::from(min_spin), u64::from(max_spin)) as u32
    }

    /// Resolves a policy against the history: `Adaptive` becomes a
    /// concrete `SpinYield` sized by [`Self::spin_budget`]; every other
    /// variant passes through untouched.
    #[must_use]
    pub fn resolve(&self, policy: StallPolicy) -> StallPolicy {
        match policy {
            StallPolicy::Adaptive { min_spin, max_spin } => StallPolicy::SpinYield {
                spin_limit: self.spin_budget(min_spin, max_spin),
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn immediate_predicate_is_free() {
        let r = wait_until(StallPolicy::Spin, || true);
        assert!(r.was_instant());
        assert_eq!(r.probes, 0);
        assert!(!r.descheduled);
    }

    #[test]
    fn spin_waits_for_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            f2.store(true, Ordering::Release);
        });
        let r = wait_until(StallPolicy::yielding(), || flag.load(Ordering::Acquire));
        h.join().unwrap();
        assert!(r.probes > 0);
        assert!(!r.was_instant());
    }

    #[test]
    fn park_policy_marks_descheduled() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            f2.store(true, Ordering::Release);
        });
        let policy = StallPolicy::Park {
            spin_limit: 4,
            park_interval: Duration::from_micros(100),
        };
        let r = wait_until(policy, || flag.load(Ordering::Acquire));
        h.join().unwrap();
        assert!(r.descheduled, "park policy should have descheduled: {r:?}");
    }

    #[test]
    fn expired_budget_times_out() {
        let deadline = Instant::now() + Duration::from_millis(2);
        let r = wait_until_budget(StallPolicy::yielding(), Some(deadline), || false);
        assert!(r.timed_out, "deadline should have fired: {r:?}");
        // `waited` starts ticking inside the call, a hair after the
        // deadline was anchored — only a loose lower bound is exact.
        assert!(r.waited >= Duration::from_millis(1));
        assert!(!r.was_instant());
    }

    #[test]
    fn satisfied_predicate_beats_the_budget() {
        let deadline = Instant::now() + Duration::from_secs(60);
        let r = wait_until_budget(StallPolicy::Spin, Some(deadline), || true);
        assert!(!r.timed_out);
        assert!(r.was_instant());
    }

    #[test]
    fn budget_still_sees_late_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            f2.store(true, Ordering::Release);
        });
        let deadline = Instant::now() + Duration::from_secs(60);
        let r = wait_until_budget(StallPolicy::yielding(), Some(deadline), || {
            flag.load(Ordering::Acquire)
        });
        h.join().unwrap();
        assert!(!r.timed_out, "flag arrived well before the deadline: {r:?}");
    }

    #[test]
    fn default_policy_is_spin_yield() {
        assert!(matches!(
            StallPolicy::default(),
            StallPolicy::SpinYield { .. }
        ));
    }

    #[test]
    fn pure_spin_without_deadline_never_reads_the_clock() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            f2.store(true, Ordering::Release);
        });
        let r = wait_until(StallPolicy::Spin, || flag.load(Ordering::Acquire));
        h.join().unwrap();
        assert!(r.probes > 0);
        assert!(!r.descheduled);
        // The clock was never armed: the loop is probes and relax hints
        // only, so the report's `waited` stays at zero by construction.
        assert_eq!(r.waited, Duration::ZERO);
    }

    #[test]
    fn escalated_wait_still_measures_time() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            f2.store(true, Ordering::Release);
        });
        let policy = StallPolicy::Park {
            spin_limit: 1,
            park_interval: Duration::from_millis(1),
        };
        let r = wait_until(policy, || flag.load(Ordering::Acquire));
        h.join().unwrap();
        assert!(r.descheduled);
        assert!(r.waited > Duration::ZERO, "timed from first park: {r:?}");
    }

    #[test]
    fn adaptive_without_history_falls_back_to_max_spin() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            f2.store(true, Ordering::Release);
        });
        let policy = StallPolicy::Adaptive {
            min_spin: 2,
            max_spin: 8,
        };
        let r = wait_until(policy, || flag.load(Ordering::Acquire));
        h.join().unwrap();
        // An 8-probe budget cannot cover a multi-millisecond wait: the
        // stateless fallback must have escalated to yielding.
        assert!(r.descheduled, "{r:?}");
        assert!(r.probes >= 8);
    }

    #[test]
    fn adaptive_history_sizes_the_budget() {
        let adaptive = AdaptiveSpin::new();
        // No history yet: optimistic.
        assert_eq!(adaptive.spin_budget(32, 4096), 4096);
        // Short waits (40 probes, negligible stall): budget covers twice
        // the EWMA.
        adaptive.observe(40, 100);
        assert_eq!(adaptive.observations(), 1);
        assert_eq!(adaptive.spin_budget(32, 4096), 80);
        // Clamped at both ends.
        assert_eq!(adaptive.spin_budget(100, 4096), 100);
        assert_eq!(adaptive.spin_budget(8, 64), 64);
        // Long stalls: collapse to the floor and deschedule early.
        for _ in 0..32 {
            adaptive.observe(10_000, 2 * AdaptiveSpin::SPIN_WORTH_NANOS);
        }
        assert_eq!(adaptive.spin_budget(32, 4096), 32);
        assert!(adaptive.ewma_stall() > Duration::from_micros(50));
    }

    #[test]
    fn short_wait_history_decays_to_min_spin() {
        // Regression: the integer-unit fold dropped samples < 2^EWMA_SHIFT
        // on the way in and could not decay the average below 2^EWMA_SHIFT,
        // so a long run of 1-probe waits left the budget stuck above
        // `min_spin`. In fixed-point the average must converge to ~1 and
        // the budget to the floor.
        let adaptive = AdaptiveSpin::new();
        adaptive.observe(10_000, 0);
        assert_eq!(adaptive.spin_budget(32, 4096), 4096);
        for _ in 0..200 {
            adaptive.observe(1, 1);
        }
        assert!(
            adaptive.ewma_probes() <= 2,
            "probe EWMA should decay to the sample value, got {}",
            adaptive.ewma_probes()
        );
        assert_eq!(
            adaptive.spin_budget(32, 4096),
            32,
            "budget must reach min_spin's neighborhood"
        );
        // And tiny stall samples are not discarded: the stall EWMA tracks
        // a steady 4 ns signal instead of freezing at zero.
        let steady = AdaptiveSpin::new();
        for _ in 0..200 {
            steady.observe(1, 4);
        }
        assert_eq!(steady.ewma_stall(), Duration::from_nanos(4));
    }

    #[test]
    fn clamped_nap_is_the_single_overshoot_clamp() {
        // Regression for the extraction: the helper must reproduce the
        // Park-arm arithmetic exactly — full slice without a deadline,
        // remaining budget when the deadline is nearer than the slice,
        // zero once it has passed — so callers outside this module (the
        // fuzzy-net receive loops) cannot drift from `wait_until_budget`.
        let slice = Duration::from_millis(50);
        assert_eq!(clamped_nap(None, slice), slice);
        let far = Instant::now() + Duration::from_secs(60);
        assert_eq!(clamped_nap(Some(far), slice), slice);
        let near = Instant::now() + Duration::from_millis(5);
        let nap = clamped_nap(Some(near), slice);
        assert!(nap <= Duration::from_millis(5), "nap {nap:?} overshoots");
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(clamped_nap(Some(past), slice), Duration::ZERO);
    }

    #[test]
    fn nearest_deadline_prefers_the_sooner_bound() {
        let now = Instant::now();
        let soon = now + Duration::from_millis(1);
        let late = now + Duration::from_secs(1);
        assert_eq!(nearest_deadline(None, None), None);
        assert_eq!(nearest_deadline(Some(soon), None), Some(soon));
        assert_eq!(nearest_deadline(None, Some(late)), Some(late));
        assert_eq!(nearest_deadline(Some(soon), Some(late)), Some(soon));
        assert_eq!(nearest_deadline(Some(late), Some(soon)), Some(soon));
    }

    #[test]
    fn park_clamps_sleep_to_the_deadline() {
        // Regression: a parked waiter used to sleep a full park_interval
        // even when the deadline was nearer, overshooting by up to one
        // slice. With the clamp, a 200 ms slice must not delay a ~5 ms
        // deadline: the timeout is reported within a fraction of the slice.
        let policy = StallPolicy::Park {
            spin_limit: 1,
            park_interval: Duration::from_millis(200),
        };
        let begin = Instant::now();
        let deadline = begin + Duration::from_millis(5);
        let r = wait_until_budget(policy, Some(deadline), || false);
        let elapsed = begin.elapsed();
        assert!(r.timed_out, "{r:?}");
        assert!(
            elapsed < Duration::from_millis(100),
            "timeout latency {elapsed:?} overshot the 5 ms deadline by most \
             of a 200 ms park slice"
        );
    }

    #[test]
    fn adaptive_resolves_to_spin_yield_and_passes_others_through() {
        let adaptive = AdaptiveSpin::new();
        adaptive.observe(10, 0);
        let resolved = adaptive.resolve(StallPolicy::Adaptive {
            min_spin: 4,
            max_spin: 256,
        });
        assert_eq!(resolved, StallPolicy::SpinYield { spin_limit: 20 });
        assert_eq!(
            adaptive.resolve(StallPolicy::Spin),
            StallPolicy::Spin,
            "non-adaptive policies must pass through untouched"
        );
        assert_eq!(adaptive.resolve(StallPolicy::parking()), {
            StallPolicy::parking()
        });
    }
}
