//! Poll-based (async) waiting on any [`SplitBarrier`] backend.
//!
//! The paper's fuzzy barrier lets a *processor* keep working inside the
//! barrier region instead of stalling. The software analogue at high
//! multiplexing is a **logical participant that parks without pinning an OS
//! thread**: [`AsyncBarrier::arrive_async`] returns a [`BarrierFuture`]
//! that registers a [`Waker`] against the episode instead of spinning, and
//! the completing side drains the waker list on release. `M ≫ N` logical
//! participants can then complete fuzzy episodes multiplexed over `N`
//! worker threads (see `fuzzy-sched`'s episode executor).
//!
//! # The waker protocol
//!
//! All async-frontend probing is serialized under a **probe lock** — the
//! shared [`crate::sync::TicketLock`] over the [`SyncOps`] domain, *not* a
//! `std` mutex, so the `fuzzy-check` model checker can observe (and
//! deschedule through) the lock's spin in its instrumented domain. Under the lock lives a registry
//! of parked waiters (`(id, episode, Waker)` triples).
//!
//! * **Arrive** (sync or async) drains the registry after the backend's
//!   arrival: if this arrival completed an episode, every parked waiter of
//!   that episode is removed and its waker collected.
//! * **Every poll** — including polls that will return `Pending` — runs the
//!   same drain before probing its own token. This is what makes the
//!   frontend safe on *cooperative* backends (dissemination, hier), whose
//!   [`SplitBarrier::is_complete`] help-drives the probed participant's
//!   rounds: a poll may be the last event in the system, so it must push
//!   the whole registry to a fixpoint, not just itself.
//! * **Poison / abort / evict** also drain, so parked waiters observe
//!   faults promptly instead of at their next (never-coming) wakeup.
//!
//! The drain loops to a **fixpoint**: probing one waiter's token can
//! enable another's (a dissemination probe that advances a round sends the
//! next round's signal), and enablement chains ascend one round per sweep
//! in the worst case, so the drain keeps sweeping until `help_rounds + 1`
//! consecutive sweeps make no progress (`help_rounds` defaults to
//! `ceil(log2(participants))`, an upper bound on any backend's round
//! count; for non-cooperative backends it can be set to 0).
//!
//! Collected wakers are invoked **after** the probe lock is released: in
//! the checker's shadow domain a wake is itself a scheduling point, and no
//! schedule may interleave inside the lock.
//!
//! # Lost-wakeup freedom
//!
//! A waiter's probe-then-register and a completer's drain are both
//! critical sections of the probe lock. If the waiter's section runs
//! first, the completer's drain sees the registered entry, probes it
//! complete, and wakes it. If the completer's runs first, the waiter's own
//! probe happens-after the completing arrival (lock release/acquire
//! ordering) and observes completion directly. Participants that arrived
//! but have not yet polled are why every poll drains: they will probe —
//! and help-drive — on their first poll.

use crate::error::BarrierError;
use crate::failure::{Deadline, WaitPolicy};
use crate::fuzzy::SplitBarrier;
use crate::stats::{AsyncSnapshot, AsyncStats, StatsSnapshot, TelemetrySnapshot};
use crate::sync::{RealSync, SyncOps, TicketGuard, TicketLock};
use crate::token::{ArrivalToken, WaitOutcome};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex, PoisonError};
use std::task::{Context, Poll, Waker};
use std::time::Instant;

/// A parked async waiter: which arrival it waits on and how to resume it.
struct Parked {
    id: usize,
    episode: u64,
    waker: Waker,
}

/// An async frontend over any [`SplitBarrier`] backend.
///
/// Wraps a backend and adds [`AsyncBarrier::arrive_async`], which returns
/// a [`BarrierFuture`] completing when the episode releases — without the
/// future's task spinning or blocking a thread. The wrapper still
/// implements [`SplitBarrier`] itself, so sync and async participants can
/// share one barrier (each participant id must stick to one style within
/// an episode).
///
/// Generic over the [`SyncOps`] domain (`RealSync` in production) so the
/// `fuzzy-check` model checker can explore the waker handoff itself.
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::{AsyncBarrier, CentralBarrier, SplitBarrier};
/// use std::future::Future;
/// use std::sync::Arc;
///
/// let barrier = Arc::new(AsyncBarrier::new(CentralBarrier::new(1)));
/// let mut future = barrier.arrive_async(0);
/// // Single participant: the episode is already complete on first poll.
/// let waker = std::task::Waker::noop();
/// let mut cx = std::task::Context::from_waker(waker);
/// match std::pin::Pin::new(&mut future).poll(&mut cx) {
///     std::task::Poll::Ready(Ok(outcome)) => assert_eq!(outcome.episode, 0),
///     other => panic!("expected Ready(Ok(_)), got {other:?}"),
/// }
/// ```
pub struct AsyncBarrier<B: SplitBarrier, S: SyncOps = RealSync> {
    inner: B,
    /// The probe lock: the shared spin-then-yield ticket lock from
    /// [`crate::sync`], whose release RMW re-wakes shadow acquirers.
    probe: TicketLock<S>,
    /// Parked waiters. Only ever accessed while holding the probe lock, so
    /// this std mutex never contends (and never blocks a checker vthread
    /// invisibly).
    registry: Mutex<Vec<Parked>>,
    /// Upper bound on help-driving enablement chain length; see module
    /// docs. 0 means a single no-progress sweep ends the drain.
    help_rounds: usize,
    astats: AsyncStats,
}

impl<B: SplitBarrier> AsyncBarrier<B> {
    /// Wraps `inner` for production use ([`RealSync`]).
    #[must_use]
    pub fn new(inner: B) -> Self {
        Self::new_in(inner)
    }
}

impl<B: SplitBarrier, S: SyncOps> AsyncBarrier<B, S> {
    /// Wraps `inner` in an explicit [`SyncOps`] domain (the checker's
    /// instrumented domain, or [`RealSync`]).
    #[must_use]
    pub fn new_in(inner: B) -> Self {
        let n = inner.participants().max(1);
        // ceil(log2(n)): an upper bound on the round count of any stock
        // cooperative backend (dissemination rounds, hier leader rounds).
        let help_rounds = (usize::BITS - (n - 1).leading_zeros()) as usize;
        AsyncBarrier {
            inner,
            probe: TicketLock::new(),
            registry: Mutex::new(Vec::new()),
            help_rounds,
            astats: AsyncStats::new(),
        }
    }

    /// Overrides the drain's no-progress sweep budget. Use 0 for backends
    /// whose `is_complete` is a pure read (central, counting, tree) — one
    /// sweep that removes nobody is already a fixpoint there.
    #[must_use]
    pub fn with_help_rounds(mut self, rounds: usize) -> Self {
        self.help_rounds = rounds;
        self
    }

    /// Borrows the wrapped backend.
    #[must_use]
    pub fn backend(&self) -> &B {
        &self.inner
    }

    /// Snapshot of the async-frontend counters (parks, resumes, drains,
    /// wakes, polls).
    #[must_use]
    pub fn async_stats(&self) -> AsyncSnapshot {
        self.astats.snapshot()
    }

    /// Arrives *and* returns a future that completes when this episode
    /// releases — the async form of `arrive` + `wait`. The arrival happens
    /// eagerly, here, not on first poll: peers may already be released by
    /// it while the caller's region work runs.
    ///
    /// The future **must be polled to completion** (the async analogue of
    /// the protocol's every-arrival-waits rule); dropping it mid-episode
    /// counts as an abort and poisons the barrier so peers are not left
    /// hanging on a cancelled participant.
    pub fn arrive_async(self: &Arc<Self>, id: usize) -> BarrierFuture<B, S> {
        let token = SplitBarrier::arrive(self.as_ref(), id);
        let episode = token.episode();
        drop(token);
        BarrierFuture {
            barrier: Arc::clone(self),
            id,
            episode,
            parked: false,
            polls: 0,
            first_pending: None,
            done: false,
        }
    }

    /// Acquires the probe lock: a [`TicketLock`] over the `S` domain, so
    /// blocked acquirers deschedule properly under the model checker.
    fn probe_lock(&self) -> TicketGuard<'_, S> {
        self.probe.acquire()
    }

    /// Probes every parked waiter — plus the caller's own token, when
    /// given — to a fixpoint. Must be called with the probe lock held.
    /// Returns the wakers of completed (or fault-released) waiters, to be
    /// invoked *after* the lock is dropped, and whether `own` completed.
    fn drain_locked(&self, own: Option<&ArrivalToken>) -> (Vec<Waker>, bool) {
        self.astats.record_drain();
        let mut woken = Vec::new();
        let mut own_done = false;
        let mut registry = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
        let mut stale = 0usize;
        loop {
            let mut progressed = false;
            let poisoned = self.inner.is_poisoned();
            if let Some(token) = own {
                if !own_done && self.inner.is_complete(token) {
                    own_done = true;
                    progressed = true;
                }
            }
            let mut i = 0;
            while i < registry.len() {
                let done = poisoned || {
                    let entry = &registry[i];
                    let probe = ArrivalToken::new(entry.id, entry.episode);
                    self.inner.is_complete(&probe)
                };
                if done {
                    woken.push(registry.swap_remove(i).waker);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if progressed {
                stale = 0;
            } else {
                stale += 1;
                if stale > self.help_rounds {
                    break;
                }
            }
        }
        (woken, own_done)
    }

    /// Registers (or refreshes) a parked waiter. Must be called with the
    /// probe lock held. Returns true if the waiter was newly parked.
    fn register_locked(&self, id: usize, episode: u64, waker: &Waker) -> bool {
        let mut registry = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
        match registry
            .iter_mut()
            .find(|e| e.id == id && e.episode == episode)
        {
            Some(entry) => {
                entry.waker.clone_from(waker);
                false
            }
            None => {
                registry.push(Parked {
                    id,
                    episode,
                    waker: waker.clone(),
                });
                true
            }
        }
    }

    /// Removes a waiter's entry, if present. Must be called with the probe
    /// lock held.
    fn deregister_locked(&self, id: usize, episode: u64) {
        self.registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|e| !(e.id == id && e.episode == episode));
    }

    /// Drain + wake, used by the completion-producing [`SplitBarrier`]
    /// hooks (arrive, poison, abort, evict).
    fn drain_and_wake(&self) {
        let guard = self.probe_lock();
        let (wakers, _) = self.drain_locked(None);
        drop(guard);
        self.astats.record_wakes(wakers.len() as u64);
        for waker in wakers {
            waker.wake();
        }
    }
}

impl<B: SplitBarrier, S: SyncOps> fmt::Debug for AsyncBarrier<B, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsyncBarrier")
            .field("participants", &self.inner.participants())
            .field("help_rounds", &self.help_rounds)
            .finish_non_exhaustive()
    }
}

/// Every [`SplitBarrier`] completion-producing path drains the parked
/// waiters, so sync and async participants can share one
/// [`AsyncBarrier`].
impl<B: SplitBarrier, S: SyncOps> SplitBarrier for AsyncBarrier<B, S> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        let token = self.inner.arrive(id);
        self.drain_and_wake();
        token
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.inner.is_complete(token)
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        let outcome = self.inner.wait(token);
        // On cooperative backends the blocking wait just performed rounds
        // (flag stores) that may have enabled a parked async waiter whose
        // last drain ran before those stores landed.
        self.drain_and_wake();
        outcome
    }

    fn wait_deadline(
        &self,
        token: ArrivalToken,
        deadline: Deadline,
    ) -> Result<WaitOutcome, BarrierError> {
        let result = self.inner.wait_deadline(token, deadline);
        // Drain on *every* return: even a timed-out cooperative wait may
        // have progressed rounds that enable a parked waiter.
        self.drain_and_wake();
        result
    }

    fn wait_with(
        &self,
        token: ArrivalToken,
        policy: &WaitPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        let result = self.inner.wait_with(token, policy);
        // Drain on every return; this also propagates an
        // `OnTimeout::Poison` fault (poisoned *inside* the inner wait,
        // bypassing our poison hook) to the parked waiters.
        self.drain_and_wake();
        result
    }

    fn poison(&self) {
        self.inner.poison();
        self.drain_and_wake();
    }

    fn clear_poison(&self) {
        self.inner.clear_poison();
    }

    fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    fn abort(&self, token: ArrivalToken) {
        self.inner.abort(token);
        self.drain_and_wake();
    }

    fn evict(&self, id: usize) -> Result<(), BarrierError> {
        let result = self.inner.evict(id);
        if result.is_ok() {
            // The stand-in arrival may have completed the episode.
            self.drain_and_wake();
        }
        result
    }

    fn participants(&self) -> usize {
        self.inner.participants()
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        self.inner.telemetry()
    }
}

/// A future resolving when the episode the participant arrived for
/// releases (or the barrier is poisoned first).
///
/// Created by [`AsyncBarrier::arrive_async`]; the arrival already counted
/// when this future exists. Resolves to `Ok(WaitOutcome)` on release and
/// `Err(BarrierError::Poisoned)` on poisoning (completion wins when both
/// hold). Dropping an unresolved future poisons the barrier — the async
/// form of [`SplitBarrier::abort`].
#[must_use = "an async arrival must be polled to completion"]
pub struct BarrierFuture<B: SplitBarrier, S: SyncOps = RealSync> {
    barrier: Arc<AsyncBarrier<B, S>>,
    id: usize,
    episode: u64,
    /// True once a waker has been registered (we parked at least once).
    parked: bool,
    /// Completion probes performed by this future's polls.
    polls: u64,
    /// When the first pending poll happened; the async stall clock.
    first_pending: Option<Instant>,
    done: bool,
}

impl<B: SplitBarrier, S: SyncOps> BarrierFuture<B, S> {
    /// The participant id this future waits for.
    #[must_use]
    pub fn participant(&self) -> usize {
        self.id
    }

    /// The episode this future waits on.
    #[must_use]
    pub fn episode(&self) -> u64 {
        self.episode
    }
}

impl<B: SplitBarrier, S: SyncOps> fmt::Debug for BarrierFuture<B, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BarrierFuture")
            .field("id", &self.id)
            .field("episode", &self.episode)
            .field("parked", &self.parked)
            .field("done", &self.done)
            .finish()
    }
}

impl<B: SplitBarrier, S: SyncOps> Future for BarrierFuture<B, S> {
    type Output = Result<WaitOutcome, BarrierError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // All fields are Unpin (Arc + plain data), so the future is too.
        let this = Pin::into_inner(self);
        assert!(!this.done, "BarrierFuture polled after completion");
        this.polls += 1;
        this.barrier.astats.record_poll();
        let own = ArrivalToken::new(this.id, this.episode);

        let guard = this.barrier.probe_lock();
        let (wakers, own_done) = this.barrier.drain_locked(Some(&own));
        let result = if own_done {
            // The drain may have collected our own (stale) entry already;
            // deregistering again is a harmless no-op.
            this.barrier.deregister_locked(this.id, this.episode);
            Some(Ok(WaitOutcome {
                episode: this.episode,
                stalled: this.polls > 1,
                descheduled: this.parked,
                probes: this.polls,
                stall_time: this.first_pending.map(|t| t.elapsed()).unwrap_or_default(),
            }))
        } else if this.barrier.inner.is_poisoned() {
            this.barrier.deregister_locked(this.id, this.episode);
            Some(Err(BarrierError::Poisoned {
                episode: this.episode,
            }))
        } else {
            if this
                .barrier
                .register_locked(this.id, this.episode, cx.waker())
            {
                this.barrier.astats.record_parked();
                this.parked = true;
            }
            None
        };
        drop(guard);

        // Cascaded completions are woken outside the lock: in the checker
        // domain a wake is itself a scheduling point.
        this.barrier.astats.record_wakes(wakers.len() as u64);
        for waker in wakers {
            waker.wake();
        }

        match result {
            Some(output) => {
                this.done = true;
                if this.parked {
                    this.barrier.astats.record_resumed();
                }
                Poll::Ready(output)
            }
            None => {
                if this.first_pending.is_none() {
                    this.first_pending = Some(Instant::now());
                }
                Poll::Pending
            }
        }
    }
}

impl<B: SplitBarrier, S: SyncOps> Drop for BarrierFuture<B, S> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        self.probe_and_deregister();
    }
}

impl<B: SplitBarrier, S: SyncOps> BarrierFuture<B, S> {
    /// Drop path: deregister, and poison if the episode had not completed
    /// — an arrival that will never be waited on would otherwise hang its
    /// peers on the next episode (mirrors [`SplitBarrier::abort`]).
    fn probe_and_deregister(&self) {
        let own = ArrivalToken::new(self.id, self.episode);
        let guard = self.barrier.probe_lock();
        self.barrier.deregister_locked(self.id, self.episode);
        let complete = self.barrier.inner.is_complete(&own);
        drop(guard);
        if !complete {
            SplitBarrier::poison(self.barrier.as_ref());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::CentralBarrier;
    use crate::dissemination::DisseminationBarrier;

    fn poll_once<B: SplitBarrier, S: SyncOps>(
        fut: &mut BarrierFuture<B, S>,
    ) -> Poll<Result<WaitOutcome, BarrierError>> {
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        Pin::new(fut).poll(&mut cx)
    }

    #[test]
    fn single_participant_completes_on_first_poll() {
        let b = Arc::new(AsyncBarrier::new(CentralBarrier::new(1)));
        for episode in 0..3 {
            let mut fut = b.arrive_async(0);
            match poll_once(&mut fut) {
                Poll::Ready(Ok(outcome)) => {
                    assert_eq!(outcome.episode, episode);
                    assert!(!outcome.stalled);
                    assert!(!outcome.descheduled);
                }
                other => panic!("expected Ready(Ok(_)), got {other:?}"),
            }
        }
        assert_eq!(b.async_stats().parked, 0);
        assert_eq!(b.async_stats().polls, 3);
    }

    #[test]
    fn pending_until_last_arrival_then_woken() {
        let b = Arc::new(AsyncBarrier::new(CentralBarrier::new(2)));
        let mut fut = b.arrive_async(0);
        assert!(poll_once(&mut fut).is_pending());
        assert_eq!(b.async_stats().parked, 1);
        // The last arrival drains the registry and hands out the waker.
        let token = SplitBarrier::arrive(b.as_ref(), 1);
        assert_eq!(b.async_stats().wakes, 1);
        match poll_once(&mut fut) {
            Poll::Ready(Ok(outcome)) => {
                assert_eq!(outcome.episode, 0);
                assert!(outcome.stalled);
                assert!(outcome.descheduled);
            }
            other => panic!("expected Ready(Ok(_)), got {other:?}"),
        }
        assert_eq!(b.async_stats().resumed, 1);
        let outcome = SplitBarrier::wait(b.as_ref(), token);
        assert_eq!(outcome.episode, 0);
    }

    #[test]
    fn polls_help_drive_cooperative_backends() {
        // Dissemination: all arrivals happen before any poll; the polls
        // alone must drive every participant's rounds to completion.
        let n = 4;
        let b = Arc::new(AsyncBarrier::new(DisseminationBarrier::new(n)));
        let mut futures: Vec<_> = (0..n).map(|id| b.arrive_async(id)).collect();
        let mut resolved = vec![false; n];
        for _ in 0..n + 1 {
            for (id, fut) in futures.iter_mut().enumerate() {
                if resolved[id] {
                    continue;
                }
                if let Poll::Ready(result) = poll_once(fut) {
                    assert_eq!(result.expect("episode completes").episode, 0);
                    resolved[id] = true;
                }
            }
        }
        assert!(
            resolved.iter().all(|&r| r),
            "all waiters resolve: {resolved:?}"
        );
    }

    #[test]
    fn poison_releases_parked_waiters_with_err() {
        let b = Arc::new(AsyncBarrier::new(CentralBarrier::new(2)));
        let mut fut = b.arrive_async(0);
        assert!(poll_once(&mut fut).is_pending());
        SplitBarrier::poison(b.as_ref());
        assert_eq!(b.async_stats().wakes, 1, "poison drains the registry");
        match poll_once(&mut fut) {
            Poll::Ready(Err(BarrierError::Poisoned { episode })) => assert_eq!(episode, 0),
            other => panic!("expected Ready(Err(Poisoned)), got {other:?}"),
        }
    }

    #[test]
    fn dropping_unresolved_future_poisons() {
        let b = Arc::new(AsyncBarrier::new(CentralBarrier::new(2)));
        let fut = b.arrive_async(0);
        drop(fut);
        assert!(SplitBarrier::is_poisoned(b.as_ref()));
        // A resolved future's drop must NOT poison.
        let b = Arc::new(AsyncBarrier::new(CentralBarrier::new(1)));
        let mut fut = b.arrive_async(0);
        assert!(poll_once(&mut fut).is_ready());
        drop(fut);
        assert!(!SplitBarrier::is_poisoned(b.as_ref()));
        // Nor the drop of an unpolled future whose episode completed.
        let fut = b.arrive_async(0);
        drop(fut);
        assert!(!SplitBarrier::is_poisoned(b.as_ref()));
    }

    #[test]
    fn mixed_sync_and_async_participants_agree() {
        let b = Arc::new(AsyncBarrier::new(CentralBarrier::new(3)));
        std::thread::scope(|s| {
            for id in 1..3 {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for episode in 0..50u64 {
                        let token = SplitBarrier::arrive(b.as_ref(), id);
                        let outcome = SplitBarrier::wait(b.as_ref(), token);
                        assert_eq!(outcome.episode, episode);
                    }
                });
            }
            for episode in 0..50u64 {
                let mut fut = b.arrive_async(0);
                loop {
                    if let Poll::Ready(result) = poll_once(&mut fut) {
                        assert_eq!(result.expect("no faults").episode, episode);
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(SplitBarrier::stats(b.as_ref()).episodes, 50);
    }
}
