//! The split-phase barrier trait and the [`FuzzyBarrier`] front door.

use crate::centralized::CentralBarrier;
use crate::error::BarrierError;
use crate::failure::{Deadline, OnTimeout, WaitPolicy};
use crate::spin::StallPolicy;
use crate::stats::{StatsSnapshot, TelemetrySnapshot};
use crate::token::{ArrivalToken, WaitOutcome};

/// A barrier whose synchronization is split into an *arrive* phase and a
/// *wait* phase.
///
/// This is the library form of the paper's fuzzy barrier: between `arrive`
/// and `wait` the participant executes its **barrier region** — work that
/// neither produces values other participants read after the barrier nor
/// consumes values they produce before it. The same split later appeared in
/// `MPI_Ibarrier` and C++20's `std::barrier` `arrive`/`wait` pair.
///
/// # Protocol
///
/// Each participant `id` in `0..n` must, per episode, call `arrive(id)`
/// exactly once and then `wait` on the returned token exactly once, in that
/// order. Tokens are episode-bound, so protocol violations are confined:
/// waiting on an old token returns immediately, and a participant cannot
/// arrive twice for the same episode without having waited (its own episode
/// counter advances only on arrival).
///
/// # Panics
///
/// Implementations panic if `id >= n`; participant ids are dense indices
/// chosen at construction time, so an out-of-range id is a program bug, not
/// a recoverable condition.
pub trait SplitBarrier: Send + Sync {
    /// Announces that participant `id` is ready to synchronize and returns
    /// the token for this episode. Never blocks.
    fn arrive(&self, id: usize) -> ArrivalToken;

    /// Returns true if the episode named by `token` has completed, without
    /// blocking. The fuzzy analogue of peeking at the hardware "synchronized"
    /// state bit.
    fn is_complete(&self, token: &ArrivalToken) -> bool;

    /// Blocks (per the backend's [`StallPolicy`]) until the episode named by
    /// `token` completes.
    ///
    /// If the barrier is poisoned before the episode completes,
    /// implementations with poison support **panic** (like unwrapping a
    /// poisoned `std::sync::Mutex`); use [`Self::wait_deadline`] or
    /// [`Self::wait_with`] to observe poisoning as an error instead.
    fn wait(&self, token: ArrivalToken) -> WaitOutcome;

    /// Bounded, poison-aware wait: blocks until the episode named by
    /// `token` completes, the barrier is poisoned
    /// ([`BarrierError::Poisoned`]), or `deadline` passes
    /// ([`BarrierError::Timeout`]). Completion wins over both faults.
    ///
    /// On `Err` the arrival still counted — the caller may probe again
    /// later (via a fresh bounded wait on a reconstructed token is *not*
    /// possible; tokens are consumed), [`Self::evict`] the straggler so the
    /// episode completes, or [`Self::poison`] the barrier to release peers.
    ///
    /// The default implementation ignores the deadline and cannot observe
    /// poison (it delegates to plain [`Self::wait`]); the four stock
    /// backends override it.
    fn wait_deadline(
        &self,
        token: ArrivalToken,
        deadline: Deadline,
    ) -> Result<WaitOutcome, BarrierError> {
        let _ = deadline;
        Ok(self.wait(token))
    }

    /// Waits under a full [`WaitPolicy`]: optional deadline, optional stall
    /// policy override, and a timeout reaction (for
    /// [`OnTimeout::Poison`], the barrier is poisoned before the
    /// [`BarrierError::Timeout`] is returned, releasing every other
    /// waiter).
    ///
    /// The default implementation layers the timeout reaction over
    /// [`Self::wait_deadline`]; backends override it to also honor the
    /// `backoff` override.
    fn wait_with(
        &self,
        token: ArrivalToken,
        policy: &WaitPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        let result = self.wait_deadline(token, policy.arm());
        if matches!(result, Err(BarrierError::Timeout { .. }))
            && policy.on_timeout == OnTimeout::Poison
        {
            self.poison();
        }
        result
    }

    /// Poisons the barrier: every current and future bounded wait returns
    /// [`BarrierError::Poisoned`] (and plain [`Self::wait`] panics) until
    /// [`Self::clear_poison`]. Completion still wins for episodes that
    /// manage to complete. The default implementation is a no-op for
    /// backends without poison support.
    fn poison(&self) {}

    /// Clears a poisoned barrier (like `std::sync::Mutex::clear_poison`),
    /// typically after the failed participant has been [`Self::evict`]ed
    /// and recovery is complete.
    fn clear_poison(&self) {}

    /// True if the barrier is currently poisoned.
    fn is_poisoned(&self) -> bool {
        false
    }

    /// Abandons an episode from inside it: consumes the token and poisons
    /// the barrier. The aborter's arrival already counted, so the in-flight
    /// episode may still complete — but the aborter will never arrive
    /// again, so without poisoning its peers would hang on the *next*
    /// episode. Call this on a panic path before unwinding past
    /// barrier-using code (the `sched` executor does exactly that for
    /// panicking workers).
    fn abort(&self, token: ArrivalToken) {
        drop(token);
        self.poison();
    }

    /// Permanently removes participant `id` from the barrier — the paper's
    /// Sec. 5 mask shrink applied to a *failed* stream: survivors
    /// re-synchronize without it from the in-flight episode onward.
    ///
    /// The evicted participant must **not** have arrived for the in-flight
    /// episode (evict stragglers that are stuck *before* their arrival; a
    /// participant that already arrived will have its arrival double
    /// counted). Eviction is permanent: ids are never reused. Evicting the
    /// last live participant fails with [`BarrierError::EmptyGroup`];
    /// evicting twice fails with [`BarrierError::NotAParticipant`].
    ///
    /// The default implementation reports
    /// [`BarrierError::EvictionUnsupported`].
    fn evict(&self, id: usize) -> Result<(), BarrierError> {
        let _ = id;
        Err(BarrierError::EvictionUnsupported)
    }

    /// Number of participants.
    fn participants(&self) -> usize;

    /// Snapshot of this barrier's accumulated statistics.
    fn stats(&self) -> StatsSnapshot;

    /// Full telemetry snapshot: flat counters plus stall histogram,
    /// arrival spread and per-participant counters. Backends that track
    /// only flat counters fall back to wrapping [`Self::stats`] with empty
    /// telemetry.
    fn telemetry(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::from_base(self.stats())
    }

    /// Arrive and immediately wait: the classic single-point barrier the
    /// paper compares against (a fuzzy barrier with an empty region).
    fn point(&self, id: usize) -> WaitOutcome {
        let token = self.arrive(id);
        self.wait(token)
    }

    /// Runs `region` between arrive and wait — the canonical fuzzy-barrier
    /// shape. Returns the region's result together with the wait outcome.
    fn fuzzy<R>(&self, id: usize, region: impl FnOnce() -> R) -> (R, WaitOutcome)
    where
        Self: Sized,
    {
        let token = self.arrive(id);
        let value = region();
        let outcome = self.wait(token);
        (value, outcome)
    }
}

/// A shared barrier is a barrier: delegating through [`std::sync::Arc`]
/// lets generic layers (the async frontend, the checker's scenarios) wrap
/// an `Arc<dyn SplitBarrier>` or `Arc<ConcreteBackend>` without caring
/// which they were handed.
impl<B: SplitBarrier + ?Sized> SplitBarrier for std::sync::Arc<B> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        (**self).arrive(id)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        (**self).is_complete(token)
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        (**self).wait(token)
    }

    fn wait_deadline(
        &self,
        token: ArrivalToken,
        deadline: Deadline,
    ) -> Result<WaitOutcome, BarrierError> {
        (**self).wait_deadline(token, deadline)
    }

    fn wait_with(
        &self,
        token: ArrivalToken,
        policy: &WaitPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        (**self).wait_with(token, policy)
    }

    fn poison(&self) {
        (**self).poison();
    }

    fn clear_poison(&self) {
        (**self).clear_poison();
    }

    fn is_poisoned(&self) -> bool {
        (**self).is_poisoned()
    }

    fn abort(&self, token: ArrivalToken) {
        (**self).abort(token);
    }

    fn evict(&self, id: usize) -> Result<(), BarrierError> {
        (**self).evict(id)
    }

    fn participants(&self) -> usize {
        (**self).participants()
    }

    fn stats(&self) -> StatsSnapshot {
        (**self).stats()
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        (**self).telemetry()
    }
}

/// The default fuzzy barrier: a [`SplitBarrier`] backend (centralized
/// sense-reversing by default) behind a thin, well-documented front door.
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::{FuzzyBarrier, SplitBarrier};
/// use std::sync::Arc;
///
/// let barrier = Arc::new(FuzzyBarrier::new(2));
/// std::thread::scope(|s| {
///     for id in 0..2 {
///         let b = Arc::clone(&barrier);
///         s.spawn(move || {
///             let token = b.arrive(id);
///             // barrier region: overlap work with synchronization
///             let outcome = b.wait(token);
///             assert_eq!(outcome.episode, 0);
///         });
///     }
/// });
/// ```
#[derive(Debug)]
pub struct FuzzyBarrier<B: SplitBarrier = CentralBarrier> {
    inner: B,
}

impl FuzzyBarrier<CentralBarrier> {
    /// Creates a fuzzy barrier for `n` participants with the default
    /// (centralized sense-reversing) backend and default stall policy.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        FuzzyBarrier {
            inner: CentralBarrier::new(n),
        }
    }

    /// Creates a fuzzy barrier with an explicit stall policy.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_policy(n: usize, policy: StallPolicy) -> Self {
        FuzzyBarrier {
            inner: CentralBarrier::with_policy(n, policy),
        }
    }
}

impl<B: SplitBarrier> FuzzyBarrier<B> {
    /// Wraps an arbitrary backend.
    #[must_use]
    pub fn from_backend(backend: B) -> Self {
        FuzzyBarrier { inner: backend }
    }

    /// Borrows the underlying backend.
    #[must_use]
    pub fn backend(&self) -> &B {
        &self.inner
    }

    /// Unwraps the underlying backend.
    #[must_use]
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: SplitBarrier> SplitBarrier for FuzzyBarrier<B> {
    fn arrive(&self, id: usize) -> ArrivalToken {
        self.inner.arrive(id)
    }

    fn is_complete(&self, token: &ArrivalToken) -> bool {
        self.inner.is_complete(token)
    }

    fn wait(&self, token: ArrivalToken) -> WaitOutcome {
        self.inner.wait(token)
    }

    fn wait_deadline(
        &self,
        token: ArrivalToken,
        deadline: Deadline,
    ) -> Result<WaitOutcome, BarrierError> {
        self.inner.wait_deadline(token, deadline)
    }

    fn wait_with(
        &self,
        token: ArrivalToken,
        policy: &WaitPolicy,
    ) -> Result<WaitOutcome, BarrierError> {
        self.inner.wait_with(token, policy)
    }

    fn poison(&self) {
        self.inner.poison();
    }

    fn clear_poison(&self) {
        self.inner.clear_poison();
    }

    fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    fn abort(&self, token: ArrivalToken) {
        self.inner.abort(token);
    }

    fn evict(&self, id: usize) -> Result<(), BarrierError> {
        self.inner.evict(id)
    }

    fn participants(&self) -> usize {
        self.inner.participants()
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        self.inner.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_participant_never_stalls() {
        let b = FuzzyBarrier::new(1);
        for episode in 0..10 {
            let t = b.arrive(0);
            assert_eq!(t.episode(), episode);
            assert!(b.is_complete(&t));
            let o = b.wait(t);
            assert!(!o.stalled);
            assert_eq!(o.episode, episode);
        }
        assert_eq!(b.stats().episodes, 10);
    }

    #[test]
    fn fuzzy_helper_runs_region_between_phases() {
        let b = FuzzyBarrier::new(1);
        let (value, outcome) = b.fuzzy(0, || 41 + 1);
        assert_eq!(value, 42);
        assert_eq!(outcome.episode, 0);
    }

    #[test]
    fn point_is_arrive_plus_wait() {
        let b = FuzzyBarrier::new(1);
        let o = b.point(0);
        assert_eq!(o.episode, 0);
        assert_eq!(b.stats().episodes, 1);
    }

    #[test]
    fn two_threads_many_episodes() {
        let b = Arc::new(FuzzyBarrier::new(2));
        std::thread::scope(|s| {
            for id in 0..2 {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for e in 0..1000u64 {
                        let t = b.arrive(id);
                        assert_eq!(t.episode(), e);
                        let o = b.wait(t);
                        assert_eq!(o.episode, e);
                    }
                });
            }
        });
        assert_eq!(b.stats().episodes, 1000);
        assert_eq!(b.stats().arrivals, 2000);
    }
}
