//! High-level phased execution: scoped threads stepping through
//! barrier-separated phases with explicit barrier regions.
//!
//! This is the ergonomic layer over the split-phase protocol — the shape
//! the paper's compiler generates (work, arrive, region, wait), packaged
//! for hand-written Rust the way a programmer "may be able to construct
//! barrier regions while coding an application" (Sec. 4).

use crate::centralized::CentralBarrier;
use crate::spin::StallPolicy;
use crate::stats::StatsSnapshot;
use crate::SplitBarrier;
use std::sync::Arc;

/// Per-thread context handed to the phase closure.
#[derive(Debug)]
pub struct PhaseCtx {
    id: usize,
    phase: u64,
    barrier: Arc<CentralBarrier>,
    /// Whether `barrier_region` has been called this phase.
    sealed: bool,
}

impl PhaseCtx {
    /// This thread's participant id.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The current phase number (0-based).
    #[must_use]
    pub fn phase(&self) -> u64 {
        self.phase
    }

    /// Ends the phase's non-barrier work and runs `region` as the barrier
    /// region: the synchronization overlaps it. Returns the region's
    /// value. Call at most once per phase; if not called, the executor
    /// synchronizes with an empty region (a point barrier).
    pub fn barrier_region<R>(&mut self, region: impl FnOnce() -> R) -> R {
        let token = self.barrier.arrive(self.id);
        let value = region();
        self.barrier.wait(token);
        self.sealed = true;
        value
    }
}

/// Runs `phases` barrier-separated phases on `threads` scoped threads.
///
/// Each phase calls `body(&mut ctx)`; the body does its non-barrier work
/// and then (optionally) calls [`PhaseCtx::barrier_region`] with the work
/// that may overlap synchronization. If the body returns without calling
/// it, an empty barrier region is synchronized automatically, so phases
/// always stay aligned across threads.
///
/// Returns the barrier's accumulated statistics.
///
/// # Panics
///
/// Panics if `threads == 0`. Panics in the body propagate after all
/// threads are joined (standard `std::thread::scope` behaviour).
///
/// # Examples
///
/// ```
/// use fuzzy_barrier::phased::run_phases;
///
/// let stats = run_phases(4, 10, fuzzy_barrier::StallPolicy::default(), |ctx| {
///     // non-barrier work for this phase ...
///     let _ = ctx.id();
///     ctx.barrier_region(|| {
///         // work overlapping the synchronization ...
///     });
/// });
/// assert_eq!(stats.episodes, 10);
/// ```
pub fn run_phases<F>(threads: usize, phases: u64, policy: StallPolicy, body: F) -> StatsSnapshot
where
    F: Fn(&mut PhaseCtx) + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let barrier = Arc::new(CentralBarrier::with_policy(threads, policy));
    let body = &body;
    std::thread::scope(|s| {
        for id in 0..threads {
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                for phase in 0..phases {
                    let mut ctx = PhaseCtx {
                        id,
                        phase,
                        barrier: Arc::clone(&barrier),
                        sealed: false,
                    };
                    body(&mut ctx);
                    if !ctx.sealed {
                        // The body did no explicit region: point barrier.
                        let token = barrier.arrive(id);
                        barrier.wait(token);
                    }
                }
            });
        }
    });
    barrier.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn phases_stay_aligned_without_explicit_region() {
        let stats = run_phases(3, 7, StallPolicy::default(), |_ctx| {});
        assert_eq!(stats.episodes, 7);
        assert_eq!(stats.arrivals, 21);
    }

    #[test]
    fn explicit_regions_count_once_per_phase() {
        let counter = AtomicU64::new(0);
        let stats = run_phases(2, 5, StallPolicy::default(), |ctx| {
            ctx.barrier_region(|| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(stats.episodes, 5);
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn ctx_reports_identity_and_phase() {
        let seen = std::sync::Mutex::new(Vec::new());
        run_phases(2, 3, StallPolicy::default(), |ctx| {
            seen.lock().unwrap().push((ctx.id(), ctx.phase()));
            ctx.barrier_region(|| {});
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
    }

    #[test]
    fn region_value_is_returned() {
        run_phases(1, 1, StallPolicy::default(), |ctx| {
            let v = ctx.barrier_region(|| 17);
            assert_eq!(v, 17);
        });
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = run_phases(0, 1, StallPolicy::default(), |_| {});
    }
}
