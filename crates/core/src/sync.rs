//! The synchronization-primitive abstraction the barrier backends are
//! written against.
//!
//! Every spin point and every shared atomic word in the four core backends
//! goes through [`SyncOps`]. In production code the only implementation that
//! exists is [`RealSync`], whose associated types are the `std::sync::atomic`
//! types themselves and whose [`SyncOps::wait_until`] is
//! [`crate::spin::wait_until`] — the abstraction monomorphizes away entirely
//! and the release hot path is byte-for-byte what it was before the
//! abstraction existed.
//!
//! The point of the indirection is *checkability*: the `fuzzy-check` crate
//! provides a second implementation whose atomics report every access to a
//! deterministic scheduler, letting a model checker drive the real backend
//! code through systematically chosen interleavings (deadlock, lost-wakeup
//! and fuzzy-semantics detection — see the repository's Verification docs).

use crate::spin::{self, SpinReport, StallPolicy};
use std::fmt::Debug;
use std::sync::atomic::{self, Ordering};
use std::time::Instant;

/// An atomic cell holding a value of type `T`.
///
/// The method set is exactly the subset of the `std::sync::atomic` API the
/// barrier backends use; orderings are passed through untouched so the
/// production instantiation keeps the backends' audited ordering story.
pub trait Atomic<T: Copy>: Send + Sync + Debug {
    /// Creates a cell holding `value`.
    fn new(value: T) -> Self;
    /// Atomically loads the value.
    fn load(&self, order: Ordering) -> T;
    /// Atomically stores `value`.
    fn store(&self, value: T, order: Ordering);
    /// Atomically adds `value`, returning the previous value.
    fn fetch_add(&self, value: T, order: Ordering) -> T;
    /// Atomically subtracts `value`, returning the previous value.
    fn fetch_sub(&self, value: T, order: Ordering) -> T;
    /// Atomically stores the maximum of the current and `value`, returning
    /// the previous value.
    fn fetch_max(&self, value: T, order: Ordering) -> T;
}

/// A family of synchronization primitives: atomic words plus the blocking
/// wait primitive.
///
/// Backends are generic over an implementation of this trait (defaulting to
/// [`RealSync`]), which is what lets the `fuzzy-check` model checker
/// substitute instrumented shadow state without touching backend logic.
pub trait SyncOps: Send + Sync + Debug + 'static {
    /// The `u32`-valued atomic word.
    type AtomicU32: Atomic<u32>;
    /// The `u64`-valued atomic word.
    type AtomicU64: Atomic<u64>;
    /// The `usize`-valued atomic word.
    type AtomicUsize: Atomic<usize>;

    /// Waits until `pred` returns true, following `policy`.
    ///
    /// This is the backends' single blocking primitive; instrumented
    /// implementations may ignore `policy` and instead deschedule the
    /// virtual thread until shared state changes.
    fn wait_until(policy: StallPolicy, pred: impl FnMut() -> bool) -> SpinReport;

    /// Bounded variant of [`Self::wait_until`]: gives up (with
    /// [`SpinReport::timed_out`] set) once `deadline` passes.
    ///
    /// The default implementation ignores the deadline and waits forever —
    /// this is deliberately what the model checker's instrumented domain
    /// inherits: a descheduled virtual thread must never time out, because
    /// wall-clock expiry is nondeterminism the checker cannot explore.
    /// Deadline behavior is exercised by real-time tests over [`RealSync`],
    /// which overrides this with [`crate::spin::wait_until_budget`].
    fn wait_until_budget(
        policy: StallPolicy,
        deadline: Option<Instant>,
        pred: impl FnMut() -> bool,
    ) -> SpinReport {
        let _ = deadline;
        Self::wait_until(policy, pred)
    }
}

macro_rules! impl_real_atomic {
    ($ty:ty, $atomic:ty) => {
        impl Atomic<$ty> for $atomic {
            #[inline(always)]
            fn new(value: $ty) -> Self {
                <$atomic>::new(value)
            }
            #[inline(always)]
            fn load(&self, order: Ordering) -> $ty {
                <$atomic>::load(self, order)
            }
            #[inline(always)]
            fn store(&self, value: $ty, order: Ordering) {
                <$atomic>::store(self, value, order);
            }
            #[inline(always)]
            fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                <$atomic>::fetch_add(self, value, order)
            }
            #[inline(always)]
            fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                <$atomic>::fetch_sub(self, value, order)
            }
            #[inline(always)]
            fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                <$atomic>::fetch_max(self, value, order)
            }
        }
    };
}

impl_real_atomic!(u32, atomic::AtomicU32);
impl_real_atomic!(u64, atomic::AtomicU64);
impl_real_atomic!(usize, atomic::AtomicUsize);

/// The production [`SyncOps`]: real `std::sync::atomic` words and the
/// [`crate::spin`] stall machinery. Zero-cost — everything inlines to the
/// pre-abstraction code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RealSync;

impl SyncOps for RealSync {
    type AtomicU32 = atomic::AtomicU32;
    type AtomicU64 = atomic::AtomicU64;
    type AtomicUsize = atomic::AtomicUsize;

    #[inline(always)]
    fn wait_until(policy: StallPolicy, pred: impl FnMut() -> bool) -> SpinReport {
        spin::wait_until(policy, pred)
    }

    #[inline(always)]
    fn wait_until_budget(
        policy: StallPolicy,
        deadline: Option<Instant>,
        pred: impl FnMut() -> bool,
    ) -> SpinReport {
        spin::wait_until_budget(policy, deadline, pred)
    }
}

/// A ticket lock over the `S` domain with spin-then-yield acquisition.
///
/// This is the one shared home for the acquisition loop that used to be
/// duplicated between the async frontend's probe lock and the stall
/// machinery: take a ticket with an RMW, then — only if the lock is held —
/// wait for the serving word with [`StallPolicy::yielding`]. Never pure
/// spin: the holder may be another worker thread on the same core, and a
/// pure spinner would burn its whole OS timeslice while the holder sits
/// descheduled. Release is a `fetch_add` (an RMW, not a plain store) so
/// the `fuzzy-check` shadow domain sees a write-generation bump that
/// re-wakes descheduled acquirers.
///
/// The lock guards no data of its own; callers pair it with state that is
/// only touched while a [`TicketGuard`] is alive (the async frontend's
/// waker registry, for example).
#[derive(Debug)]
pub struct TicketLock<S: SyncOps = RealSync> {
    ticket: S::AtomicU64,
    serving: S::AtomicU64,
}

impl<S: SyncOps> Default for TicketLock<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: SyncOps> TicketLock<S> {
    /// Creates an unlocked ticket lock.
    #[must_use]
    pub fn new() -> Self {
        TicketLock {
            ticket: S::AtomicU64::new(0),
            serving: S::AtomicU64::new(0),
        }
    }

    /// Acquires the lock, FIFO-fair by ticket order.
    #[must_use]
    pub fn acquire(&self) -> TicketGuard<'_, S> {
        let ticket = self.ticket.fetch_add(1, Ordering::AcqRel);
        if self.serving.load(Ordering::Acquire) != ticket {
            S::wait_until(StallPolicy::yielding(), || {
                self.serving.load(Ordering::Acquire) == ticket
            });
        }
        TicketGuard { lock: self }
    }
}

/// RAII release of a [`TicketLock`].
#[derive(Debug)]
pub struct TicketGuard<'a, S: SyncOps> {
    lock: &'a TicketLock<S>,
}

impl<S: SyncOps> Drop for TicketGuard<'_, S> {
    fn drop(&mut self) {
        self.lock.serving.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<A: Atomic<u64>>() {
        let a = A::new(3);
        assert_eq!(a.load(Ordering::Acquire), 3);
        a.store(5, Ordering::Release);
        assert_eq!(a.fetch_add(2, Ordering::AcqRel), 5);
        assert_eq!(a.fetch_sub(1, Ordering::AcqRel), 7);
        assert_eq!(a.fetch_max(100, Ordering::AcqRel), 6);
        assert_eq!(a.load(Ordering::Acquire), 100);
    }

    #[test]
    fn real_atomics_behave_like_std() {
        roundtrip::<<RealSync as SyncOps>::AtomicU64>();
    }

    #[test]
    fn real_wait_until_delegates_to_spin() {
        let r = RealSync::wait_until(StallPolicy::Spin, || true);
        assert!(r.was_instant());
    }

    #[test]
    fn real_wait_until_budget_honors_deadline() {
        let deadline = Instant::now() + std::time::Duration::from_millis(1);
        let r = RealSync::wait_until_budget(StallPolicy::yielding(), Some(deadline), || false);
        assert!(r.timed_out);
    }

    #[test]
    fn ticket_lock_is_reentrant_free_and_sequential() {
        let lock: TicketLock = TicketLock::new();
        for _ in 0..3 {
            let guard = lock.acquire();
            drop(guard);
        }
        // After three acquire/release pairs the words agree again.
        assert_eq!(lock.ticket.load(Ordering::Acquire), 3);
        assert_eq!(lock.serving.load(Ordering::Acquire), 3);
    }

    #[test]
    fn ticket_lock_excludes_concurrent_holders() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let lock: Arc<TicketLock> = Arc::new(TicketLock::new());
        let inside = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let inside = Arc::clone(&inside);
                s.spawn(move || {
                    for _ in 0..200 {
                        let guard = lock.acquire();
                        assert_eq!(inside.fetch_add(1, Ordering::AcqRel), 0, "lock held twice");
                        inside.fetch_sub(1, Ordering::AcqRel);
                        drop(guard);
                    }
                });
            }
        });
        assert_eq!(inside.load(Ordering::Acquire), 0);
    }
}
