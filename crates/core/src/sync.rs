//! The synchronization-primitive abstraction the barrier backends are
//! written against.
//!
//! Every spin point and every shared atomic word in the four core backends
//! goes through [`SyncOps`]. In production code the only implementation that
//! exists is [`RealSync`], whose associated types are the `std::sync::atomic`
//! types themselves and whose [`SyncOps::wait_until`] is
//! [`crate::spin::wait_until`] — the abstraction monomorphizes away entirely
//! and the release hot path is byte-for-byte what it was before the
//! abstraction existed.
//!
//! The point of the indirection is *checkability*: the `fuzzy-check` crate
//! provides a second implementation whose atomics report every access to a
//! deterministic scheduler, letting a model checker drive the real backend
//! code through systematically chosen interleavings (deadlock, lost-wakeup
//! and fuzzy-semantics detection — see the repository's Verification docs).

use crate::spin::{self, SpinReport, StallPolicy};
use std::fmt::Debug;
use std::sync::atomic::{self, Ordering};
use std::time::Instant;

/// An atomic cell holding a value of type `T`.
///
/// The method set is exactly the subset of the `std::sync::atomic` API the
/// barrier backends use; orderings are passed through untouched so the
/// production instantiation keeps the backends' audited ordering story.
pub trait Atomic<T: Copy>: Send + Sync + Debug {
    /// Creates a cell holding `value`.
    fn new(value: T) -> Self;
    /// Atomically loads the value.
    fn load(&self, order: Ordering) -> T;
    /// Atomically stores `value`.
    fn store(&self, value: T, order: Ordering);
    /// Atomically adds `value`, returning the previous value.
    fn fetch_add(&self, value: T, order: Ordering) -> T;
    /// Atomically subtracts `value`, returning the previous value.
    fn fetch_sub(&self, value: T, order: Ordering) -> T;
    /// Atomically stores the maximum of the current and `value`, returning
    /// the previous value.
    fn fetch_max(&self, value: T, order: Ordering) -> T;
}

/// A family of synchronization primitives: atomic words plus the blocking
/// wait primitive.
///
/// Backends are generic over an implementation of this trait (defaulting to
/// [`RealSync`]), which is what lets the `fuzzy-check` model checker
/// substitute instrumented shadow state without touching backend logic.
pub trait SyncOps: Send + Sync + Debug + 'static {
    /// The `u32`-valued atomic word.
    type AtomicU32: Atomic<u32>;
    /// The `u64`-valued atomic word.
    type AtomicU64: Atomic<u64>;
    /// The `usize`-valued atomic word.
    type AtomicUsize: Atomic<usize>;

    /// Waits until `pred` returns true, following `policy`.
    ///
    /// This is the backends' single blocking primitive; instrumented
    /// implementations may ignore `policy` and instead deschedule the
    /// virtual thread until shared state changes.
    fn wait_until(policy: StallPolicy, pred: impl FnMut() -> bool) -> SpinReport;

    /// Bounded variant of [`Self::wait_until`]: gives up (with
    /// [`SpinReport::timed_out`] set) once `deadline` passes.
    ///
    /// The default implementation ignores the deadline and waits forever —
    /// this is deliberately what the model checker's instrumented domain
    /// inherits: a descheduled virtual thread must never time out, because
    /// wall-clock expiry is nondeterminism the checker cannot explore.
    /// Deadline behavior is exercised by real-time tests over [`RealSync`],
    /// which overrides this with [`crate::spin::wait_until_budget`].
    fn wait_until_budget(
        policy: StallPolicy,
        deadline: Option<Instant>,
        pred: impl FnMut() -> bool,
    ) -> SpinReport {
        let _ = deadline;
        Self::wait_until(policy, pred)
    }
}

macro_rules! impl_real_atomic {
    ($ty:ty, $atomic:ty) => {
        impl Atomic<$ty> for $atomic {
            #[inline(always)]
            fn new(value: $ty) -> Self {
                <$atomic>::new(value)
            }
            #[inline(always)]
            fn load(&self, order: Ordering) -> $ty {
                <$atomic>::load(self, order)
            }
            #[inline(always)]
            fn store(&self, value: $ty, order: Ordering) {
                <$atomic>::store(self, value, order);
            }
            #[inline(always)]
            fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                <$atomic>::fetch_add(self, value, order)
            }
            #[inline(always)]
            fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                <$atomic>::fetch_sub(self, value, order)
            }
            #[inline(always)]
            fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                <$atomic>::fetch_max(self, value, order)
            }
        }
    };
}

impl_real_atomic!(u32, atomic::AtomicU32);
impl_real_atomic!(u64, atomic::AtomicU64);
impl_real_atomic!(usize, atomic::AtomicUsize);

/// The production [`SyncOps`]: real `std::sync::atomic` words and the
/// [`crate::spin`] stall machinery. Zero-cost — everything inlines to the
/// pre-abstraction code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RealSync;

impl SyncOps for RealSync {
    type AtomicU32 = atomic::AtomicU32;
    type AtomicU64 = atomic::AtomicU64;
    type AtomicUsize = atomic::AtomicUsize;

    #[inline(always)]
    fn wait_until(policy: StallPolicy, pred: impl FnMut() -> bool) -> SpinReport {
        spin::wait_until(policy, pred)
    }

    #[inline(always)]
    fn wait_until_budget(
        policy: StallPolicy,
        deadline: Option<Instant>,
        pred: impl FnMut() -> bool,
    ) -> SpinReport {
        spin::wait_until_budget(policy, deadline, pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<A: Atomic<u64>>() {
        let a = A::new(3);
        assert_eq!(a.load(Ordering::Acquire), 3);
        a.store(5, Ordering::Release);
        assert_eq!(a.fetch_add(2, Ordering::AcqRel), 5);
        assert_eq!(a.fetch_sub(1, Ordering::AcqRel), 7);
        assert_eq!(a.fetch_max(100, Ordering::AcqRel), 6);
        assert_eq!(a.load(Ordering::Acquire), 100);
    }

    #[test]
    fn real_atomics_behave_like_std() {
        roundtrip::<<RealSync as SyncOps>::AtomicU64>();
    }

    #[test]
    fn real_wait_until_delegates_to_spin() {
        let r = RealSync::wait_until(StallPolicy::Spin, || true);
        assert!(r.was_instant());
    }

    #[test]
    fn real_wait_until_budget_honors_deadline() {
        let deadline = Instant::now() + std::time::Duration::from_millis(1);
        let r = RealSync::wait_until_budget(StallPolicy::yielding(), Some(deadline), || false);
        assert!(r.timed_out);
    }
}
