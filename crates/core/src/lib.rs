//! # fuzzy-barrier
//!
//! Split-phase (*fuzzy*) barriers for synchronizing groups of threads, a
//! reproduction of the mechanism introduced by Rajiv Gupta in *"The Fuzzy
//! Barrier: A Mechanism for High Speed Synchronization of Processors"*
//! (ASPLOS 1989).
//!
//! A classic barrier forces every participant to stall at a single program
//! **point** until the last participant arrives. A *fuzzy* barrier replaces
//! the point with a **region**: a participant announces that it is *ready to
//! synchronize* ([`SplitBarrier::arrive`]), keeps doing useful work from its
//! barrier region, and only blocks when it reaches the end of the region
//! ([`SplitBarrier::wait`]) — and then only if some participant has still
//! not arrived. The larger the region, the less likely any participant ever
//! stalls.
//!
//! ## Quick start
//!
//! ```
//! use fuzzy_barrier::{FuzzyBarrier, SplitBarrier};
//! use std::sync::Arc;
//!
//! let n = 4;
//! let barrier = Arc::new(FuzzyBarrier::new(n));
//! std::thread::scope(|s| {
//!     for id in 0..n {
//!         let barrier = Arc::clone(&barrier);
//!         s.spawn(move || {
//!             for _step in 0..100 {
//!                 // ... non-barrier region: work that other threads will
//!                 // read after the barrier ...
//!                 let token = barrier.arrive(id);
//!                 // ... barrier region: independent work overlapping the
//!                 // synchronization ...
//!                 barrier.wait(token);
//!             }
//!         });
//!     }
//! });
//! ```
//!
//! ## Backends
//!
//! Five interchangeable [`SplitBarrier`] backends are provided, mirroring
//! the design space the paper positions itself in (software barriers whose
//! cost grows linearly or logarithmically with the number of processors,
//! Sec. 1):
//!
//! * [`CentralBarrier`] — sense-reversing centralized barrier (one shared
//!   counter; the classic hot-spot-prone design),
//! * [`CountingBarrier`] — flat epoch-counting barrier,
//! * [`DisseminationBarrier`] — O(log n) rounds, no single hot word,
//! * [`TreeBarrier`] — combining tree with configurable fan-in,
//! * [`HierBarrier`] — topology-aware hierarchy: cache-line-sharded
//!   arrival words, a configurable leader protocol over shards
//!   (dissemination or tree), per-shard release broadcast, and an
//!   adaptive stall policy by default.
//!
//! All backends expose the same split-phase protocol and record
//! [`stats::BarrierStats`] so experiments can observe how often waits
//! actually stalled.
//!
//! ## Masks, tags and groups (multiple barriers, Sec. 5)
//!
//! The paper's hardware provides a per-processor *mask* (which processors
//! participate) and *tag* (which logical barrier). [`mask::ProcMask`],
//! [`tag::Tag`], [`group::SubsetBarrier`] and [`registry::GroupRegistry`]
//! reproduce those semantics in software: disjoint subsets of participants
//! synchronize independently, two participants synchronize only if their
//! tags match, and a registry of at most *N − 1* barriers serves *N*
//! dynamically created streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod async_wait;
pub mod blocking;
pub mod centralized;
pub mod counting;
pub mod dissemination;
pub mod error;
pub mod failure;
pub mod fuzzy;
pub mod group;
pub mod hier;
pub mod mask;
pub mod phased;
pub mod reconfig;
pub mod registry;
pub mod spin;
pub mod stats;
pub mod sync;
pub mod tag;
pub mod token;
pub mod tree;

pub use async_wait::{AsyncBarrier, BarrierFuture};
pub use blocking::PointBarrier;
pub use centralized::CentralBarrier;
pub use counting::CountingBarrier;
pub use dissemination::DisseminationBarrier;
pub use error::BarrierError;
pub use failure::{Deadline, OnTimeout, WaitPolicy};
pub use fuzzy::{FuzzyBarrier, SplitBarrier};
pub use group::{BarrierGroup, SubsetBarrier};
pub use hier::{HierBarrier, TopLevel};
pub use mask::ProcMask;
pub use reconfig::{
    ActivationFuture, JoinTicket, MemberHandle, ReconfigBarrier, ReconfigFuture, ReconfigToken,
};
pub use registry::GroupRegistry;
pub use spin::{AdaptiveSpin, StallPolicy};
pub use stats::{
    AdaptiveSnapshot, AsyncSnapshot, AsyncStats, HistogramSnapshot, NetSnapshot, NetStats,
    ParticipantSnapshot, PeerLinkSnapshot, SpreadSnapshot, StallHistogram, StatsSnapshot,
    TelemetrySnapshot,
};
pub use sync::{Atomic, RealSync, SyncOps, TicketGuard, TicketLock};
pub use tag::Tag;
pub use token::{ArrivalToken, WaitOutcome};
pub use tree::TreeBarrier;

#[cfg(test)]
mod send_sync_tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn barriers_are_send_sync() {
        assert_send_sync::<CentralBarrier>();
        assert_send_sync::<CountingBarrier>();
        assert_send_sync::<DisseminationBarrier>();
        assert_send_sync::<TreeBarrier>();
        assert_send_sync::<HierBarrier>();
        assert_send_sync::<PointBarrier>();
        assert_send_sync::<SubsetBarrier>();
        assert_send_sync::<FuzzyBarrier>();
        assert_send_sync::<AsyncBarrier<CentralBarrier>>();
        assert_send_sync::<BarrierFuture<CentralBarrier>>();
        assert_send_sync::<GroupRegistry>();
        assert_send_sync::<BarrierError>();
        assert_send_sync::<ReconfigBarrier>();
        assert_send_sync::<ReconfigToken>();
        assert_send_sync::<TicketLock>();
    }
}
