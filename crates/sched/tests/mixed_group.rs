//! Mixed local/remote groups: a process whose local threads synchronize
//! through a shared-memory [`HierBarrier`] leaf, while the leaf's
//! representative carries the whole group into a distributed
//! [`NetBarrier`] episode. Asserts release-epoch agreement across the
//! three layers: hier episode == net episode == remote endpoint episode,
//! every iteration.

use fuzzy_barrier::{Deadline, HierBarrier, SplitBarrier};
use fuzzy_net::{LoopbackMesh, NetBarrier, NetConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const LOCALS: usize = 4;
const EPISODES: u64 = 30;

#[test]
fn hier_leaf_participates_in_net_episodes_with_epoch_agreement() {
    let mesh = LoopbackMesh::new(2);
    let mut endpoints = mesh.endpoints().into_iter();
    // "Process A": a 4-thread HierBarrier leaf whose representative is
    // the sole local participant of net endpoint 0.
    let net_local = NetBarrier::start(Arc::new(endpoints.next().unwrap()), NetConfig::new());
    // "Process B": a plain remote endpoint.
    let net_remote = NetBarrier::start(Arc::new(endpoints.next().unwrap()), NetConfig::new());
    let hier = Arc::new(HierBarrier::new(LOCALS));
    // Net releases the representative observed, published for the other
    // local threads to check against their hier releases (stores
    // `episode + 1`).
    let net_released = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Representative: local id 0 of the hier leaf AND participant 0
        // of the net endpoint. It joins the hier group only after the
        // net episode released, so the whole leaf is gated on the mesh.
        {
            let hier = Arc::clone(&hier);
            let net = Arc::clone(&net_local);
            let net_released = Arc::clone(&net_released);
            s.spawn(move || {
                for episode in 0..EPISODES {
                    let nt = net.arrive(0);
                    // Fuzzy region: the network round-trip hides here.
                    let net_outcome = net
                        .wait_deadline(nt, Deadline::after(Duration::from_secs(20)))
                        .expect("net episode");
                    assert_eq!(net_outcome.episode, episode);
                    net_released.store(episode + 1, Ordering::Release);
                    let ht = hier.arrive(0);
                    let hier_outcome = hier.wait(ht);
                    assert_eq!(
                        hier_outcome.episode, episode,
                        "hier and net must release the same epoch"
                    );
                }
            });
        }
        // The rest of the leaf: pure hier participants, transitively
        // gated on the remote endpoint through the representative.
        for id in 1..LOCALS {
            let hier = Arc::clone(&hier);
            let net_released = Arc::clone(&net_released);
            s.spawn(move || {
                for episode in 0..EPISODES {
                    let ht = hier.arrive(id);
                    let outcome = hier.wait(ht);
                    assert_eq!(outcome.episode, episode);
                    // Agreement across layers: our hier release implies
                    // the representative already saw the same net epoch.
                    assert!(
                        net_released.load(Ordering::Acquire) > episode,
                        "hier epoch {episode} released before net epoch {episode}"
                    );
                }
            });
        }
        // The remote endpoint runs the same episodes.
        {
            let net = Arc::clone(&net_remote);
            s.spawn(move || {
                for episode in 0..EPISODES {
                    let token = net.arrive(0);
                    let outcome = net
                        .wait_deadline(token, Deadline::after(Duration::from_secs(20)))
                        .expect("remote episode");
                    assert_eq!(outcome.episode, episode);
                }
            });
        }
    });

    assert_eq!(net_local.stats().episodes, EPISODES);
    assert_eq!(net_remote.stats().episodes, EPISODES);
    assert_eq!(hier.stats().episodes, EPISODES);
}
