//! Multi-process acceptance tests: real forked workers over a
//! Unix-domain socket mesh, including the headline scenario — killing one
//! worker mid-episode poisons (not hangs) all survivors within the
//! deadline.

use fuzzy_sched::multiproc::{maybe_run_worker, run_multiproc, MultiprocConfig, WorkerFate};

/// The worker entry the parent re-execs this test binary into. In a
/// normal test run (no `FUZZY_NET_ROLE`) this is an instant no-op pass;
/// in a spawned worker it runs the episode loop and exits the process.
#[test]
fn net_worker_entry() {
    maybe_run_worker();
}

fn config(nodes: usize, episodes: u64, seed: u64) -> MultiprocConfig {
    let mut config = MultiprocConfig::new(
        std::env::current_exe().expect("test binary path"),
        nodes,
        episodes,
    );
    // Route the child straight into `net_worker_entry`.
    config.args = vec![
        "net_worker_entry".into(),
        "--exact".into(),
        "--nocapture".into(),
    ];
    // Distinct seeds keep concurrent tests' scratch directories apart.
    config.seed = seed;
    config
}

#[test]
fn four_process_uds_mesh_completes_all_episodes() {
    let report = run_multiproc(&config(4, 12, 0xA));
    assert!(!report.wedged(), "outcomes: {:?}", report.outcomes);
    for outcome in &report.outcomes {
        assert_eq!(
            outcome.fate,
            WorkerFate::Released,
            "rank {}: {:?}",
            outcome.rank,
            report.outcomes
        );
        assert_eq!(outcome.episodes, 12, "rank {}", outcome.rank);
    }
}

#[test]
fn killing_one_worker_mid_episode_poisons_all_survivors() {
    let mut config = config(4, 12, 0xB);
    config.kill_at = Some((2, 5));
    let report = run_multiproc(&config);
    // Nobody may wedge: the watchdog converting a hang into Wedged is
    // exactly the failure this asserts against.
    assert!(!report.wedged(), "outcomes: {:?}", report.outcomes);
    assert_eq!(
        report.outcomes[2].fate,
        WorkerFate::Killed,
        "the victim dies on its own abort: {:?}",
        report.outcomes
    );
    assert_eq!(
        report.count(&WorkerFate::Poisoned),
        3,
        "every survivor must observe poison, not hang: {:?}",
        report.outcomes
    );
    // Survivors got through the pre-kill episodes before the poison.
    for outcome in &report.outcomes {
        if outcome.fate == WorkerFate::Poisoned {
            assert!(
                outcome.episodes >= 4 && outcome.episodes < 12,
                "rank {} reported {} episodes",
                outcome.rank,
                outcome.episodes
            );
        }
    }
}
