//! Fault-path regression tests for [`GroupRegistry`] driven from the
//! scheduling crate's threaded side.
//!
//! The registry's orphan sweep and the barriers' eviction counters were
//! previously only exercised by single-threaded unit tests inside
//! `fuzzy-barrier`; here the full supervisor cycle runs under real OS
//! threads: a stream dies mid-run, the supervisor evicts it while the
//! survivors block, the eviction shows up in the registry's aggregate
//! telemetry, the orphaned slot is swept, and the same group is rebuilt
//! at full strength.

use fuzzy_barrier::{BarrierError, GroupRegistry, ProcMask};
use fuzzy_sched::executor::busy;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A stream dies after episode 0; the supervisor evicts it while the
/// survivors are blocked inside episode 1. The survivors resynchronize as
/// a smaller group, the eviction is visible through the registry's
/// aggregate telemetry, and after sweeping the orphaned slot the same
/// mask is rebuilt and runs clean.
#[test]
fn evict_then_rebuild_under_threaded_runner() {
    const PROCS: usize = 4;
    const DEAD: usize = PROCS - 1;
    const EPISODES: u64 = 4;
    let registry = GroupRegistry::new(8);
    let (tag, barrier) = registry.allocate(ProcMask::first_n(PROCS)).unwrap();

    std::thread::scope(|s| {
        for id in 0..PROCS {
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let episodes = if id == DEAD { 1 } else { EPISODES };
                for _ in 0..episodes {
                    let token = barrier.arrive(id, tag).unwrap();
                    busy(4);
                    barrier.wait(token);
                }
            });
        }
        // Supervisor: once episode 0 is done and every survivor has
        // arrived for episode 1 (the dead stream never will), evict the
        // dead stream to release them. Survivors cannot race past this
        // point — episode 1 needs the eviction to complete.
        let survivors_arrived = (PROCS + PROCS - 1) as u64;
        let deadline = Instant::now() + Duration::from_secs(60);
        while barrier.stats().arrivals < survivors_arrived {
            assert!(
                Instant::now() < deadline,
                "survivors never reached episode 1"
            );
            std::thread::yield_now();
        }
        barrier.evict(DEAD).unwrap();
    });

    let stats = barrier.stats();
    assert_eq!(stats.evictions, 1, "exactly one stream was evicted");
    assert_eq!(stats.episodes, EPISODES, "survivors finished every episode");

    // The eviction counter aggregates through the registry view.
    let (total, per_barrier) = registry.aggregate_telemetry();
    assert_eq!(total.base.evictions, 1);
    assert_eq!(per_barrier.len(), 1);
    assert_eq!(per_barrier[0].0, tag);

    // Dropping the handle without `release(tag)` orphans the slot; the
    // explicit sweep reclaims it and the tag stops resolving.
    drop(barrier);
    assert_eq!(registry.live_barriers(), 1);
    assert_eq!(registry.sweep_orphans(), 1);
    assert_eq!(registry.live_barriers(), 0);
    assert_eq!(
        registry.lookup(tag).unwrap_err(),
        BarrierError::UnknownTag { tag }
    );
    assert_eq!(registry.sweep_orphans(), 0, "sweep is idempotent");

    // Rebuild: evictions are per-barrier, not per-registry, so a fresh
    // allocation over the same mask runs all four streams again.
    let (tag2, rebuilt) = registry.allocate(ProcMask::first_n(PROCS)).unwrap();
    std::thread::scope(|s| {
        for id in 0..PROCS {
            let rebuilt = Arc::clone(&rebuilt);
            s.spawn(move || {
                for _ in 0..EPISODES {
                    let token = rebuilt.arrive(id, tag2).unwrap();
                    busy(4);
                    rebuilt.wait(token);
                }
            });
        }
    });
    let stats = rebuilt.stats();
    assert_eq!(stats.episodes, EPISODES);
    assert_eq!(stats.arrivals, PROCS as u64 * EPISODES);
    assert_eq!(stats.evictions, 0, "the rebuilt group starts clean");
}

/// Worker threads that allocate a group, synchronize once and drop their
/// handle without releasing the tag must not wedge the registry: the next
/// allocation sweeps the orphans instead of reporting `RegistryFull`.
#[test]
fn orphaned_groups_do_not_wedge_allocation_at_capacity() {
    let registry = GroupRegistry::new(4); // capacity 3
    std::thread::scope(|s| {
        for _ in 0..registry.capacity() {
            let registry = &registry;
            s.spawn(move || {
                let (tag, group) = registry.allocate(ProcMask::first_n(2)).unwrap();
                std::thread::scope(|inner| {
                    for id in 0..2 {
                        let group = Arc::clone(&group);
                        inner.spawn(move || {
                            let token = group.arrive(id, tag).unwrap();
                            busy(2);
                            group.wait(token);
                        });
                    }
                });
                // No release(tag): the slot is orphaned on purpose.
            });
        }
    });
    assert_eq!(registry.live_barriers(), 3, "all slots hold orphans");
    let (_tag, _held) = registry.allocate(ProcMask::first_n(2)).unwrap();
    assert_eq!(
        registry.live_barriers(),
        1,
        "allocation swept the orphans instead of failing"
    );
}
