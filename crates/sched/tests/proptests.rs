//! Randomized tests for the scheduling crate.
//!
//! Formerly written with `proptest`; the build environment is offline, so
//! the same properties are exercised with a deterministic seeded generator
//! ([`fuzzy_util::SplitMix64`]) sweeping many random cases.

use fuzzy_sched::executor::{simulate_dynamic, simulate_static};
use fuzzy_sched::self_sched::{
    chunk_sequence, ChunkPolicy, FixedChunk, GuidedSelfScheduling, SelfScheduling,
};
use fuzzy_sched::static_sched::{block, cyclic, idle_at_barrier, per_proc_work, rotated_block};
use fuzzy_sched::workload::CostModel;
use fuzzy_util::SplitMix64;

/// Every static schedule assigns each iteration exactly once.
#[test]
fn static_schedules_partition_iterations() {
    let mut rng = SplitMix64::seed_from_u64(10);
    for _case in 0..96 {
        let iters = rng.below(200);
        let procs = 1 + rng.below(8);
        let outer = rng.below(12);
        for a in [
            block(iters, procs),
            cyclic(iters, procs),
            rotated_block(iters, procs, outer),
        ] {
            let mut all: Vec<usize> = a.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..iters).collect::<Vec<_>>());
            assert_eq!(a.len(), procs);
        }
    }
}

/// Rotation preserves the multiset of chunk sizes of plain block.
#[test]
fn rotation_preserves_chunk_sizes() {
    let mut rng = SplitMix64::seed_from_u64(11);
    for _case in 0..96 {
        let iters = rng.below(100);
        let procs = 1 + rng.below(7);
        let outer = rng.below(20);
        let mut plain: Vec<usize> = block(iters, procs).iter().map(Vec::len).collect();
        let mut rot: Vec<usize> = rotated_block(iters, procs, outer)
            .iter()
            .map(Vec::len)
            .collect();
        plain.sort_unstable();
        rot.sort_unstable();
        assert_eq!(plain, rot);
    }
}

/// Every chunk policy covers the iteration space exactly, with every
/// chunk at least one iteration.
#[test]
fn chunk_policies_cover_exactly() {
    let mut rng = SplitMix64::seed_from_u64(12);
    for _case in 0..96 {
        let total = rng.below(500);
        let procs = 1 + rng.below(8);
        let policies: [&dyn ChunkPolicy; 3] =
            [&SelfScheduling, &FixedChunk(13), &GuidedSelfScheduling];
        for policy in policies {
            let seq = chunk_sequence(total, procs, policy);
            assert_eq!(seq.iter().sum::<usize>(), total, "{}", policy.name());
            assert!(seq.iter().all(|&c| c >= 1));
        }
    }
}

/// GSS chunks never increase and start at ceil(total/procs).
#[test]
fn gss_chunks_monotone() {
    let mut rng = SplitMix64::seed_from_u64(13);
    for _case in 0..96 {
        let total = 1 + rng.below(499);
        let procs = 1 + rng.below(8);
        let seq = chunk_sequence(total, procs, &GuidedSelfScheduling);
        assert_eq!(seq[0], total.div_ceil(procs));
        assert!(seq.windows(2).all(|w| w[0] >= w[1]));
    }
}

/// The dynamic executor conserves work: total busy time equals the
/// sum of iteration costs plus dispatch overhead.
#[test]
fn dynamic_executor_conserves_work() {
    let mut rng = SplitMix64::seed_from_u64(14);
    for _case in 0..96 {
        let n = 1 + rng.below(119);
        let procs = 1 + rng.below(6);
        let dispatch = rng.range_u64(0, 4);
        let seed = rng.next_u64();
        let costs = CostModel::Jitter { lo: 1, hi: 25 }.costs(n, seed);
        let r = simulate_dynamic(procs, &costs, &GuidedSelfScheduling, dispatch);
        let total_cost: u64 = costs.iter().sum();
        let total_dispatch: u64 = r.dispatches.iter().map(|&d| d as u64 * dispatch).sum();
        assert_eq!(r.finish.iter().sum::<u64>(), total_cost + total_dispatch);
    }
}

/// Fuzzy stall is monotone non-increasing in the region size and hits
/// zero for a region as large as the makespan.
#[test]
fn fuzzy_stall_monotone_in_region() {
    let mut rng = SplitMix64::seed_from_u64(15);
    for _case in 0..96 {
        let n = 1 + rng.below(59);
        let procs = 1 + rng.below(5);
        let seed = rng.next_u64();
        let costs = CostModel::Jitter { lo: 1, hi: 40 }.costs(n, seed);
        let r = simulate_static(&block(n, procs), &costs);
        let mut last = u64::MAX;
        for region in [0u64, 5, 20, 80, 320] {
            let stall = r.total_fuzzy_stall(region);
            assert!(stall <= last);
            last = stall;
        }
        assert_eq!(r.total_fuzzy_stall(r.makespan()), 0);
        assert_eq!(r.total_fuzzy_stall(0), r.total_point_idle());
    }
}

/// idle_at_barrier is zero exactly for the maximal worker.
#[test]
fn idle_math() {
    let mut rng = SplitMix64::seed_from_u64(16);
    for _case in 0..96 {
        let len = 1 + rng.below(9);
        let work: Vec<u64> = (0..len).map(|_| rng.range_u64(0, 999)).collect();
        let idle = idle_at_barrier(&work);
        let max = *work.iter().max().unwrap();
        for (w, i) in work.iter().zip(&idle) {
            assert_eq!(w + i, max);
        }
    }
}

/// per_proc_work sums the right costs.
#[test]
fn work_sums() {
    let mut rng = SplitMix64::seed_from_u64(17);
    for _case in 0..96 {
        let iters = 1 + rng.below(49);
        let procs = 1 + rng.below(5);
        let seed = rng.next_u64();
        let costs = CostModel::Jitter { lo: 0, hi: 9 }.costs(iters, seed);
        let a = block(iters, procs);
        let work = per_proc_work(&a, &costs);
        assert_eq!(work.iter().sum::<u64>(), costs.iter().sum::<u64>());
    }
}
