//! Property-based tests for the scheduling crate.

use fuzzy_sched::executor::{simulate_dynamic, simulate_static};
use fuzzy_sched::self_sched::{
    chunk_sequence, ChunkPolicy, FixedChunk, GuidedSelfScheduling, SelfScheduling,
};
use fuzzy_sched::static_sched::{block, cyclic, idle_at_barrier, per_proc_work, rotated_block};
use fuzzy_sched::workload::CostModel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every static schedule assigns each iteration exactly once.
    #[test]
    fn static_schedules_partition_iterations(
        iters in 0usize..200,
        procs in 1usize..9,
        outer in 0usize..12,
    ) {
        for a in [block(iters, procs), cyclic(iters, procs), rotated_block(iters, procs, outer)] {
            let mut all: Vec<usize> = a.iter().flatten().copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..iters).collect::<Vec<_>>());
            prop_assert_eq!(a.len(), procs);
        }
    }

    /// Rotation preserves the multiset of chunk sizes of plain block.
    #[test]
    fn rotation_preserves_chunk_sizes(iters in 0usize..100, procs in 1usize..8, outer in 0usize..20) {
        let mut plain: Vec<usize> = block(iters, procs).iter().map(Vec::len).collect();
        let mut rot: Vec<usize> = rotated_block(iters, procs, outer).iter().map(Vec::len).collect();
        plain.sort_unstable();
        rot.sort_unstable();
        prop_assert_eq!(plain, rot);
    }

    /// Every chunk policy covers the iteration space exactly, with every
    /// chunk at least one iteration.
    #[test]
    fn chunk_policies_cover_exactly(total in 0usize..500, procs in 1usize..9) {
        let policies: [&dyn ChunkPolicy; 3] =
            [&SelfScheduling, &FixedChunk(13), &GuidedSelfScheduling];
        for policy in policies {
            let seq = chunk_sequence(total, procs, policy);
            prop_assert_eq!(seq.iter().sum::<usize>(), total, "{}", policy.name());
            prop_assert!(seq.iter().all(|&c| c >= 1));
        }
    }

    /// GSS chunks never increase and start at ceil(total/procs).
    #[test]
    fn gss_chunks_monotone(total in 1usize..500, procs in 1usize..9) {
        let seq = chunk_sequence(total, procs, &GuidedSelfScheduling);
        prop_assert_eq!(seq[0], total.div_ceil(procs));
        prop_assert!(seq.windows(2).all(|w| w[0] >= w[1]));
    }

    /// The dynamic executor conserves work: total busy time equals the
    /// sum of iteration costs plus dispatch overhead.
    #[test]
    fn dynamic_executor_conserves_work(
        n in 1usize..120,
        procs in 1usize..7,
        dispatch in 0u64..5,
        seed in any::<u64>(),
    ) {
        let costs = CostModel::Jitter { lo: 1, hi: 25 }.costs(n, seed);
        let r = simulate_dynamic(procs, &costs, &GuidedSelfScheduling, dispatch);
        let total_cost: u64 = costs.iter().sum();
        let total_dispatch: u64 = r.dispatches.iter().map(|&d| d as u64 * dispatch).sum();
        prop_assert_eq!(r.finish.iter().sum::<u64>(), total_cost + total_dispatch);
    }

    /// Fuzzy stall is monotone non-increasing in the region size and hits
    /// zero for a region as large as the makespan.
    #[test]
    fn fuzzy_stall_monotone_in_region(
        n in 1usize..60,
        procs in 1usize..6,
        seed in any::<u64>(),
    ) {
        let costs = CostModel::Jitter { lo: 1, hi: 40 }.costs(n, seed);
        let r = simulate_static(&block(n, procs), &costs);
        let mut last = u64::MAX;
        for region in [0u64, 5, 20, 80, 320] {
            let stall = r.total_fuzzy_stall(region);
            prop_assert!(stall <= last);
            last = stall;
        }
        prop_assert_eq!(r.total_fuzzy_stall(r.makespan()), 0);
        prop_assert_eq!(r.total_fuzzy_stall(0), r.total_point_idle());
    }

    /// idle_at_barrier is zero exactly for the maximal worker.
    #[test]
    fn idle_math(work in prop::collection::vec(0u64..1000, 1..10)) {
        let idle = idle_at_barrier(&work);
        let max = *work.iter().max().unwrap();
        for (w, i) in work.iter().zip(&idle) {
            prop_assert_eq!(w + i, max);
        }
    }

    /// per_proc_work sums the right costs.
    #[test]
    fn work_sums(iters in 1usize..50, procs in 1usize..6, seed in any::<u64>()) {
        let costs = CostModel::Jitter { lo: 0, hi: 9 }.costs(iters, seed);
        let a = block(iters, procs);
        let work = per_proc_work(&a, &costs);
        prop_assert_eq!(work.iter().sum::<u64>(), costs.iter().sum::<u64>());
    }
}
