//! Randomized tests pitting [`BarrierFuture`] against the blocking
//! [`SplitBarrier::wait`] on one shared barrier.
//!
//! Formerly the domain of `proptest`; the build environment is offline,
//! so the same properties are exercised with a deterministic seeded
//! generator ([`fuzzy_util::SplitMix64`]) sweeping many random cases.
//!
//! The property under test is the mixed-mode contract of
//! [`AsyncBarrier`]: sync participants (OS threads blocking in `wait`)
//! and async participants (futures parked on an [`AsyncExecutor`]) of the
//! *same* episode must agree on the release epoch, and a poisoning fault
//! must reach both sides — the parked futures resolve to
//! `Err(Poisoned)` rather than sleeping forever.

use fuzzy_barrier::{AsyncBarrier, BarrierError, SplitBarrier, StallPolicy};
use fuzzy_sched::async_exec::AsyncExecutor;
use fuzzy_sched::executor::{busy, BarrierChoice};
use fuzzy_util::SplitMix64;
use std::sync::{Arc, Mutex};

fn backends() -> [BarrierChoice; 4] {
    [
        BarrierChoice::Central,
        BarrierChoice::Counting,
        BarrierChoice::Dissemination,
        BarrierChoice::Tree { fan_in: 2 },
    ]
}

/// Mixed sync/async participants of one barrier agree on the release
/// epoch of every episode, across backends, splits and pool sizes.
#[test]
fn mixed_participants_agree_on_release_epoch() {
    let mut rng = SplitMix64::seed_from_u64(40);
    for case in 0..24 {
        let total = 2 + rng.below(5);
        // At least one of each kind: genuinely mixed.
        let async_count = 1 + rng.below(total - 1);
        let episodes = 1 + rng.below(3) as u64;
        let workers = 1 + rng.below(3);
        let backend = backends()[rng.below(4)];
        let jitter = rng.next_u64();

        let barrier = Arc::new(AsyncBarrier::new(
            backend.build(total, StallPolicy::yielding()),
        ));
        // epochs[id] collects the release epoch each participant saw per
        // episode, in episode order.
        let epochs: Arc<Vec<Mutex<Vec<u64>>>> =
            Arc::new((0..total).map(|_| Mutex::new(Vec::new())).collect());

        let pool = AsyncExecutor::new(workers);
        for id in 0..async_count {
            let barrier = Arc::clone(&barrier);
            let epochs = Arc::clone(&epochs);
            pool.spawn(async move {
                for episode in 0..episodes {
                    let future = barrier.arrive_async(id);
                    busy(jitter.wrapping_add(id as u64) % 8);
                    let outcome = future.await.expect("un-poisoned episode");
                    assert_eq!(outcome.episode, episode, "case {case} async {id}");
                    epochs[id].lock().unwrap().push(outcome.episode);
                }
            });
        }
        std::thread::scope(|s| {
            for id in async_count..total {
                let barrier = Arc::clone(&barrier);
                let epochs = Arc::clone(&epochs);
                s.spawn(move || {
                    for episode in 0..episodes {
                        let token = barrier.arrive(id);
                        busy(jitter.wrapping_add(id as u64) % 8);
                        let outcome = barrier.wait(token);
                        assert_eq!(outcome.episode, episode, "case {case} sync {id}");
                        epochs[id].lock().unwrap().push(outcome.episode);
                    }
                });
            }
            pool.wait_idle();
        });

        let expected: Vec<u64> = (0..episodes).collect();
        for (id, seen) in epochs.iter().enumerate() {
            assert_eq!(
                *seen.lock().unwrap(),
                expected,
                "case {case} participant {id} (total {total}, async {async_count}, \
                 backend {backend:?})"
            );
        }
        let frontend = barrier.async_stats();
        assert_eq!(
            frontend.parked, frontend.resumed,
            "case {case}: a parked future never resumed"
        );
    }
}

/// Poisoning reaches both sides of a mixed episode: with one participant
/// permanently missing, the parked futures and the bounded sync waits all
/// resolve to `Err(Poisoned)` instead of hanging.
#[test]
fn poison_propagates_to_parked_futures_and_sync_waiters() {
    let mut rng = SplitMix64::seed_from_u64(41);
    for case in 0..16 {
        let total = 3 + rng.below(4);
        let async_count = 1 + rng.below(total - 2);
        let workers = 1 + rng.below(3);
        let backend = backends()[rng.below(4)];

        let barrier = Arc::new(AsyncBarrier::new(
            backend.build(total, StallPolicy::yielding()),
        ));
        let poisoned = Arc::new(std::sync::atomic::AtomicUsize::new(0));

        // Participant `total - 1` never arrives, so episode 0 can only end
        // by poisoning. Every waiter must observe the fault.
        let pool = AsyncExecutor::new(workers);
        for id in 0..async_count {
            let barrier = Arc::clone(&barrier);
            let poisoned = Arc::clone(&poisoned);
            pool.spawn(async move {
                let err = barrier.arrive_async(id).await.expect_err("must poison");
                assert!(
                    matches!(err, BarrierError::Poisoned { .. }),
                    "case {case} async {id}: {err:?}"
                );
                poisoned.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        }
        std::thread::scope(|s| {
            for id in async_count..total - 1 {
                let barrier = Arc::clone(&barrier);
                let poisoned = Arc::clone(&poisoned);
                s.spawn(move || {
                    let token = barrier.arrive(id);
                    let err = barrier
                        .wait_deadline(token, fuzzy_barrier::Deadline::never())
                        .expect_err("must poison");
                    assert!(
                        matches!(err, BarrierError::Poisoned { .. }),
                        "case {case} sync {id}: {err:?}"
                    );
                    poisoned.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
            // Fault injection: wait until every present participant has
            // arrived, then poison on behalf of the missing stream.
            while barrier.stats().arrivals < (total - 1) as u64 {
                std::thread::yield_now();
            }
            barrier.poison();
            pool.wait_idle();
        });

        assert_eq!(
            poisoned.load(std::sync::atomic::Ordering::Relaxed),
            total - 1,
            "case {case}: every waiter observed the poison"
        );
    }
}
