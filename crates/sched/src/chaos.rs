//! Real-thread chaos harness for dynamic membership.
//!
//! Everything the `fuzzy-check` model checker proves about the
//! reconfiguration protocol, it proves over *shadow* threads. This module
//! is the complementary evidence: a seeded scenario driver that injects
//! **join / leave / crash(panic) / delay / spurious-timeout** events into
//! live episodes running on real OS threads (or on the
//! [`AsyncExecutor`] M:N runtime) over a
//! [`ReconfigBarrier`], and asserts two things after thousands of churn
//! events:
//!
//! * **liveness** — after every injected event the wrapper epoch advances
//!   again within a generous watchdog (a stuck epoch is a deadlock or a
//!   lost wakeup, and fails the run loudly);
//! * **agreement** — the driver's view of membership matches the
//!   barrier's, every member observes release epochs in strictly
//!   increasing order, and after a quiescent teardown the sole survivor's
//!   last release epoch is exactly one behind the barrier's final epoch.
//!
//! Per-event recovery latency (injection until the next epoch
//! publication) is recorded into a [`StallHistogram`]; the
//! `exp_chaos_churn` bin exports it in the schema-validated stats JSON.
//!
//! The harness honors the eviction contract by construction: a crash is a
//! one-shot command the victim consumes *before* arriving, so it provably
//! has no in-flight arrival when the driver evicts its slot. The contract
//! assertion inside the barrier turns any violation into a loud failure
//! instead of a corrupted count.
//!
//! The driver drains the group to quiescence (every member idle at its
//! loop top, every command consumed) before choosing each event, so the
//! event schedule — kinds, victims, and counts — is a deterministic
//! function of the seed alone.

use crate::async_exec::AsyncExecutor;
use crate::executor::BarrierChoice;
use fuzzy_barrier::reconfig::{JoinTicket, MemberHandle, ReconfigBarrier};
use fuzzy_barrier::{BarrierError, Deadline, HistogramSnapshot, StallHistogram, StallPolicy};
use fuzzy_util::SplitMix64;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which runtime the chaos members run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// One OS thread per member.
    Threaded,
    /// Members are tasks on the M:N [`AsyncExecutor`]; joiners await
    /// their activation future, so the executor parks the *task* — not a
    /// thread — until the join's epoch activates.
    Async {
        /// Worker threads backing the executor.
        workers: usize,
    },
}

impl ChaosMode {
    /// The mode's stable name, as exported in stats JSON.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ChaosMode::Threaded => "threaded",
            ChaosMode::Async { .. } => "async",
        }
    }
}

/// Configuration for one chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Backend the [`ReconfigBarrier`] rebuilds at every growth boundary.
    pub backend: BarrierChoice,
    /// Members alive at the start (at least 2).
    pub initial: usize,
    /// Membership slot capacity (bounds concurrent members).
    pub capacity: usize,
    /// Churn events to inject.
    pub events: usize,
    /// RNG seed; equal seeds give equal event schedules.
    pub seed: u64,
    /// Runtime the members execute on.
    pub mode: ChaosMode,
    /// Stall policy for the wrapper and the inner backends.
    pub policy: StallPolicy,
    /// Watchdog: how long the epoch may sit still after an injected event
    /// before the run is declared dead.
    pub watchdog: Duration,
}

impl ChaosConfig {
    /// A small default scenario over `backend`, suitable for CI smoke.
    #[must_use]
    pub fn smoke(backend: BarrierChoice, mode: ChaosMode, seed: u64) -> Self {
        ChaosConfig {
            backend,
            initial: 3,
            capacity: 8,
            events: 120,
            seed,
            mode,
            policy: StallPolicy::yielding(),
            watchdog: Duration::from_secs(20),
        }
    }
}

/// Per-event-kind injection counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Members that joined (staged, then activated at a boundary).
    pub joins: u64,
    /// Members that left voluntarily.
    pub leaves: u64,
    /// Members that crashed (contained panic) and were evicted.
    pub crashes: u64,
    /// Delays injected into barrier regions.
    pub delays: u64,
    /// Spurious bounded-wait timeouts injected (near-instant deadline,
    /// then retry on the same token).
    pub spurious: u64,
}

impl EventCounts {
    /// Total injected events.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.joins + self.leaves + self.crashes + self.delays + self.spurious
    }
}

/// Outcome of one chaos run. Every liveness and agreement assertion
/// already passed if this was returned at all (violations panic inside
/// [`run_chaos`]).
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The runtime the members ran on.
    pub mode: ChaosMode,
    /// Injected event counts by kind.
    pub events: EventCounts,
    /// Wrapper episodes (epoch boundaries) completed over the run.
    pub episodes: u64,
    /// The wrapper epoch after teardown.
    pub final_epoch: u64,
    /// Live members after teardown (always 1: the designated survivor).
    pub final_members: usize,
    /// Membership and release-epoch agreement held at quiescence and
    /// after teardown.
    pub agreement: bool,
    /// Spurious timeouts that actually fired (the injected deadline can
    /// also be beaten by the release; only real timeouts retried).
    pub spurious_hits: u64,
    /// Per-event recovery latency (nanoseconds, power-of-two buckets):
    /// injection until the next epoch publication.
    pub recovery: HistogramSnapshot,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

/// One-shot command slot values.
const CMD_RUN: u32 = 0;
const CMD_LEAVE: u32 = 1;
const CMD_CRASH: u32 = 2;
const CMD_DELAY: u32 = 3;
const CMD_SPURIOUS: u32 = 4;

/// Shared control block between the driver and one member.
///
/// Command discipline: only the driver writes a non-[`CMD_RUN`] value
/// (and only after observing `cmd == CMD_RUN`); only the member resets a
/// consumed one-shot back to [`CMD_RUN`], at the *end* of the episode it
/// affected. Terminal commands (leave/crash) are never reset, so an
/// exiting member can never be re-targeted — the race where a fresh
/// command lands in a slot nobody will ever read again is structurally
/// impossible.
#[derive(Debug, Default)]
struct MemberCtl {
    cmd: AtomicU32,
    /// Slot and generation, published once active (joiners learn theirs
    /// only after activation); the driver needs them to evict a corpse.
    slot: AtomicUsize,
    generation: AtomicU64,
    /// The member is active and looping episodes.
    ready: AtomicBool,
    /// The member's loop has exited (left, crashed, or stopped).
    gone: AtomicBool,
    /// The exit was a crash: the driver must evict the slot.
    crashed: AtomicBool,
    /// Highest release epoch the member observed (`u64::MAX` = none yet).
    last_epoch: AtomicU64,
    /// Spurious timeouts the member actually hit.
    spurious_hits: AtomicU64,
}

impl MemberCtl {
    fn fresh() -> Arc<MemberCtl> {
        let ctl = MemberCtl::default();
        ctl.last_epoch.store(u64::MAX, Ordering::Relaxed);
        Arc::new(ctl)
    }

    fn publish(&self, h: &MemberHandle) {
        self.slot.store(h.slot(), Ordering::Release);
        self.generation.store(h.generation(), Ordering::Release);
        self.ready.store(true, Ordering::Release);
    }

    fn exit(&self) {
        self.gone.store(true, Ordering::Release);
    }
}

/// How an injected delay stalls the barrier region.
fn region_delay() {
    std::thread::sleep(Duration::from_micros(50));
}

/// Checks one release outcome against the member's history: outcomes name
/// the arrival epoch, and release epochs are strictly increasing — the
/// per-member face of release-epoch agreement.
fn check_release(ctl: &MemberCtl, arrived_epoch: u64, released_epoch: u64) {
    assert_eq!(
        released_epoch, arrived_epoch,
        "release outcome must name the arrival epoch"
    );
    let prev = ctl.last_epoch.swap(released_epoch, Ordering::AcqRel);
    assert!(
        prev == u64::MAX || released_epoch > prev,
        "release epochs regressed: {prev} then {released_epoch}"
    );
}

/// The episode loop a threaded chaos member runs. Returns when told to
/// stop, leave, or crash. `stop` is only raised once the member is the
/// sole survivor, so a pre-arrive exit can never strand a peer.
fn member_body(rb: &Arc<ReconfigBarrier>, h: MemberHandle, ctl: &MemberCtl, stop: &AtomicBool) {
    loop {
        let cmd = ctl.cmd.load(Ordering::Acquire);
        match cmd {
            CMD_LEAVE => {
                rb.leave(h).expect("chaos leave must be legal");
                ctl.exit();
                return;
            }
            CMD_CRASH => {
                // A contained panic, exactly like a worker body dying.
                // The member provably has no in-flight arrival here; the
                // driver observes `crashed` and evicts the slot.
                let _ = catch_unwind(AssertUnwindSafe(|| panic!("chaos: injected crash")));
                ctl.crashed.store(true, Ordering::Release);
                ctl.exit();
                return;
            }
            _ => {
                if stop.load(Ordering::Acquire) {
                    ctl.exit();
                    return;
                }
                let token = rb.arrive(&h).expect("live handle must arrive");
                let arrived = token.epoch();
                if cmd == CMD_DELAY {
                    region_delay();
                }
                let outcome = if cmd == CMD_SPURIOUS {
                    match rb.wait_deadline(&token, Deadline::after(Duration::from_micros(1))) {
                        Ok(o) => o,
                        Err(BarrierError::Timeout { .. }) => {
                            // The injected fault fired: the deadline beat
                            // the release while the arrival stands.
                            // Retrying the same token must recover.
                            ctl.spurious_hits.fetch_add(1, Ordering::Relaxed);
                            rb.wait(&token).expect("retry after spurious timeout")
                        }
                        Err(err) => panic!("chaos wait failed: {err}"),
                    }
                } else {
                    rb.wait(&token).expect("chaos wait must release")
                };
                check_release(ctl, arrived, outcome.episode);
                if cmd != CMD_RUN {
                    let _ =
                        ctl.cmd
                            .compare_exchange(cmd, CMD_RUN, Ordering::AcqRel, Ordering::Relaxed);
                }
            }
        }
    }
}

/// The async twin of [`member_body`]: waits are `wait_future` awaits, so
/// a member blocked on a boundary parks its task instead of a worker
/// thread — `M ≫ N` members multiplex over `N` workers without deadlock.
async fn member_body_async(
    rb: Arc<ReconfigBarrier>,
    h: MemberHandle,
    ctl: Arc<MemberCtl>,
    stop: Arc<AtomicBool>,
) {
    loop {
        let cmd = ctl.cmd.load(Ordering::Acquire);
        match cmd {
            CMD_LEAVE => {
                rb.leave(h).expect("chaos leave must be legal");
                ctl.exit();
                return;
            }
            CMD_CRASH => {
                let _ = catch_unwind(AssertUnwindSafe(|| panic!("chaos: injected crash")));
                ctl.crashed.store(true, Ordering::Release);
                ctl.exit();
                return;
            }
            _ => {
                if stop.load(Ordering::Acquire) {
                    ctl.exit();
                    return;
                }
                let token = rb.arrive(&h).expect("live handle must arrive");
                let arrived = token.epoch();
                if cmd == CMD_DELAY {
                    region_delay();
                }
                let outcome = if cmd == CMD_SPURIOUS {
                    // The bounded probe is blocking but near-instant; the
                    // recovery retry is the async wait.
                    match rb.wait_deadline(&token, Deadline::after(Duration::from_micros(1))) {
                        Ok(o) => o,
                        Err(BarrierError::Timeout { .. }) => {
                            ctl.spurious_hits.fetch_add(1, Ordering::Relaxed);
                            rb.wait_future(token)
                                .await
                                .expect("retry after spurious timeout")
                        }
                        Err(err) => panic!("chaos wait failed: {err}"),
                    }
                } else {
                    rb.wait_future(token)
                        .await
                        .expect("chaos wait must release")
                };
                check_release(&ctl, arrived, outcome.episode);
                if cmd != CMD_RUN {
                    let _ =
                        ctl.cmd
                            .compare_exchange(cmd, CMD_RUN, Ordering::AcqRel, Ordering::Relaxed);
                }
            }
        }
    }
}

/// What a freshly spawned member starts from: a founder already holds an
/// active handle; a joiner holds a staged ticket and must first wait for
/// its activation boundary.
enum Role {
    Founder(MemberHandle),
    Joiner(JoinTicket),
}

fn spawn_member<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    executor: Option<&AsyncExecutor>,
    rb: &Arc<ReconfigBarrier>,
    stop: &Arc<AtomicBool>,
    ctl: &Arc<MemberCtl>,
    role: Role,
) {
    let rb = Arc::clone(rb);
    let stop = Arc::clone(stop);
    let ctl = Arc::clone(ctl);
    match executor {
        None => {
            scope.spawn(move || {
                let h = match role {
                    Role::Founder(h) => h,
                    Role::Joiner(ticket) => {
                        // Stop-aware activation wait: `wait_active` alone
                        // would pin this thread forever if the driver
                        // declares the run dead while the join is staged.
                        while !rb.is_active(&ticket) {
                            if stop.load(Ordering::Acquire) {
                                ctl.exit();
                                return;
                            }
                            std::thread::yield_now();
                        }
                        rb.wait_active(&ticket)
                    }
                };
                ctl.publish(&h);
                member_body(&rb, h, &ctl, &stop);
            });
        }
        Some(exec) => {
            exec.spawn(async move {
                let h = match role {
                    Role::Founder(h) => h,
                    // The integration under test: the executor parks this
                    // task until the join's epoch activates.
                    Role::Joiner(ticket) => rb.activation_future(&ticket).await,
                };
                ctl.publish(&h);
                member_body_async(rb, h, ctl, stop).await;
            });
        }
    }
}

/// Runs one seeded chaos scenario to completion, panicking on any
/// liveness or agreement violation.
///
/// The driver injects `config.events` events one at a time. Before each
/// event it drains the group to quiescence (every member gone or idle
/// with its command slot free), which both serializes recovery
/// measurement and makes the event schedule a pure function of the seed.
/// After each injection it waits — under the watchdog — for the epoch to
/// advance past the injection point, and records the elapsed nanoseconds
/// as that event's recovery latency.
///
/// Teardown is quiescent: injection stops, every member but a designated
/// survivor is ordered to leave, and the survivor is stopped only once it
/// is alone — so nobody is ever stranded mid-episode.
///
/// # Panics
///
/// Panics if the epoch stalls past `config.watchdog` after an event
/// (deadlock / lost wakeup), if any member observes out-of-order release
/// epochs, or if the driver's and the barrier's membership views ever
/// diverge.
#[must_use]
pub fn run_chaos(config: ChaosConfig) -> ChaosReport {
    assert!(
        config.initial >= 2,
        "chaos needs at least two initial members"
    );
    assert!(config.capacity >= config.initial);
    let started = Instant::now();
    let backend = config.backend;
    let policy = config.policy;
    let (rb, handles) =
        ReconfigBarrier::with_policy(config.capacity, config.initial, policy, move |n| {
            backend.build(n, policy)
        });
    let rb = Arc::new(rb);
    let stop = Arc::new(AtomicBool::new(false));
    let recovery = StallHistogram::new();
    let mut rng = SplitMix64::seed_from_u64(config.seed);
    let mut counts = EventCounts::default();
    let mut roster: Vec<Arc<MemberCtl>> = Vec::new();

    let executor = match config.mode {
        ChaosMode::Async { workers } => Some(AsyncExecutor::new(workers)),
        ChaosMode::Threaded => None,
    };

    std::thread::scope(|s| {
        // A liveness violation must kill the run, not hang it: members
        // blocked in waits would pin `thread::scope` forever after the
        // driver's panic. Raising `stop` and poisoning first makes every
        // member either exit at its loop top or unwind out of its wait,
        // so the scope joins and the panic propagates.
        let fail = |what: &str| -> ! {
            stop.store(true, Ordering::Release);
            rb.poison();
            panic!(
                "chaos liveness violation: {what} (epoch {}, {} members)",
                rb.epoch(),
                rb.members(),
            );
        };
        let watchdog_wait = |pred: &mut dyn FnMut() -> bool, what: &str| {
            let deadline = Instant::now() + config.watchdog;
            while !pred() {
                if Instant::now() >= deadline {
                    fail(what);
                }
                std::thread::yield_now();
            }
        };
        // Members the driver may target: active, running, command free.
        // At quiescence this is exactly the live membership.
        let targets = |roster: &[Arc<MemberCtl>]| -> Vec<usize> {
            roster
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    c.ready.load(Ordering::Acquire)
                        && !c.gone.load(Ordering::Acquire)
                        && c.cmd.load(Ordering::Acquire) == CMD_RUN
                })
                .map(|(i, _)| i)
                .collect()
        };
        let quiescent = |roster: &[Arc<MemberCtl>]| -> bool {
            roster.iter().all(|c| {
                c.gone.load(Ordering::Acquire)
                    || (c.ready.load(Ordering::Acquire) && c.cmd.load(Ordering::Acquire) == CMD_RUN)
            })
        };

        for h in handles {
            let ctl = MemberCtl::fresh();
            spawn_member(s, executor.as_ref(), &rb, &stop, &ctl, Role::Founder(h));
            roster.push(ctl);
        }

        for _ in 0..config.events {
            // Drain to the canonical state first: every prior command
            // consumed, every joiner activated. From here the live set —
            // and therefore the event choice — depends only on the seed.
            watchdog_wait(&mut || quiescent(&roster), "group never quiesced");
            let candidates = targets(&roster);
            let live = candidates.len();
            let can_shrink = live > 2;
            let can_grow = live < config.capacity;
            let kind = loop {
                match rng.range_u64(0, 99) {
                    0..=19 if can_grow => break CMD_RUN, // join: no victim
                    20..=39 if can_shrink => break CMD_LEAVE,
                    40..=54 if can_shrink => break CMD_CRASH,
                    55..=79 => break CMD_DELAY,
                    80..=99 => break CMD_SPURIOUS,
                    _ => {}
                }
            };

            let e0 = rb.epoch();
            let injected_at = Instant::now();
            if kind == CMD_RUN {
                // A leave frees its slot only at the next boundary, so a
                // join racing a fresh departure can transiently see the
                // group full; retry under the watchdog.
                let ticket = {
                    let deadline = Instant::now() + config.watchdog;
                    loop {
                        match rb.join() {
                            Ok(t) => break t,
                            Err(_) => {
                                assert!(
                                    Instant::now() < deadline,
                                    "chaos liveness violation: join never admitted"
                                );
                                std::thread::yield_now();
                            }
                        }
                    }
                };
                let ctl = MemberCtl::fresh();
                spawn_member(s, executor.as_ref(), &rb, &stop, &ctl, Role::Joiner(ticket));
                roster.push(ctl);
                counts.joins += 1;
            } else {
                let victim = &roster[candidates[rng.below(live)]];
                victim
                    .cmd
                    .compare_exchange(CMD_RUN, kind, Ordering::AcqRel, Ordering::Acquire)
                    .expect("only the driver writes commands into a free slot");
                match kind {
                    CMD_LEAVE => counts.leaves += 1,
                    CMD_CRASH => {
                        counts.crashes += 1;
                        // Wait out the contained panic, then evict the
                        // corpse so its peers release. The victim died at
                        // its loop top — no in-flight arrival — so the
                        // eviction contract holds by construction.
                        watchdog_wait(
                            &mut || victim.crashed.load(Ordering::Acquire),
                            "crash victim never died",
                        );
                        rb.evict(
                            victim.slot.load(Ordering::Acquire),
                            victim.generation.load(Ordering::Acquire),
                        )
                        .expect("evicting a crashed member must succeed");
                    }
                    CMD_DELAY => counts.delays += 1,
                    _ => counts.spurious += 1,
                }
            }
            // Liveness after every single event: the epoch must turn
            // over again. Injection-to-turnover is the recovery latency.
            let deadline = Instant::now() + config.watchdog;
            while rb.epoch() <= e0 {
                if Instant::now() >= deadline {
                    let dump: Vec<String> = roster
                        .iter()
                        .enumerate()
                        .map(|(i, c)| {
                            format!(
                                "member {i}: slot {} gen {} cmd {} ready {} gone {} last_epoch {}",
                                c.slot.load(Ordering::Acquire),
                                c.generation.load(Ordering::Acquire),
                                c.cmd.load(Ordering::Acquire),
                                c.ready.load(Ordering::Acquire),
                                c.gone.load(Ordering::Acquire),
                                c.last_epoch.load(Ordering::Acquire),
                            )
                        })
                        .collect();
                    fail(&format!(
                        "epoch stuck after event kind {kind}\n{}",
                        dump.join("\n")
                    ));
                }
                std::thread::yield_now();
            }
            let nanos = u64::try_from(injected_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
            recovery.record(nanos);
        }

        // Quiescence, then agreement check #1: the driver's membership
        // view matches the barrier's.
        watchdog_wait(
            &mut || quiescent(&roster),
            "outstanding commands never drained",
        );
        let live = targets(&roster);
        assert_eq!(
            rb.members(),
            live.len(),
            "membership disagreement at quiescence"
        );

        // Teardown: everyone but one designated survivor leaves; the
        // survivor keeps episodes flowing so every leave's boundary
        // applies, and is stopped only once it is alone.
        let mut live = live;
        let survivor = live.pop().expect("at least the survivor is live");
        for &i in &live {
            roster[i]
                .cmd
                .compare_exchange(CMD_RUN, CMD_LEAVE, Ordering::AcqRel, Ordering::Acquire)
                .expect("command slots are free at quiescence");
        }
        watchdog_wait(
            &mut || live.iter().all(|&i| roster[i].gone.load(Ordering::Acquire)),
            "teardown leaves never completed",
        );
        stop.store(true, Ordering::Release);
        watchdog_wait(
            &mut || roster[survivor].gone.load(Ordering::Acquire),
            "survivor never stopped",
        );
        if let Some(exec) = &executor {
            exec.wait_idle();
        }
        // Agreement check #2: the survivor ran the last episode solo, so
        // its last release epoch is exactly one behind the final epoch.
        let final_epoch = rb.epoch();
        let survivor_last = roster[survivor].last_epoch.load(Ordering::Acquire);
        assert_eq!(rb.members(), 1, "teardown must leave exactly the survivor");
        assert!(
            survivor_last != u64::MAX && survivor_last + 1 == final_epoch,
            "release-epoch disagreement: survivor saw {survivor_last}, barrier at {final_epoch}"
        );
    });

    let spurious_hits = roster
        .iter()
        .map(|c| c.spurious_hits.load(Ordering::Acquire))
        .sum();
    ChaosReport {
        mode: config.mode,
        events: counts,
        episodes: rb.stats().episodes,
        final_epoch: rb.epoch(),
        final_members: rb.members(),
        agreement: true,
        spurious_hits,
        recovery: recovery.snapshot(),
        elapsed: started.elapsed(),
    }
}

/// Configuration for one seeded **transport** chaos run: a loopback mesh
/// whose links drop / delay / duplicate / reorder frames at the given
/// rates while every endpoint runs live [`fuzzy_net::NetBarrier`]
/// episodes.
///
/// This is the network-layer sibling of [`ChaosConfig`]: membership chaos
/// attacks the reconfiguration protocol, transport chaos attacks the
/// dissemination protocol's recovery path (per-round timeouts, claimed
/// retransmission, nacks). The assertion discipline is the same —
/// liveness under a watchdog, release-episode agreement across
/// endpoints.
#[derive(Debug, Clone, Copy)]
pub struct NetChaosConfig {
    /// Mesh endpoints (each one local participant).
    pub nodes: usize,
    /// Episodes every endpoint must complete.
    pub episodes: u64,
    /// Seed for the fabric's per-link fault dice. Unlike membership
    /// chaos, the *counts* are not run-deterministic: recovery
    /// retransmissions depend on real-time round expiry, so the number of
    /// frames rolled against the dice varies between runs.
    pub seed: u64,
    /// Per-frame drop probability, permille.
    pub drop_permille: u16,
    /// Per-frame duplicate probability, permille.
    pub dup_permille: u16,
    /// Per-frame delay (late but in-order) probability, permille.
    pub delay_permille: u16,
    /// Per-frame reorder probability, permille.
    pub reorder_permille: u16,
    /// Receive budget per dissemination round before recovery runs.
    pub round_timeout: Duration,
    /// Watchdog per episode wait; expiry fails the run loudly.
    pub watchdog: Duration,
}

impl NetChaosConfig {
    /// A CI-smoke scenario: 4 endpoints, moderate fault rates on every
    /// event kind.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        NetChaosConfig {
            nodes: 4,
            episodes: 60,
            seed,
            drop_permille: 50,
            dup_permille: 50,
            delay_permille: 50,
            reorder_permille: 50,
            round_timeout: Duration::from_millis(20),
            watchdog: Duration::from_secs(30),
        }
    }
}

/// Outcome of one transport chaos run. Liveness and agreement already
/// held if this was returned (violations panic inside [`run_net_chaos`]).
#[derive(Debug, Clone)]
pub struct NetChaosReport {
    /// Episodes completed per endpoint (equal across endpoints).
    pub episodes: u64,
    /// Frames dropped / duplicated / delayed / reordered by the fabric.
    pub faults: fuzzy_net::FaultCounts,
    /// Retransmissions the recovery path performed, summed over
    /// endpoints.
    pub retries: u64,
    /// Nack frames sent, summed over endpoints.
    pub nacks: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// Runs seeded transport chaos: every endpoint completes
/// `config.episodes` episodes over a faulty loopback fabric, with every
/// wait under the watchdog deadline.
///
/// # Panics
///
/// Panics if any wait times out (a wedge the recovery path failed to
/// break), errors, or releases the wrong episode — and if the fault rates
/// were nonzero but the fabric never actually injected a fault (a
/// vacuously green run is a configuration bug, not a pass).
#[must_use]
pub fn run_net_chaos(config: NetChaosConfig) -> NetChaosReport {
    use fuzzy_barrier::SplitBarrier;
    use fuzzy_net::{FaultPlan, LoopbackMesh, NetBarrier, NetConfig};

    assert!(config.nodes >= 2, "transport chaos needs a real mesh");
    let started = Instant::now();
    let plan = FaultPlan {
        seed: config.seed,
        drop_permille: config.drop_permille,
        dup_permille: config.dup_permille,
        delay_permille: config.delay_permille,
        reorder_permille: config.reorder_permille,
    };
    let mesh = LoopbackMesh::with_faults(config.nodes, plan);
    let net_config = NetConfig::new()
        .round_timeout(Some(config.round_timeout))
        // The watchdog is the only legitimate stop: recovery must keep
        // retrying for the whole wait, not declare a live peer dead.
        .resend_limit(u32::MAX);
    let barriers: Vec<Arc<NetBarrier>> = mesh
        .endpoints()
        .into_iter()
        .map(|t| NetBarrier::start(Arc::new(t), net_config))
        .collect();
    std::thread::scope(|s| {
        for b in &barriers {
            let b = Arc::clone(b);
            s.spawn(move || {
                for episode in 0..config.episodes {
                    let token = b.arrive(0);
                    let outcome = b
                        .wait_deadline(token, Deadline::after(config.watchdog))
                        .unwrap_or_else(|e| {
                            panic!(
                                "net chaos liveness violation at rank {} episode {episode}: {e}",
                                b.rank()
                            )
                        });
                    assert_eq!(
                        outcome.episode,
                        episode,
                        "release-episode disagreement at rank {}",
                        b.rank()
                    );
                }
            });
        }
    });
    let faults = mesh.fault_counts();
    if plan.total() > 0 && config.episodes * (config.nodes as u64) >= 100 {
        assert!(
            faults.drops + faults.dups + faults.delays + faults.reorders > 0,
            "fault rates were set but the fabric injected nothing"
        );
    }
    let (retries, nacks) = barriers.iter().fold((0, 0), |(r, n), b| {
        let s = b.net_stats();
        (r + s.retries, n + s.nacks)
    });
    NetChaosReport {
        episodes: config.episodes,
        faults,
        retries,
        nacks,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_barrier::TopLevel;

    #[test]
    fn threaded_smoke_survives_churn() {
        let r = run_chaos(ChaosConfig::smoke(
            BarrierChoice::Central,
            ChaosMode::Threaded,
            42,
        ));
        assert_eq!(r.events.total(), 120);
        assert!(r.agreement);
        assert_eq!(r.final_members, 1);
        assert!(
            r.episodes >= r.events.total(),
            "every event saw an epoch turn over"
        );
        assert!(
            r.events.joins > 0 && r.events.crashes > 0 && r.events.spurious > 0,
            "the event mix was actually exercised: {:?}",
            r.events
        );
        assert_eq!(
            r.recovery.buckets.iter().sum::<u64>(),
            r.events.total(),
            "one recovery sample per event"
        );
    }

    #[test]
    fn async_smoke_survives_churn() {
        let r = run_chaos(ChaosConfig::smoke(
            BarrierChoice::Dissemination,
            ChaosMode::Async { workers: 3 },
            7,
        ));
        assert!(r.agreement);
        assert_eq!(r.final_members, 1);
        assert_eq!(r.events.total(), 120);
    }

    #[test]
    fn equal_seeds_schedule_equal_events() {
        let a = run_chaos(ChaosConfig::smoke(
            BarrierChoice::Counting,
            ChaosMode::Threaded,
            9,
        ));
        let b = run_chaos(ChaosConfig::smoke(
            BarrierChoice::Counting,
            ChaosMode::Threaded,
            9,
        ));
        assert_eq!(
            a.events, b.events,
            "event schedule must be seed-deterministic"
        );
    }

    #[test]
    fn net_chaos_smoke_survives_transport_faults() {
        let r = run_net_chaos(NetChaosConfig::smoke(11));
        assert_eq!(r.episodes, 60);
        assert!(
            r.faults.drops > 0,
            "drop rate was set but nothing dropped: {:?}",
            r.faults
        );
        assert!(
            r.retries > 0,
            "dropped frames must have forced the recovery path"
        );
    }

    #[test]
    fn net_chaos_exercises_every_fault_kind() {
        let r = run_net_chaos(NetChaosConfig {
            episodes: 120,
            ..NetChaosConfig::smoke(5)
        });
        assert!(r.faults.drops > 0, "{:?}", r.faults);
        assert!(r.faults.dups > 0, "{:?}", r.faults);
        assert!(r.faults.delays > 0, "{:?}", r.faults);
        assert!(r.faults.reorders > 0, "{:?}", r.faults);
    }

    #[test]
    fn tree_and_hier_backends_survive_smoke() {
        for backend in [
            BarrierChoice::Tree { fan_in: 2 },
            BarrierChoice::Hier {
                shard_size: 2,
                top: TopLevel::Dissemination,
            },
        ] {
            let r = run_chaos(ChaosConfig::smoke(backend, ChaosMode::Threaded, 3));
            assert!(r.agreement, "{backend:?}");
        }
    }
}
