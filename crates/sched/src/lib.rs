//! # fuzzy-sched
//!
//! Static and run-time scheduling of barrier-synchronized parallel loops,
//! reproducing Secs. 7.3 and 7.4 of Gupta's fuzzy-barrier paper:
//!
//! * [`static_sched`] — block, cyclic and *rotated* block schedules
//!   (Fig. 11: the extra iteration takes turns so processors do equal work
//!   over outer iterations);
//! * [`self_sched`] — self-scheduling, fixed chunking and Guided
//!   Self-Scheduling (the paper's \[19\]) over a thread-safe work queue;
//! * [`workload`] — iteration cost models (uniform, bimodal if-statements,
//!   jitter, triangular);
//! * [`executor`] — a deterministic virtual-time executor that reports
//!   idle/stall time at point vs. fuzzy barriers, plus a real thread
//!   executor built on the `fuzzy-barrier` crate;
//! * [`supervisor`] — a fault-tolerant executor: panicking workers poison
//!   the barrier, get evicted, and the supervisor retries the episode
//!   with their iterations redistributed over the survivors;
//! * [`async_exec`] — a std-only M:N episode executor: `M ≫ N` logical
//!   participants, each an async `arrive → region → await` loop over
//!   `fuzzy_barrier::AsyncBarrier`, multiplexed over `N` worker threads
//!   with per-worker run queues and work stealing;
//! * [`chaos`] — a seeded real-thread chaos harness that injects
//!   join/leave/crash/delay/spurious-timeout events into live episodes
//!   over a dynamic-membership `ReconfigBarrier` and asserts liveness
//!   and release-epoch agreement — plus transport chaos
//!   ([`run_net_chaos`]) that drops, delays, duplicates and reorders
//!   frames under a live distributed `NetBarrier`;
//! * [`multiproc`] — a harness that forks real worker *processes* (by
//!   re-executing the calling binary) and runs episodes over a
//!   `fuzzy-net` socket mesh, with a parent watchdog so a wedged mesh
//!   becomes a loud failure rather than a hung run.
//!
//! ## Example
//!
//! ```
//! use fuzzy_sched::executor::{simulate_dynamic, simulate_static};
//! use fuzzy_sched::self_sched::GuidedSelfScheduling;
//! use fuzzy_sched::static_sched::block;
//! use fuzzy_sched::workload::CostModel;
//!
//! let costs = CostModel::Linear { base: 1, slope: 3 }.costs(32, 0);
//! let static_run = simulate_static(&block(32, 4), &costs);
//! let gss_run = simulate_dynamic(4, &costs, &GuidedSelfScheduling, 1);
//! assert!(gss_run.total_point_idle() <= static_run.total_point_idle());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod async_exec;
pub mod chaos;
pub mod executor;
pub mod multiproc;
pub mod self_sched;
pub mod static_sched;
pub mod supervisor;
pub mod workload;

pub use async_exec::{run_async_episodes, AsyncExecutor, AsyncRunReport};
pub use chaos::{
    run_chaos, run_net_chaos, ChaosConfig, ChaosMode, ChaosReport, EventCounts, NetChaosConfig,
    NetChaosReport,
};
pub use executor::{
    run_threaded, run_threaded_with, simulate_dynamic, simulate_static, BarrierChoice,
    ThreadReport, VirtualReport,
};
pub use multiproc::{
    maybe_run_worker, run_multiproc, MeshTransport, MultiprocConfig, MultiprocReport, WorkerFate,
    WorkerOutcome,
};
pub use self_sched::{
    ChunkPolicy, Factoring, FixedChunk, GuidedSelfScheduling, SelfScheduling, Trapezoid, WorkQueue,
};
pub use static_sched::{block, cyclic, rotated_block, Assignment};
pub use supervisor::{run_supervised, run_supervised_with, ReadmitPolicy, SupervisedReport};
pub use workload::CostModel;
