//! Loop executors: a deterministic virtual-time simulator and a real
//! thread-based runner built on the `fuzzy-barrier` crate.
//!
//! The virtual-time executor reproduces the *shape* of the scheduling
//! results (who idles, by how much) deterministically; the threaded
//! executor produces wall-clock numbers comparable to the paper's Encore
//! measurement.

use crate::self_sched::{ChunkPolicy, WorkQueue};
use crate::static_sched::Assignment;
use fuzzy_barrier::{
    CentralBarrier, CountingBarrier, DisseminationBarrier, HierBarrier, SplitBarrier, StallPolicy,
    TopLevel, TreeBarrier,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Duration;

/// Result of a virtual-time inner-loop execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualReport {
    /// Per-processor finish time (work units).
    pub finish: Vec<u64>,
    /// Number of dispatches (chunk grabs) per processor.
    pub dispatches: Vec<usize>,
}

impl VirtualReport {
    /// The loop's completion time (the slowest processor).
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.finish.iter().copied().max().unwrap_or(0)
    }

    /// Idle time per processor at a **point** barrier closing the loop.
    #[must_use]
    pub fn point_idle(&self) -> Vec<u64> {
        let max = self.makespan();
        self.finish.iter().map(|&f| max - f).collect()
    }

    /// Stall time per processor at a **fuzzy** barrier whose barrier
    /// region gives each processor `region` extra units of useful work
    /// after arriving: a processor stalls only for
    /// `max(0, makespan − (finish + region))`.
    #[must_use]
    pub fn fuzzy_stall(&self, region: u64) -> Vec<u64> {
        let max = self.makespan();
        self.finish
            .iter()
            .map(|&f| max.saturating_sub(f + region))
            .collect()
    }

    /// Total idle over processors at a point barrier.
    #[must_use]
    pub fn total_point_idle(&self) -> u64 {
        self.point_idle().iter().sum()
    }

    /// Total stall over processors at a fuzzy barrier with the given
    /// region size.
    #[must_use]
    pub fn total_fuzzy_stall(&self, region: u64) -> u64 {
        self.fuzzy_stall(region).iter().sum()
    }
}

/// Executes a static assignment in virtual time.
#[must_use]
pub fn simulate_static(assignment: &Assignment, costs: &[u64]) -> VirtualReport {
    let finish = crate::static_sched::per_proc_work(assignment, costs);
    VirtualReport {
        dispatches: assignment
            .iter()
            .map(|c| usize::from(!c.is_empty()))
            .collect(),
        finish,
    }
}

/// Executes a self-scheduled loop in virtual time: processors repeatedly
/// grab chunks from a shared queue; each grab costs `dispatch_cost` (the
/// critical-section overhead of the scheduler itself) and each iteration
/// its cost from `costs`.
///
/// The processor with the smallest local clock always grabs next,
/// modelling the race on the shared iteration counter.
#[must_use]
pub fn simulate_dynamic(
    procs: usize,
    costs: &[u64],
    policy: &dyn ChunkPolicy,
    dispatch_cost: u64,
) -> VirtualReport {
    assert!(procs > 0, "need at least one processor");
    let queue = WorkQueue::new(costs.len());
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..procs).map(|p| Reverse((0u64, p))).collect();
    let mut finish = vec![0u64; procs];
    let mut dispatches = vec![0usize; procs];
    while let Some(Reverse((t, p))) = heap.pop() {
        match queue.grab(policy, procs) {
            Some(range) => {
                let work: u64 = range.clone().map(|i| costs[i]).sum();
                dispatches[p] += 1;
                heap.push(Reverse((t + dispatch_cost + work, p)));
            }
            None => {
                finish[p] = t;
            }
        }
    }
    VirtualReport { finish, dispatches }
}

/// Result of a threaded run.
#[derive(Debug, Clone, Default)]
pub struct ThreadReport {
    /// Wall-clock duration of the whole loop nest.
    pub elapsed: Duration,
    /// Barrier statistics accumulated over all episodes.
    pub barrier: fuzzy_barrier::stats::StatsSnapshot,
    /// Full barrier telemetry (stall histogram, arrival spread,
    /// per-participant counters) for the same run; `telemetry.base`
    /// equals `barrier`.
    pub telemetry: fuzzy_barrier::TelemetrySnapshot,
}

/// Calibrated busy work: spins for roughly `units` abstract units.
#[inline]
pub fn busy(units: u64) {
    let mut acc = 0u64;
    for i in 0..units * 8 {
        acc = acc.wrapping_mul(31).wrapping_add(i);
    }
    std::hint::black_box(acc);
}

/// How iterations are assigned in a threaded run.
pub enum Strategy<'a> {
    /// A fixed assignment per outer iteration (function of the outer
    /// index, enabling Fig. 11's rotation).
    Static(&'a (dyn Fn(usize) -> Assignment + Sync)),
    /// Self-scheduled from a shared queue with the given policy.
    Dynamic(&'a dyn ChunkPolicy),
}

impl std::fmt::Debug for Strategy<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Static(_) => f.write_str("Strategy::Static(..)"),
            Strategy::Dynamic(p) => write!(f, "Strategy::Dynamic({})", p.name()),
        }
    }
}

/// Which split-phase barrier backend a threaded run synchronizes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BarrierChoice {
    /// Sense-reversing centralized barrier (the historical default).
    Central,
    /// Flat epoch-counting barrier.
    Counting,
    /// Dissemination barrier.
    Dissemination,
    /// Combining tree with the given fan-in.
    Tree {
        /// Children per tree node (≥ 2).
        fan_in: usize,
    },
    /// Hierarchical sharded barrier.
    Hier {
        /// Participants per arrival shard (≥ 1).
        shard_size: usize,
        /// Leader protocol across shards.
        top: TopLevel,
    },
}

impl BarrierChoice {
    /// Builds the chosen backend for `procs` participants.
    ///
    /// # Panics
    ///
    /// Panics if `procs == 0`, or on a degenerate shape (`fan_in < 2`,
    /// `shard_size == 0`).
    #[must_use]
    pub fn build(self, procs: usize, policy: StallPolicy) -> Arc<dyn SplitBarrier> {
        match self {
            BarrierChoice::Central => Arc::new(CentralBarrier::with_policy(procs, policy)),
            BarrierChoice::Counting => Arc::new(CountingBarrier::with_policy(procs, policy)),
            BarrierChoice::Dissemination => {
                Arc::new(DisseminationBarrier::with_policy(procs, policy))
            }
            BarrierChoice::Tree { fan_in } => {
                Arc::new(TreeBarrier::with_fan_in(procs, fan_in, policy))
            }
            BarrierChoice::Hier { shard_size, top } => {
                Arc::new(HierBarrier::with_shards(procs, shard_size, top, policy))
            }
        }
    }
}

/// Runs `outer` barrier-separated phases over `costs[outer_idx][iter]`
/// work on `procs` OS threads, synchronizing with a split-phase barrier.
///
/// After finishing its share of an outer iteration, each thread *arrives*,
/// performs `region_units` of barrier-region work, and then *waits* — so
/// `region_units = 0` is the point-barrier baseline and growing it
/// reproduces the paper's Sec. 8 sweep.
///
/// # Panics
///
/// Panics if `procs == 0` or a static assignment has the wrong arity.
#[must_use]
pub fn run_threaded(
    procs: usize,
    costs: &[Vec<u64>],
    strategy: &Strategy<'_>,
    region_units: u64,
    stall_policy: StallPolicy,
) -> ThreadReport {
    run_threaded_with(
        procs,
        costs,
        strategy,
        region_units,
        stall_policy,
        BarrierChoice::Central,
    )
}

/// [`run_threaded`] with an explicit [`BarrierChoice`], so experiments can
/// sweep the backend dimension of the same loop nest.
///
/// # Panics
///
/// Panics if `procs == 0` or a static assignment has the wrong arity.
#[must_use]
pub fn run_threaded_with(
    procs: usize,
    costs: &[Vec<u64>],
    strategy: &Strategy<'_>,
    region_units: u64,
    stall_policy: StallPolicy,
    backend: BarrierChoice,
) -> ThreadReport {
    assert!(procs > 0, "need at least one processor");
    let barrier: Arc<dyn SplitBarrier> = backend.build(procs, stall_policy);
    // Pre-build the per-outer work pools for the dynamic strategy.
    let queues: Vec<WorkQueue> = costs.iter().map(|c| WorkQueue::new(c.len())).collect();

    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for p in 0..procs {
            let barrier = Arc::clone(&barrier);
            let queues = &queues;
            s.spawn(move || {
                for (k, outer_costs) in costs.iter().enumerate() {
                    match strategy {
                        Strategy::Static(assign_fn) => {
                            let assignment = assign_fn(k);
                            assert_eq!(assignment.len(), procs, "assignment arity");
                            for &i in &assignment[p] {
                                busy(outer_costs[i]);
                            }
                        }
                        Strategy::Dynamic(policy) => {
                            while let Some(range) = queues[k].grab(*policy, procs) {
                                for i in range {
                                    busy(outer_costs[i]);
                                }
                            }
                        }
                    }
                    let token = barrier.arrive(p);
                    busy(region_units);
                    barrier.wait(token);
                }
            });
        }
    });
    ThreadReport {
        elapsed: start.elapsed(),
        barrier: barrier.stats(),
        telemetry: barrier.telemetry(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::self_sched::{GuidedSelfScheduling, SelfScheduling};
    use crate::static_sched::block;
    use crate::workload::CostModel;

    #[test]
    fn static_simulation_matches_hand_computation() {
        let a = block(4, 2);
        let r = simulate_static(&a, &[1, 2, 3, 4]);
        assert_eq!(r.finish, vec![3, 7]);
        assert_eq!(r.makespan(), 7);
        assert_eq!(r.point_idle(), vec![4, 0]);
        assert_eq!(r.total_point_idle(), 4);
    }

    #[test]
    fn fuzzy_region_absorbs_idle() {
        let a = block(4, 2);
        let r = simulate_static(&a, &[1, 2, 3, 4]);
        assert_eq!(r.fuzzy_stall(0), vec![4, 0]);
        assert_eq!(r.fuzzy_stall(3), vec![1, 0]);
        assert_eq!(r.fuzzy_stall(4), vec![0, 0]);
        assert_eq!(r.total_fuzzy_stall(10), 0);
    }

    #[test]
    fn dynamic_simulation_executes_everything() {
        let costs = CostModel::Jitter { lo: 1, hi: 20 }.costs(64, 3);
        let r = simulate_dynamic(4, &costs, &GuidedSelfScheduling, 2);
        let total: u64 = costs.iter().sum();
        let busy: u64 =
            r.finish.iter().sum::<u64>() - r.dispatches.iter().map(|&d| d as u64 * 2).sum::<u64>();
        // Every unit of work is accounted for on some processor.
        assert_eq!(busy, total);
    }

    #[test]
    fn gss_balances_better_than_block_on_skewed_work() {
        // Triangular costs defeat block scheduling; GSS should leave far
        // less idle time at the closing barrier.
        let costs = CostModel::Linear { base: 1, slope: 4 }.costs(64, 0);
        let static_r = simulate_static(&block(64, 4), &costs);
        let gss_r = simulate_dynamic(4, &costs, &GuidedSelfScheduling, 1);
        assert!(
            gss_r.total_point_idle() < static_r.total_point_idle() / 2,
            "gss idle {} vs block idle {}",
            gss_r.total_point_idle(),
            static_r.total_point_idle()
        );
    }

    #[test]
    fn self_scheduling_minimizes_idle_but_maximizes_dispatches() {
        let costs = CostModel::Uniform { cost: 5 }.costs(40, 0);
        let ss = simulate_dynamic(4, &costs, &SelfScheduling, 0);
        let gss = simulate_dynamic(4, &costs, &GuidedSelfScheduling, 0);
        assert!(ss.dispatches.iter().sum::<usize>() > gss.dispatches.iter().sum::<usize>());
    }

    #[test]
    fn threaded_run_completes_and_counts_episodes() {
        let costs: Vec<Vec<u64>> = (0..5).map(|_| vec![10u64; 8]).collect();
        let report = run_threaded(
            4,
            &costs,
            &Strategy::Dynamic(&GuidedSelfScheduling),
            0,
            StallPolicy::yielding(),
        );
        assert_eq!(report.barrier.episodes, 5);
        assert_eq!(report.barrier.arrivals, 20);
        assert_eq!(report.telemetry.base, report.barrier);
        assert_eq!(report.telemetry.per_participant.len(), 4);
        let per: u64 = report
            .telemetry
            .per_participant
            .iter()
            .map(|p| p.arrivals)
            .sum();
        assert_eq!(per, 20);
    }

    #[test]
    fn threaded_run_sweeps_every_backend() {
        let costs: Vec<Vec<u64>> = (0..3).map(|_| vec![5u64; 8]).collect();
        let choices = [
            BarrierChoice::Central,
            BarrierChoice::Counting,
            BarrierChoice::Dissemination,
            BarrierChoice::Tree { fan_in: 2 },
            BarrierChoice::Hier {
                shard_size: 2,
                top: TopLevel::Dissemination,
            },
            BarrierChoice::Hier {
                shard_size: 2,
                top: TopLevel::Tree,
            },
        ];
        for choice in choices {
            let report = run_threaded_with(
                4,
                &costs,
                &Strategy::Dynamic(&GuidedSelfScheduling),
                0,
                StallPolicy::yielding(),
                choice,
            );
            assert_eq!(report.barrier.episodes, 3, "{choice:?}");
            assert_eq!(report.barrier.arrivals, 12, "{choice:?}");
        }
    }

    #[test]
    fn threaded_static_rotation_runs() {
        let costs: Vec<Vec<u64>> = (0..6).map(|_| vec![5u64; 4]).collect();
        let assign = |outer: usize| crate::static_sched::rotated_block(4, 3, outer);
        let report = run_threaded(
            3,
            &costs,
            &Strategy::Static(&assign),
            10,
            StallPolicy::yielding(),
        );
        assert_eq!(report.barrier.episodes, 6);
    }
}
