//! Static loop schedules (Sec. 7.3, Fig. 11).
//!
//! "The schedule for execution of a parallel loop can be statically
//! specified at compile-time if the number of loop iterations and the
//! number of available processors are known." When the iteration count
//! does not divide the processor count, one processor gets an extra
//! iteration — unless the extra iteration *rotates* across outer
//! iterations (Fig. 11(b)), equalizing work over time.

/// A static assignment of inner-loop iterations to processors for one
/// outer iteration: `assignment[p]` lists the iteration indices processor
/// `p` executes, in order.
pub type Assignment = Vec<Vec<usize>>;

/// Block (contiguous-chunk) scheduling: the first `iters % procs`
/// processors receive one extra iteration.
///
/// # Panics
///
/// Panics if `procs == 0`.
#[must_use]
pub fn block(iters: usize, procs: usize) -> Assignment {
    assert!(procs > 0, "need at least one processor");
    let base = iters / procs;
    let extra = iters % procs;
    let mut out = Vec::with_capacity(procs);
    let mut next = 0usize;
    for p in 0..procs {
        let take = base + usize::from(p < extra);
        out.push((next..next + take).collect());
        next += take;
    }
    out
}

/// Cyclic (round-robin) scheduling: iteration `i` goes to processor
/// `i % procs`.
///
/// # Panics
///
/// Panics if `procs == 0`.
#[must_use]
pub fn cyclic(iters: usize, procs: usize) -> Assignment {
    assert!(procs > 0, "need at least one processor");
    let mut out = vec![Vec::new(); procs];
    for i in 0..iters {
        out[i % procs].push(i);
    }
    out
}

/// Fig. 11(b): block scheduling whose extra iterations rotate with the
/// outer iteration, so that "over multiple iterations of the outer loop,
/// the processors do equal amounts of work". `outer` is the outer
/// iteration index (0-based).
///
/// # Panics
///
/// Panics if `procs == 0`.
#[must_use]
pub fn rotated_block(iters: usize, procs: usize, outer: usize) -> Assignment {
    assert!(procs > 0, "need at least one processor");
    let plain = block(iters, procs);
    // Rotate which processor receives which chunk by `outer`.
    let mut out = vec![Vec::new(); procs];
    for (chunk_idx, chunk) in plain.into_iter().enumerate() {
        out[(chunk_idx + outer) % procs] = chunk;
    }
    out
}

/// Total work assigned to each processor by `assignment` under the given
/// per-iteration costs.
#[must_use]
pub fn per_proc_work(assignment: &Assignment, costs: &[u64]) -> Vec<u64> {
    assignment
        .iter()
        .map(|iters| iters.iter().map(|&i| costs[i]).sum())
        .collect()
}

/// Idle time (work units) per processor at a barrier closing the inner
/// loop: the slowest processor's total minus each processor's own.
#[must_use]
pub fn idle_at_barrier(work: &[u64]) -> Vec<u64> {
    let max = work.iter().copied().max().unwrap_or(0);
    work.iter().map(|w| max - w).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_covers_all_iterations_once() {
        for iters in 0..20 {
            for procs in 1..6 {
                let a = block(iters, procs);
                let mut all: Vec<usize> = a.iter().flatten().copied().collect();
                all.sort_unstable();
                assert_eq!(all, (0..iters).collect::<Vec<_>>(), "{iters}/{procs}");
            }
        }
    }

    #[test]
    fn block_chunk_sizes_differ_by_at_most_one() {
        let a = block(10, 4);
        let sizes: Vec<usize> = a.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn cyclic_round_robins() {
        let a = cyclic(5, 2);
        assert_eq!(a[0], vec![0, 2, 4]);
        assert_eq!(a[1], vec![1, 3]);
    }

    #[test]
    fn rotation_moves_the_extra_iteration() {
        // Fig. 11: 4 iterations on 3 processors. The extra iteration
        // lands on a different processor each outer iteration.
        let who_gets_two = |outer: usize| -> usize {
            rotated_block(4, 3, outer)
                .iter()
                .position(|c| c.len() == 2)
                .unwrap()
        };
        let owners: Vec<usize> = (0..3).map(who_gets_two).collect();
        let mut sorted = owners.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            vec![0, 1, 2],
            "each processor takes a turn: {owners:?}"
        );
    }

    #[test]
    fn rotation_equalizes_work_over_period() {
        // Over `procs` consecutive outer iterations, every processor
        // executes the same total number of iterations.
        let procs = 3;
        let iters = 4;
        let mut totals = vec![0usize; procs];
        for outer in 0..procs {
            for (p, chunk) in rotated_block(iters, procs, outer).iter().enumerate() {
                totals[p] += chunk.len();
            }
        }
        assert!(totals.iter().all(|&t| t == totals[0]), "{totals:?}");
    }

    #[test]
    fn work_and_idle_computations() {
        let a = block(4, 2); // [0,1], [2,3]
        let costs = vec![1, 2, 3, 4];
        let work = per_proc_work(&a, &costs);
        assert_eq!(work, vec![3, 7]);
        assert_eq!(idle_at_barrier(&work), vec![4, 0]);
    }

    #[test]
    fn empty_iterations_yield_empty_chunks() {
        let a = block(0, 3);
        assert!(a.iter().all(Vec::is_empty));
        assert_eq!(idle_at_barrier(&[]), Vec::<u64>::new());
    }
}
