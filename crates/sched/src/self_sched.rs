//! Run-time (self-)scheduling of loop iterations (Sec. 7.4).
//!
//! "In situations where the number of loop iterations and/or the number of
//! processors available are not known at compile-time, compiler assisted
//! run-time scheduling techniques can be used." A [`ChunkPolicy`] decides
//! how many iterations a processor grabs from the shared work pool each
//! time it asks; [`WorkQueue`] is the pool itself (usable from real
//! threads).

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many iterations to hand a processor that asks for work.
pub trait ChunkPolicy: Send + Sync + fmt::Debug {
    /// Chunk size given `remaining` unassigned iterations and `procs`
    /// processors. Must return ≥ 1 when `remaining > 0`.
    fn chunk(&self, remaining: usize, procs: usize) -> usize;

    /// Human-readable policy name (for experiment tables).
    fn name(&self) -> &'static str;
}

/// Pure self-scheduling: one iteration at a time. Minimal idle time at the
/// end, maximal dispatch overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct SelfScheduling;

impl ChunkPolicy for SelfScheduling {
    fn chunk(&self, remaining: usize, _procs: usize) -> usize {
        usize::from(remaining > 0)
    }

    fn name(&self) -> &'static str {
        "self"
    }
}

/// Fixed-size chunking.
#[derive(Debug, Clone, Copy)]
pub struct FixedChunk(
    /// The chunk size (≥ 1).
    pub usize,
);

impl ChunkPolicy for FixedChunk {
    fn chunk(&self, remaining: usize, _procs: usize) -> usize {
        self.0.max(1).min(remaining)
    }

    fn name(&self) -> &'static str {
        "chunk"
    }
}

/// Guided Self-Scheduling (Polychronopoulos & Kuck, the paper's \[19\]):
/// each request receives ⌈remaining / procs⌉ iterations, so chunks start
/// large and shrink toward 1, and processors "complete execution at about
/// the same time".
#[derive(Debug, Clone, Copy, Default)]
pub struct GuidedSelfScheduling;

impl ChunkPolicy for GuidedSelfScheduling {
    fn chunk(&self, remaining: usize, procs: usize) -> usize {
        if remaining == 0 {
            0
        } else {
            remaining.div_ceil(procs.max(1))
        }
    }

    fn name(&self) -> &'static str {
        "gss"
    }
}

/// Factoring (Hummel/Schonberg/Flynn), in its stateless per-grab form
/// ("FAC2"): every chunk is `remaining / (2·procs)`, so a round of
/// `procs` grabs consumes roughly half the remaining work — between
/// fixed chunking's low overhead and GSS's adaptivity. A useful
/// comparison point for the paper's Sec. 7.4 discussion of run-time
/// scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct Factoring;

impl ChunkPolicy for Factoring {
    fn chunk(&self, remaining: usize, procs: usize) -> usize {
        if remaining == 0 {
            0
        } else {
            // Chunk so that a full batch of `procs` chunks consumes about
            // half the remaining work.
            (remaining.div_ceil(2 * procs.max(1))).max(1)
        }
    }

    fn name(&self) -> &'static str {
        "factoring"
    }
}

/// Trapezoid self-scheduling (Tzen/Ni): chunk sizes decrease linearly
/// from `first = total/(2*procs)` down to 1. Cheaper to compute than GSS
/// while keeping most of its balance. The linear decrement is derived
/// from the remaining work on each grab, making it usable without
/// knowing the original trip count.
#[derive(Debug, Clone, Copy, Default)]
pub struct Trapezoid;

impl ChunkPolicy for Trapezoid {
    fn chunk(&self, remaining: usize, procs: usize) -> usize {
        if remaining == 0 {
            0
        } else {
            // Linear ramp: proportional to sqrt of remaining, bounded by
            // the classic first-chunk size. This keeps chunks decreasing
            // roughly linearly in the number of grabs.
            let first = (remaining / (2 * procs.max(1))).max(1);
            let est = (remaining as f64).sqrt() as usize;
            first.min(est.max(1))
        }
    }

    fn name(&self) -> &'static str {
        "trapezoid"
    }
}

/// A shared pool of loop iterations `0..total`, dispensed in chunks chosen
/// by a [`ChunkPolicy`]. Thread-safe; used by both the virtual-time
/// executor and real-thread experiments.
#[derive(Debug)]
pub struct WorkQueue {
    total: usize,
    next: AtomicUsize,
}

impl WorkQueue {
    /// A queue over iterations `0..total`.
    #[must_use]
    pub fn new(total: usize) -> Self {
        WorkQueue {
            total,
            next: AtomicUsize::new(0),
        }
    }

    /// Grabs the next chunk under `policy` for a machine with `procs`
    /// processors. Returns `None` when the pool is exhausted.
    ///
    /// The chunk size is computed from the remaining count at acquisition
    /// time using a compare-exchange loop, so concurrent grabbers never
    /// receive overlapping ranges.
    pub fn grab(&self, policy: &dyn ChunkPolicy, procs: usize) -> Option<Range<usize>> {
        let mut cur = self.next.load(Ordering::Relaxed);
        loop {
            if cur >= self.total {
                return None;
            }
            let remaining = self.total - cur;
            let take = policy.chunk(remaining, procs).clamp(1, remaining);
            match self.next.compare_exchange_weak(
                cur,
                cur + take,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(cur..cur + take),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total iterations in the pool.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Iterations dispensed so far.
    #[must_use]
    pub fn dispensed(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.total)
    }
}

/// Convenience: the full sequence of chunks a single consumer would see.
#[must_use]
pub fn chunk_sequence(total: usize, procs: usize, policy: &dyn ChunkPolicy) -> Vec<usize> {
    let queue = WorkQueue::new(total);
    let mut out = Vec::new();
    while let Some(r) = queue.grab(policy, procs) {
        out.push(r.len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn gss_chunks_decay_toward_one() {
        // Classic GSS example: 100 iterations, 4 processors:
        // 25, 19, 14, 11, 8, 6, 5, 3, 3, 2, 1, 1, 1, 1  (sums to 100)
        let seq = chunk_sequence(100, 4, &GuidedSelfScheduling);
        assert_eq!(seq.iter().sum::<usize>(), 100);
        assert_eq!(seq[0], 25);
        assert!(seq.windows(2).all(|w| w[0] >= w[1]), "{seq:?}");
        assert_eq!(*seq.last().unwrap(), 1);
    }

    #[test]
    fn self_scheduling_is_all_ones() {
        let seq = chunk_sequence(5, 3, &SelfScheduling);
        assert_eq!(seq, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn fixed_chunks_respect_remainder() {
        let seq = chunk_sequence(10, 3, &FixedChunk(4));
        assert_eq!(seq, vec![4, 4, 2]);
    }

    #[test]
    fn concurrent_grabs_partition_the_range() {
        let queue = Arc::new(WorkQueue::new(10_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let q = Arc::clone(&queue);
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                while let Some(r) = q.grab(&GuidedSelfScheduling, 8) {
                    mine.extend(r);
                }
                mine
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10_000).collect::<Vec<_>>());
        assert_eq!(queue.dispensed(), 10_000);
    }

    #[test]
    fn factoring_first_chunk_is_an_eighth() {
        let seq = chunk_sequence(128, 4, &Factoring);
        assert_eq!(seq.iter().sum::<usize>(), 128);
        // First chunk: 128 / (2*4) = 16; chunks never grow.
        assert_eq!(seq[0], 16);
        assert!(seq.windows(2).all(|w| w[0] >= w[1]), "{seq:?}");
        // Smaller chunks than GSS at the start (lower end-imbalance risk).
        let gss = chunk_sequence(128, 4, &GuidedSelfScheduling);
        assert!(seq[0] < gss[0]);
    }

    #[test]
    fn trapezoid_covers_and_decreases() {
        let seq = chunk_sequence(400, 4, &Trapezoid);
        assert_eq!(seq.iter().sum::<usize>(), 400);
        assert!(seq.windows(2).all(|w| w[0] >= w[1]), "{seq:?}");
        assert_eq!(*seq.last().unwrap(), 1);
    }

    #[test]
    fn empty_queue_returns_none() {
        let queue = WorkQueue::new(0);
        assert!(queue.grab(&SelfScheduling, 4).is_none());
    }
}
