//! Multi-process episode harness: real OS processes over a socket mesh.
//!
//! Everything else in this crate synchronizes threads inside one address
//! space. This module forks **real worker processes** — separate address
//! spaces, separate lifetimes, killable with a signal — and has them run
//! fuzzy-barrier episodes over a [`fuzzy_net::NetBarrier`] on Unix-domain
//! or TCP sockets. It exists for two reasons:
//!
//! * the `exp_net_scale` experiment needs genuine process-granularity
//!   endpoints, or the socket path would be theater over shared memory;
//! * the acceptance scenario — *killing one worker mid-episode poisons
//!   (not hangs) all survivors within the deadline* — can only be tested
//!   with a process that actually dies (`std::process::abort`), taking
//!   its sockets with it and sending no `Bye`.
//!
//! # Self-exec protocol
//!
//! There is no `fork()` in safe std, so workers are re-executions of the
//! calling binary. The parent spawns `config.exe` with
//! [`ROLE_ENV`]`=worker` plus the `FUZZY_NET_*` parameter environment; the
//! child's `main` (or a designated `#[test]` entry) calls
//! [`maybe_run_worker`] *first thing*, which is a no-op in the parent but
//! hijacks the process in a worker: it runs the episode loop, writes a
//! JSON outcome to the [`RESULT_ENV`] path, and exits with a code that
//! names its fate ([`EXIT_RELEASED`], [`EXIT_POISONED`], ...). The parent
//! polls children under a deadline, so a wedged mesh becomes a killed
//! process group and a loud [`WorkerFate::Wedged`] — never a hung test.

use fuzzy_barrier::{BarrierError, Deadline, SplitBarrier};
use fuzzy_net::{NetBarrier, NetConfig, SocketTransport, Transport};
use fuzzy_util::{Json, SplitMix64};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Env var that marks a process as a spawned worker.
pub const ROLE_ENV: &str = "FUZZY_NET_ROLE";
/// Worker rank within the mesh.
pub const RANK_ENV: &str = "FUZZY_NET_RANK";
/// Mesh size.
pub const NODES_ENV: &str = "FUZZY_NET_NODES";
/// Episodes each worker runs.
pub const EPISODES_ENV: &str = "FUZZY_NET_EPISODES";
/// Mean fuzzy-region busy time per episode, microseconds.
pub const REGION_ENV: &str = "FUZZY_NET_REGION_US";
/// Seed for the worker's region-jitter RNG.
pub const SEED_ENV: &str = "FUZZY_NET_SEED";
/// Transport selector: `uds` or `tcp`.
pub const TRANSPORT_ENV: &str = "FUZZY_NET_TRANSPORT";
/// Socket directory (UDS transport).
pub const DIR_ENV: &str = "FUZZY_NET_DIR";
/// Comma-separated socket addresses, rank-ordered (TCP transport).
pub const ADDRS_ENV: &str = "FUZZY_NET_ADDRS";
/// If set, the worker calls `std::process::abort()` upon *arriving* at
/// this episode — mid-episode, inside the fuzzy region, sockets open.
pub const KILL_AT_ENV: &str = "FUZZY_NET_KILL_AT";
/// Path the worker writes its JSON outcome to.
pub const RESULT_ENV: &str = "FUZZY_NET_RESULT";

/// Worker exit code: every episode released.
pub const EXIT_RELEASED: i32 = 0;
/// Worker exit code: a wait observed poison (expected for survivors of a
/// killed peer).
pub const EXIT_POISONED: i32 = 3;
/// Worker exit code: a wait hit its deadline.
pub const EXIT_TIMEOUT: i32 = 4;
/// Worker exit code: mesh formation or configuration failed.
pub const EXIT_SETUP: i32 = 5;

/// Which socket transport the workers form their mesh over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshTransport {
    /// Unix-domain sockets under a parent-managed temp directory.
    Unix,
    /// TCP over loopback; the parent picks free ports up front.
    Tcp,
}

/// Configuration for one multi-process run.
#[derive(Debug, Clone)]
pub struct MultiprocConfig {
    /// Binary to re-execute as workers (usually
    /// `std::env::current_exe()`).
    pub exe: PathBuf,
    /// Extra argv for the workers. A test binary names its worker entry
    /// here (e.g. `["net_worker_entry", "--exact", "--nocapture"]`) so
    /// libtest routes the child straight into [`maybe_run_worker`].
    pub args: Vec<String>,
    /// Worker processes to fork (mesh size).
    pub nodes: usize,
    /// Episodes each worker runs.
    pub episodes: u64,
    /// Mean fuzzy-region busy time per episode.
    pub region: Duration,
    /// Seed for per-worker region jitter (worker `r` derives from
    /// `seed ^ r`).
    pub seed: u64,
    /// Socket flavor for the mesh.
    pub transport: MeshTransport,
    /// Kill `(rank, episode)`: that worker aborts upon arriving at that
    /// episode — the peer-death acceptance scenario.
    pub kill_at: Option<(usize, u64)>,
    /// Parent-side watchdog over the whole run. Expiry kills every child
    /// and reports them [`WorkerFate::Wedged`].
    pub timeout: Duration,
}

impl MultiprocConfig {
    /// A UDS run of `nodes` workers × `episodes` episodes re-executing
    /// `exe`.
    #[must_use]
    pub fn new(exe: PathBuf, nodes: usize, episodes: u64) -> Self {
        MultiprocConfig {
            exe,
            args: Vec::new(),
            nodes,
            episodes,
            region: Duration::from_micros(100),
            seed: 1,
            transport: MeshTransport::Unix,
            kill_at: None,
            timeout: Duration::from_secs(60),
        }
    }
}

/// How one worker process ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerFate {
    /// Exited [`EXIT_RELEASED`]: every episode released.
    Released,
    /// Exited [`EXIT_POISONED`]: a wait observed poison.
    Poisoned,
    /// Exited [`EXIT_TIMEOUT`]: a wait hit its deadline.
    TimedOut,
    /// Died on a signal (the `kill_at` victim's abort lands here).
    Killed,
    /// Still running when the parent watchdog expired; killed by the
    /// parent. A wedge — always a failure.
    Wedged,
    /// Any other exit code (setup failure, panic, ...).
    Failed(i32),
}

/// One worker's observed outcome.
#[derive(Debug, Clone)]
pub struct WorkerOutcome {
    /// The worker's mesh rank.
    pub rank: usize,
    /// How the process ended.
    pub fate: WorkerFate,
    /// Episodes the worker reported completing (from its result file;
    /// 0 if it died before writing one).
    pub episodes: u64,
}

/// Outcome of a whole multi-process run.
#[derive(Debug, Clone)]
pub struct MultiprocReport {
    /// Per-worker outcomes, rank-ordered.
    pub outcomes: Vec<WorkerOutcome>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl MultiprocReport {
    /// True if any worker wedged (parent watchdog expired).
    #[must_use]
    pub fn wedged(&self) -> bool {
        self.outcomes.iter().any(|o| o.fate == WorkerFate::Wedged)
    }

    /// Workers that ended with the given fate.
    #[must_use]
    pub fn count(&self, fate: &WorkerFate) -> usize {
        self.outcomes.iter().filter(|o| o.fate == *fate).count()
    }
}

/// Forks `config.nodes` worker processes, waits for them all under the
/// watchdog, and classifies each one's fate. Never hangs: watchdog expiry
/// kills the stragglers.
///
/// # Panics
///
/// Panics if a worker process cannot be spawned at all, or if the scratch
/// directory cannot be created.
#[must_use]
pub fn run_multiproc(config: &MultiprocConfig) -> MultiprocReport {
    let started = Instant::now();
    let scratch = std::env::temp_dir().join(format!(
        "fuzzy-multiproc-{}-{}",
        std::process::id(),
        config.seed
    ));
    std::fs::create_dir_all(&scratch).expect("create multiproc scratch dir");

    // TCP: reserve rank-ordered ports up front by probing the OS.
    let addrs = match config.transport {
        MeshTransport::Tcp => {
            let probes: Vec<_> = (0..config.nodes)
                .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("probe port"))
                .collect();
            let list = probes
                .iter()
                .map(|p| p.local_addr().expect("probe addr").to_string())
                .collect::<Vec<_>>()
                .join(",");
            Some(list)
        }
        MeshTransport::Unix => None,
    };

    let mut children: Vec<(usize, Child, PathBuf)> = Vec::new();
    for rank in 0..config.nodes {
        let result_path = scratch.join(format!("result-{rank}.json"));
        let mut cmd = Command::new(&config.exe);
        cmd.args(&config.args)
            .env(ROLE_ENV, "worker")
            .env(RANK_ENV, rank.to_string())
            .env(NODES_ENV, config.nodes.to_string())
            .env(EPISODES_ENV, config.episodes.to_string())
            .env(REGION_ENV, config.region.as_micros().to_string())
            .env(SEED_ENV, (config.seed ^ rank as u64).to_string())
            .env(RESULT_ENV, &result_path)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        match (&config.transport, &addrs) {
            (MeshTransport::Unix, _) => {
                cmd.env(TRANSPORT_ENV, "uds").env(DIR_ENV, &scratch);
            }
            (MeshTransport::Tcp, Some(list)) => {
                cmd.env(TRANSPORT_ENV, "tcp").env(ADDRS_ENV, list);
            }
            (MeshTransport::Tcp, None) => unreachable!("tcp addrs reserved above"),
        }
        if let Some((victim, episode)) = config.kill_at {
            if victim == rank {
                cmd.env(KILL_AT_ENV, episode.to_string());
            }
        }
        let child = cmd
            .spawn()
            .unwrap_or_else(|e| panic!("spawn worker {rank}: {e}"));
        children.push((rank, child, result_path));
    }

    // Poll every child under the shared watchdog; classify as they exit.
    let deadline = Instant::now() + config.timeout;
    let mut outcomes: Vec<Option<WorkerOutcome>> = (0..config.nodes).map(|_| None).collect();
    loop {
        let mut pending = false;
        for (rank, child, result_path) in &mut children {
            if outcomes[*rank].is_some() {
                continue;
            }
            match child.try_wait() {
                Ok(Some(status)) => {
                    let fate = match status.code() {
                        Some(EXIT_RELEASED) => WorkerFate::Released,
                        Some(EXIT_POISONED) => WorkerFate::Poisoned,
                        Some(EXIT_TIMEOUT) => WorkerFate::TimedOut,
                        Some(code) => WorkerFate::Failed(code),
                        // No code: a signal. The abort victim lands here.
                        None => WorkerFate::Killed,
                    };
                    outcomes[*rank] = Some(WorkerOutcome {
                        rank: *rank,
                        fate,
                        episodes: read_reported_episodes(result_path),
                    });
                }
                Ok(None) => pending = true,
                Err(_) => pending = true,
            }
        }
        if !pending {
            break;
        }
        if Instant::now() >= deadline {
            // Wedge: kill the stragglers, classify them loudly.
            for (rank, child, result_path) in &mut children {
                if outcomes[*rank].is_none() {
                    let _ = child.kill();
                    let _ = child.wait();
                    outcomes[*rank] = Some(WorkerOutcome {
                        rank: *rank,
                        fate: WorkerFate::Wedged,
                        episodes: read_reported_episodes(result_path),
                    });
                }
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let _ = std::fs::remove_dir_all(&scratch);
    MultiprocReport {
        outcomes: outcomes.into_iter().map(Option::unwrap).collect(),
        elapsed: started.elapsed(),
    }
}

fn read_reported_episodes(path: &Path) -> u64 {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|json| json.get("episodes").and_then(Json::as_i64))
        .and_then(|n| u64::try_from(n).ok())
        .unwrap_or(0)
}

/// Worker-side entry point. Call this **first** in any binary or test
/// entry the parent re-executes: in the parent (no [`ROLE_ENV`]) it
/// returns `false` immediately; in a worker it runs the whole episode
/// loop and **exits the process**, never returning.
pub fn maybe_run_worker() -> bool {
    if std::env::var(ROLE_ENV).as_deref() != Ok("worker") {
        return false;
    }
    let code = worker_main();
    std::process::exit(code);
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.parse().ok()
}

fn worker_main() -> i32 {
    let Some(rank) = env_u64(RANK_ENV).map(|v| v as usize) else {
        return EXIT_SETUP;
    };
    let Some(nodes) = env_u64(NODES_ENV).map(|v| v as usize) else {
        return EXIT_SETUP;
    };
    let Some(episodes) = env_u64(EPISODES_ENV) else {
        return EXIT_SETUP;
    };
    let region = Duration::from_micros(env_u64(REGION_ENV).unwrap_or(0));
    let seed = env_u64(SEED_ENV).unwrap_or(0);
    let kill_at = env_u64(KILL_AT_ENV);

    let transport: Arc<dyn Transport> = match std::env::var(TRANSPORT_ENV).as_deref() {
        Ok("uds") => {
            let Ok(dir) = std::env::var(DIR_ENV) else {
                return EXIT_SETUP;
            };
            match SocketTransport::unix(rank, nodes, Path::new(&dir)) {
                Ok(t) => Arc::new(t),
                Err(_) => return EXIT_SETUP,
            }
        }
        Ok("tcp") => {
            let Ok(list) = std::env::var(ADDRS_ENV) else {
                return EXIT_SETUP;
            };
            let addrs: Vec<std::net::SocketAddr> =
                list.split(',').filter_map(|a| a.parse().ok()).collect();
            if addrs.len() != nodes {
                return EXIT_SETUP;
            }
            match SocketTransport::tcp(rank, &addrs) {
                Ok(t) => Arc::new(t),
                Err(_) => return EXIT_SETUP,
            }
        }
        _ => return EXIT_SETUP,
    };

    let barrier = NetBarrier::start(transport, NetConfig::new());
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut completed = 0u64;
    let mut code = EXIT_RELEASED;
    for episode in 0..episodes {
        let token = barrier.arrive(0);
        if kill_at == Some(episode) {
            // The acceptance scenario: die mid-episode, inside the fuzzy
            // region, with the arrival already on the wire. No Bye, no
            // unwinding — the sockets just close.
            std::process::abort();
        }
        // Fuzzy region: jittered busy time standing in for useful work.
        if !region.is_zero() {
            let jitter = rng.range_u64(region.as_micros() as u64 / 2, region.as_micros() as u64);
            std::thread::sleep(Duration::from_micros(jitter));
        }
        match barrier.wait_deadline(token, Deadline::after(Duration::from_secs(30))) {
            Ok(outcome) => {
                if outcome.episode != episode {
                    code = EXIT_SETUP;
                    break;
                }
                completed += 1;
            }
            Err(BarrierError::Timeout { .. }) => {
                code = EXIT_TIMEOUT;
                break;
            }
            Err(_) => {
                code = EXIT_POISONED;
                break;
            }
        }
    }
    if code == EXIT_RELEASED {
        barrier.shutdown();
    }
    write_result(rank, completed, code);
    code
}

fn write_result(rank: usize, episodes: u64, code: i32) {
    if let Ok(path) = std::env::var(RESULT_ENV) {
        let json = Json::obj()
            .field("rank", rank as i64)
            .field("episodes", episodes as i64)
            .field("code", i64::from(code));
        let _ = std::fs::write(path, json.to_string_compact());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_context_is_untouched() {
        // No ROLE_ENV in the test runner: must be a cheap no-op.
        assert!(!maybe_run_worker());
    }

    #[test]
    fn report_classifies_wedges() {
        let report = MultiprocReport {
            outcomes: vec![
                WorkerOutcome {
                    rank: 0,
                    fate: WorkerFate::Released,
                    episodes: 5,
                },
                WorkerOutcome {
                    rank: 1,
                    fate: WorkerFate::Wedged,
                    episodes: 0,
                },
            ],
            elapsed: Duration::from_secs(1),
        };
        assert!(report.wedged());
        assert_eq!(report.count(&WorkerFate::Released), 1);
    }
}
