//! Fault-tolerant loop execution: panicking workers poison the barrier,
//! the supervisor evicts them and retries the episode on the survivors.
//!
//! The threaded executor in [`crate::executor`] assumes every worker
//! reaches every barrier; one panic deadlocks the rest. This module wraps
//! each worker body in `catch_unwind` and layers the `fuzzy-barrier`
//! fault-recovery protocol on top:
//!
//! 1. a worker that panics mid-episode **poisons** the barrier, so every
//!    peer blocked in `wait_deadline` unblocks with
//!    [`BarrierError::Poisoned`] instead of stalling forever;
//! 2. the supervisor collects the dead worker, shrinks the group, and
//!    **retries the interrupted episode** with the dead worker's
//!    iterations redistributed over the survivors;
//! 3. episodes that completed before the fault are never re-run — the
//!    barrier's episode counter tells the supervisor exactly where to
//!    resume.
//!
//! Delivery is therefore *at-least-once* per outer iteration: survivors
//! may re-execute work they had finished inside the interrupted episode,
//! so work bodies should be idempotent (as loop iterations writing their
//! own output elements are).

use fuzzy_barrier::{BarrierError, CentralBarrier, Deadline, SplitBarrier, StallPolicy};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Outcome of a supervised run.
#[derive(Debug, Clone, Default)]
pub struct SupervisedReport {
    /// Wall-clock duration of the whole run, retries included.
    pub elapsed: Duration,
    /// Outer iterations that completed (== the requested count unless
    /// every worker died).
    pub completed_outer: usize,
    /// Global ids of workers that panicked, in eviction order.
    pub panicked: Vec<usize>,
    /// Supervisor retry rounds (one per batch of evictions).
    pub retries: u64,
    /// Barrier episodes completed, summed over all rounds.
    pub episodes: u64,
    /// Poison events observed, summed over all rounds.
    pub poisonings: u64,
    /// Recovered workers re-admitted into the group after backoff.
    pub readmissions: u64,
    /// Workers permanently abandoned after exhausting their re-admission
    /// budget, in abandonment order.
    pub abandoned: Vec<usize>,
}

/// Bounded retry-with-exponential-backoff re-admission of recovered
/// workers: how [`run_supervised_with`] treats a panicked worker.
///
/// A panicked worker sits out at least `base_backoff`, doubling per prior
/// panic, and is re-admitted into the live group at the next round
/// boundary once its backoff expires — up to `max_readmissions` times,
/// after which it is abandoned for good (the original
/// [`run_supervised`] behavior, [`ReadmitPolicy::none`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadmitPolicy {
    /// How many times one worker may be re-admitted before being
    /// abandoned; `0` never re-admits.
    pub max_readmissions: u32,
    /// Sit-out time before the first re-admission; doubles per prior
    /// panic of the same worker.
    pub base_backoff: Duration,
}

impl ReadmitPolicy {
    /// Never re-admit: a panicked worker is evicted for the rest of the
    /// run.
    #[must_use]
    pub fn none() -> Self {
        ReadmitPolicy {
            max_readmissions: 0,
            base_backoff: Duration::ZERO,
        }
    }

    /// Re-admit up to `max_readmissions` times, backing off exponentially
    /// from `base_backoff`.
    #[must_use]
    pub fn new(max_readmissions: u32, base_backoff: Duration) -> Self {
        ReadmitPolicy {
            max_readmissions,
            base_backoff,
        }
    }
}

/// A panicked worker sitting out its backoff before re-admission.
#[derive(Debug)]
struct Benched {
    worker: usize,
    ready_at: Instant,
}

/// Runs `outer` barrier-separated phases of `iters` iterations on `procs`
/// workers, surviving worker panics.
///
/// `work(worker, outer, iter)` performs one iteration and may panic; a
/// panic evicts that worker for the rest of the run. Iterations are
/// block-partitioned over the *live* workers, so each eviction
/// redistributes the dead worker's share. Returns once all `outer`
/// iterations completed or every worker died.
///
/// # Panics
///
/// Panics if `procs == 0` or the barrier fails for a reason other than
/// poisoning (which the protocol rules out under a never-expiring
/// deadline).
#[must_use]
pub fn run_supervised(
    procs: usize,
    outer: usize,
    iters: usize,
    stall_policy: StallPolicy,
    work: impl Fn(usize, usize, usize) + Sync,
) -> SupervisedReport {
    run_supervised_with(
        procs,
        outer,
        iters,
        stall_policy,
        ReadmitPolicy::none(),
        work,
    )
}

/// [`run_supervised`] with bounded retry-with-exponential-backoff
/// **re-admission** of recovered workers.
///
/// Where plain supervision only ever rebuilds the group *smaller*, this
/// variant benches a panicked worker for its backoff (per `readmit`) and
/// re-admits it into the live group at the next round boundary — the
/// supervisor-level face of dynamic membership. A worker that keeps
/// panicking doubles its sit-out each time until its re-admission budget
/// is spent, at which point it is abandoned like under
/// [`ReadmitPolicy::none`]. If every worker is benched at once, the
/// supervisor sleeps until the first backoff expires instead of giving up.
///
/// # Panics
///
/// As [`run_supervised`].
#[must_use]
pub fn run_supervised_with(
    procs: usize,
    outer: usize,
    iters: usize,
    stall_policy: StallPolicy,
    readmit: ReadmitPolicy,
    work: impl Fn(usize, usize, usize) + Sync,
) -> SupervisedReport {
    assert!(procs > 0, "need at least one worker");
    let work = &work;
    let mut report = SupervisedReport::default();
    let mut live: Vec<usize> = (0..procs).collect();
    let mut bench: Vec<Benched> = Vec::new();
    let mut panics_of: HashMap<usize, u32> = HashMap::new();
    let mut done = 0usize;
    let start = std::time::Instant::now();
    while done < outer && (!live.is_empty() || !bench.is_empty()) {
        // Round boundary: re-admit every benched worker whose backoff has
        // expired. With nobody live at all, wait out the earliest one —
        // abandoning the run while recoveries are pending would waste them.
        if live.is_empty() {
            if let Some(earliest) = bench.iter().map(|b| b.ready_at).min() {
                std::thread::sleep(earliest.saturating_duration_since(Instant::now()));
            }
        }
        let now = Instant::now();
        bench.retain(|b| {
            if b.ready_at <= now {
                live.push(b.worker);
                report.readmissions += 1;
                false
            } else {
                true
            }
        });
        live.sort_unstable();
        if live.is_empty() {
            continue;
        }
        let barrier = Arc::new(CentralBarrier::with_policy(live.len(), stall_policy));
        let dead: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let shares = crate::static_sched::block(iters, live.len());
        std::thread::scope(|s| {
            for (rank, &worker) in live.iter().enumerate() {
                let barrier = Arc::clone(&barrier);
                let dead = &dead;
                let shares = &shares;
                s.spawn(move || {
                    for k in done..outer {
                        let body = AssertUnwindSafe(|| {
                            for &i in &shares[rank] {
                                work(worker, k, i);
                            }
                        });
                        if catch_unwind(body).is_err() {
                            dead.lock().expect("dead list").push(worker);
                            // The worker dies before arriving, so there is
                            // no token to abort with — poison directly.
                            barrier.poison();
                            return;
                        }
                        let token = barrier.arrive(rank);
                        match barrier.wait_deadline(token, Deadline::never()) {
                            Ok(_) => {}
                            // A peer died; hand the episode back to the
                            // supervisor for redistribution.
                            Err(BarrierError::Poisoned { .. }) => return,
                            Err(err) => panic!("supervised wait failed: {err}"),
                        }
                    }
                });
            }
        });
        let stats = barrier.stats();
        report.episodes += stats.episodes;
        report.poisonings += stats.poisonings;
        // Every completed episode is a fully finished outer iteration (the
        // work of outer `k` happens before its arrival).
        done += stats.episodes as usize;
        let mut newly = dead.into_inner().expect("dead list");
        if newly.is_empty() {
            debug_assert_eq!(done, outer, "clean round must finish the loop");
        } else {
            report.retries += 1;
            newly.sort_unstable();
            live.retain(|w| !newly.contains(w));
            for &worker in &newly {
                let attempts = panics_of.entry(worker).or_insert(0);
                *attempts += 1;
                if *attempts <= readmit.max_readmissions {
                    // Exponential sit-out: base, 2·base, 4·base, …
                    let backoff = readmit
                        .base_backoff
                        .saturating_mul(1 << (*attempts - 1).min(16));
                    bench.push(Benched {
                        worker,
                        ready_at: Instant::now() + backoff,
                    });
                } else {
                    report.abandoned.push(worker);
                }
            }
            report.panicked.extend(newly);
        }
    }
    report.completed_outer = done;
    report.elapsed = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn fault_free_run_completes_every_outer() {
        let r = run_supervised(4, 6, 16, StallPolicy::yielding(), |_, _, _| {
            crate::executor::busy(5);
        });
        assert_eq!(r.completed_outer, 6);
        assert_eq!(r.episodes, 6);
        assert!(r.panicked.is_empty());
        assert_eq!(r.retries, 0);
        assert_eq!(r.poisonings, 0);
    }

    #[test]
    fn panicking_worker_is_evicted_and_work_is_redistributed() {
        let armed = AtomicBool::new(true);
        let seen: Mutex<HashSet<(usize, usize)>> = Mutex::new(HashSet::new());
        let r = run_supervised(4, 5, 12, StallPolicy::yielding(), |worker, k, i| {
            if worker == 2 && k == 2 && armed.swap(false, Ordering::AcqRel) {
                panic!("injected fault");
            }
            seen.lock().unwrap().insert((k, i));
        });
        assert_eq!(r.completed_outer, 5);
        assert_eq!(r.panicked, vec![2]);
        assert_eq!(r.retries, 1);
        assert!(r.poisonings >= 1, "the panic must poison the barrier");
        // Episodes 0 and 1 completed in round one, 2..=4 in round two.
        assert_eq!(r.episodes, 5);
        // Every iteration of every outer ran at least once, the dead
        // worker's share included.
        let seen = seen.into_inner().unwrap();
        for k in 0..5 {
            for i in 0..12 {
                assert!(seen.contains(&(k, i)), "outer {k} iter {i} lost");
            }
        }
    }

    #[test]
    fn serial_faults_leave_a_single_survivor_that_finishes() {
        // Workers 0, 1 and 2 die at different outers; worker 3 carries the
        // loop home alone.
        let fuses: Vec<AtomicBool> = (0..3).map(|_| AtomicBool::new(true)).collect();
        let r = run_supervised(4, 6, 8, StallPolicy::yielding(), |worker, k, _| {
            if worker < 3 && k == worker + 1 && fuses[worker].swap(false, Ordering::AcqRel) {
                panic!("injected fault for worker {worker}");
            }
        });
        assert_eq!(r.completed_outer, 6);
        assert_eq!(r.panicked.len(), 3);
        assert!(r.retries >= 1 && r.retries <= 3);
    }

    #[test]
    fn total_loss_terminates_short() {
        let r = run_supervised(3, 4, 6, StallPolicy::yielding(), |_, _, _| {
            panic!("everyone dies immediately");
        });
        assert_eq!(r.completed_outer, 0);
        assert_eq!(r.panicked.len(), 3);
        assert_eq!(r.episodes, 0);
    }

    #[test]
    fn recovered_worker_is_readmitted_after_backoff() {
        // Worker 1 dies once at outer 1, then recovers; with re-admission
        // it must rejoin the group and execute later outers itself.
        let armed = AtomicBool::new(true);
        let late_work_by_1 = AtomicBool::new(false);
        // Zero backoff keeps the test deterministic: the benched worker is
        // always ready again by the next round boundary.
        let r = run_supervised_with(
            3,
            6,
            9,
            StallPolicy::yielding(),
            ReadmitPolicy::new(2, Duration::ZERO),
            |worker, k, _| {
                if worker == 1 && k == 1 && armed.swap(false, Ordering::AcqRel) {
                    panic!("transient fault");
                }
                if worker == 1 && k >= 4 {
                    late_work_by_1.store(true, Ordering::Release);
                }
            },
        );
        assert_eq!(r.completed_outer, 6);
        assert_eq!(r.panicked, vec![1]);
        assert_eq!(r.readmissions, 1);
        assert!(r.abandoned.is_empty());
        assert!(
            late_work_by_1.load(Ordering::Acquire),
            "the recovered worker must run again after re-admission"
        );
    }

    #[test]
    fn repeat_offender_exhausts_budget_and_is_abandoned() {
        // A solo worker panics every time it is admitted; with a budget of
        // 2 re-admissions it is benched twice and then dropped for good,
        // at which point the run terminates short.
        let r = run_supervised_with(
            1,
            4,
            4,
            StallPolicy::yielding(),
            ReadmitPolicy::new(2, Duration::from_micros(100)),
            |_, _, _| panic!("permanent fault"),
        );
        assert_eq!(r.completed_outer, 0);
        assert_eq!(
            r.panicked,
            vec![0, 0, 0],
            "initial admission plus two re-admissions"
        );
        assert_eq!(r.readmissions, 2);
        assert_eq!(r.abandoned, vec![0]);
    }

    #[test]
    fn all_benched_waits_for_recovery_instead_of_giving_up() {
        // The sole worker dies once; the supervisor must sleep out the
        // backoff (nobody is live meanwhile) and still finish the run.
        let armed = AtomicBool::new(true);
        let r = run_supervised_with(
            1,
            3,
            5,
            StallPolicy::yielding(),
            ReadmitPolicy::new(1, Duration::from_millis(2)),
            |_, k, _| {
                if k == 0 && armed.swap(false, Ordering::AcqRel) {
                    panic!("transient solo fault");
                }
            },
        );
        assert_eq!(r.completed_outer, 3);
        assert_eq!(r.readmissions, 1);
        assert!(
            r.elapsed >= Duration::from_millis(2),
            "the backoff was served"
        );
    }

    #[test]
    fn none_policy_matches_plain_supervision() {
        let r = run_supervised_with(
            3,
            4,
            6,
            StallPolicy::yielding(),
            ReadmitPolicy::none(),
            |worker, _, _| {
                if worker == 2 {
                    panic!("die once, stay dead");
                }
            },
        );
        assert_eq!(r.completed_outer, 4);
        assert_eq!(r.panicked, vec![2]);
        assert_eq!(r.readmissions, 0);
        assert_eq!(r.abandoned, vec![2]);
    }
}
