//! Iteration cost models for scheduling experiments.
//!
//! The paper's scheduling sections revolve around *variance* in iteration
//! cost: conditionals make streams variable-length (Sec. 7.1), cache
//! misses make processors drift (Sec. 1), and uneven iteration counts make
//! static schedules idle (Sec. 7.3). These models generate the costs the
//! schedulers are evaluated against.

use fuzzy_util::SplitMix64;

/// A model assigning a cost (in abstract work units) to each iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum CostModel {
    /// Every iteration costs the same.
    Uniform {
        /// The per-iteration cost.
        cost: u64,
    },
    /// Each iteration independently takes `fast` or `slow` with
    /// probability `p_slow` of being slow — the Fig. 7 if-statement whose
    /// branches do different amounts of work.
    Bimodal {
        /// Cost of the fast branch.
        fast: u64,
        /// Cost of the slow branch.
        slow: u64,
        /// Probability of taking the slow branch.
        p_slow: f64,
    },
    /// Uniformly distributed in `[lo, hi]` — generic drift.
    Jitter {
        /// Minimum cost.
        lo: u64,
        /// Maximum cost.
        hi: u64,
    },
    /// Cost grows linearly with the iteration index — the classic
    /// triangular workload that defeats block scheduling.
    Linear {
        /// Cost of iteration 0.
        base: u64,
        /// Additional cost per iteration index.
        slope: u64,
    },
}

impl CostModel {
    /// Materializes costs for `n` iterations, deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]` or `lo > hi`.
    #[must_use]
    pub fn costs(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        match *self {
            CostModel::Uniform { cost } => vec![cost; n],
            CostModel::Bimodal { fast, slow, p_slow } => {
                assert!((0.0..=1.0).contains(&p_slow), "p_slow is a probability");
                (0..n)
                    .map(|_| if rng.next_f64() < p_slow { slow } else { fast })
                    .collect()
            }
            CostModel::Jitter { lo, hi } => {
                assert!(lo <= hi, "lo must not exceed hi");
                (0..n).map(|_| rng.range_u64(lo, hi)).collect()
            }
            CostModel::Linear { base, slope } => (0..n).map(|i| base + slope * i as u64).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_constant() {
        assert_eq!(CostModel::Uniform { cost: 7 }.costs(3, 0), vec![7, 7, 7]);
    }

    #[test]
    fn bimodal_hits_both_modes() {
        let costs = CostModel::Bimodal {
            fast: 1,
            slow: 100,
            p_slow: 0.5,
        }
        .costs(64, 42);
        assert!(costs.contains(&1));
        assert!(costs.contains(&100));
        assert!(costs.iter().all(|&c| c == 1 || c == 100));
    }

    #[test]
    fn deterministic_per_seed() {
        let m = CostModel::Jitter { lo: 5, hi: 50 };
        assert_eq!(m.costs(32, 9), m.costs(32, 9));
        assert_ne!(m.costs(32, 9), m.costs(32, 10));
    }

    #[test]
    fn jitter_stays_in_range() {
        let costs = CostModel::Jitter { lo: 3, hi: 9 }.costs(100, 1);
        assert!(costs.iter().all(|&c| (3..=9).contains(&c)));
    }

    #[test]
    fn linear_grows() {
        assert_eq!(
            CostModel::Linear { base: 2, slope: 3 }.costs(4, 0),
            vec![2, 5, 8, 11]
        );
    }
}
