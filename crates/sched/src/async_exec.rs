//! A std-only M:N episode executor for async fuzzy-barrier participants.
//!
//! The paper's fuzzy barrier keeps a *processor* busy inside the barrier
//! region; this executor keeps a *thread* busy across many logical
//! participants. `M ≫ N` tasks — each an async participant performing
//! `arrive → region work → await release` per episode via
//! [`fuzzy_barrier::AsyncBarrier`] — are multiplexed over `N` worker
//! threads with per-worker run queues and work stealing. A parked
//! participant costs one registry entry, not one OS thread, which is what
//! lets a 4-thread pool complete episodes for 4096 logical participants.
//!
//! Dependency-free by design (the container builds offline): tasks are
//! `Pin<Box<dyn Future>>` behind a mutex, wakers come from
//! [`std::task::Wake`], parking is a `Condvar`.

use crate::executor::{busy, BarrierChoice};
use fuzzy_barrier::stats::{AsyncSnapshot, AsyncStats, StatsSnapshot};
use fuzzy_barrier::{AsyncBarrier, SplitBarrier, StallPolicy};
use fuzzy_util::SplitMix64;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

/// Task is queued on some run queue (or about to be).
const QUEUED: u8 = 0;
/// Task is being polled by a worker.
const RUNNING: u8 = 1;
/// Task returned `Pending` and waits for a wake.
const WAITING: u8 = 2;
/// Task was woken *while* being polled; the poller re-enqueues it.
const NOTIFIED: u8 = 3;
/// Task ran to completion.
const DONE: u8 = 4;

type TaskFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// One spawned task: its future plus the wake-state machine.
struct Task {
    /// The future, taken out on completion. Only the worker that moved the
    /// task to `RUNNING` touches this, so the mutex never contends.
    future: Mutex<Option<TaskFuture>>,
    state: AtomicU8,
    /// Run queue the task is (re-)enqueued on.
    home: usize,
    shared: Arc<Shared>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        loop {
            match self.state.load(Ordering::Acquire) {
                WAITING => {
                    if self
                        .state
                        .compare_exchange(WAITING, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        let shared = Arc::clone(&self.shared);
                        shared.enqueue(self);
                        return;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued/notified/done: the wake is coalesced.
                _ => return,
            }
        }
    }
}

/// State shared between the executor handle and its workers.
struct Shared {
    /// Per-worker run queues. Owners pop the front; thieves pop the back.
    queues: Vec<Mutex<VecDeque<Arc<Task>>>>,
    /// Live (spawned, not yet completed) task count, guarded for
    /// [`AsyncExecutor::wait_idle`]'s condvar.
    live: Mutex<usize>,
    idle_cv: Condvar,
    /// Worker parking lot: workers re-scan under this lock before waiting,
    /// and every enqueue notifies under it, so no wake is lost.
    park: Mutex<bool>,
    park_cv: Condvar,
    stats: AsyncStats,
    next_home: AtomicUsize,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn enqueue(&self, task: Arc<Task>) {
        let home = task.home;
        lock(&self.queues[home]).push_back(task);
        // Notify under the park lock: a worker that scanned empty queues
        // re-checks under the same lock before sleeping.
        drop(lock(&self.park));
        self.park_cv.notify_one();
    }

    /// Pops the next runnable task for worker `me`: own queue first, then
    /// steal from the back of the busiest sibling.
    fn find_task(&self, me: usize) -> Option<Arc<Task>> {
        if let Some(task) = lock(&self.queues[me]).pop_front() {
            return Some(task);
        }
        for offset in 1..self.queues.len() {
            let victim = (me + offset) % self.queues.len();
            if let Some(task) = lock(&self.queues[victim]).pop_back() {
                self.stats.record_steal();
                return Some(task);
            }
        }
        None
    }
}

/// A work-stealing executor for `'static` futures over `N` worker
/// threads.
///
/// Spawned tasks are distributed round-robin over per-worker run queues;
/// an idle worker steals from the back of a sibling's queue (recorded in
/// the steal counter). Dropping the executor shuts the workers down;
/// still-queued tasks are dropped, which — for barrier futures — counts
/// as cancellation and poisons their barrier.
///
/// # Examples
///
/// ```
/// use fuzzy_sched::async_exec::AsyncExecutor;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = AsyncExecutor::new(2);
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..16 {
///     let hits = Arc::clone(&hits);
///     pool.spawn(async move {
///         hits.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// pool.wait_idle();
/// assert_eq!(hits.load(Ordering::Relaxed), 16);
/// ```
pub struct AsyncExecutor {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for AsyncExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncExecutor")
            .field("workers", &self.workers.len())
            .field("live", &*lock(&self.shared.live))
            .finish_non_exhaustive()
    }
}

impl AsyncExecutor {
    /// Starts a pool of `workers` threads (at least one).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            live: Mutex::new(0),
            idle_cv: Condvar::new(),
            park: Mutex::new(false),
            park_cv: Condvar::new(),
            stats: AsyncStats::new(),
            next_home: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, me))
            })
            .collect();
        AsyncExecutor {
            shared,
            workers: handles,
        }
    }

    /// Spawns a task onto the pool (round-robin over the run queues).
    pub fn spawn(&self, future: impl Future<Output = ()> + Send + 'static) {
        *lock(&self.shared.live) += 1;
        let home = self.shared.next_home.fetch_add(1, Ordering::Relaxed) % self.workers.len();
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(future))),
            state: AtomicU8::new(QUEUED),
            home,
            shared: Arc::clone(&self.shared),
        });
        self.shared.enqueue(task);
    }

    /// Blocks until every spawned task has completed.
    pub fn wait_idle(&self) {
        let mut live = lock(&self.shared.live);
        while *live > 0 {
            live = self
                .shared
                .idle_cv
                .wait(live)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Tasks stolen from a sibling's run queue so far.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.shared.stats.snapshot().steals
    }

    /// Snapshot of the executor's counters (only `steals` is populated;
    /// parking-protocol counters live on the barrier's
    /// [`fuzzy_barrier::AsyncBarrier::async_stats`]).
    #[must_use]
    pub fn stats(&self) -> AsyncSnapshot {
        self.shared.stats.snapshot()
    }
}

impl Drop for AsyncExecutor {
    fn drop(&mut self) {
        *lock(&self.shared.park) = true;
        self.shared.park_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Cancel still-queued tasks (drops their futures).
        for queue in &self.shared.queues {
            lock(queue).clear();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, me: usize) {
    loop {
        let Some(task) = shared.find_task(me) else {
            // Park: re-scan under the lock so an enqueue between the
            // failed scan and the wait cannot be lost.
            let guard = lock(&shared.park);
            if *guard {
                return;
            }
            let busy_elsewhere = shared.queues.iter().any(|q| !lock(q).is_empty());
            if !busy_elsewhere {
                drop(shared.park_cv.wait(guard));
            }
            continue;
        };
        run_task(shared, task);
    }
}

fn run_task(shared: &Shared, task: Arc<Task>) {
    task.state.store(RUNNING, Ordering::Release);
    let waker = Waker::from(Arc::clone(&task));
    let mut cx = Context::from_waker(&waker);
    let mut slot = lock(&task.future);
    let Some(future) = slot.as_mut() else {
        return;
    };
    match future.as_mut().poll(&mut cx) {
        Poll::Ready(()) => {
            *slot = None;
            drop(slot);
            task.state.store(DONE, Ordering::Release);
            let mut live = lock(&shared.live);
            *live -= 1;
            if *live == 0 {
                shared.idle_cv.notify_all();
            }
        }
        Poll::Pending => {
            drop(slot);
            if task
                .state
                .compare_exchange(RUNNING, WAITING, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // Woken mid-poll (NOTIFIED): run again later.
                task.state.store(QUEUED, Ordering::Release);
                let shared_ref = Arc::clone(&task.shared);
                shared_ref.enqueue(task);
            }
        }
    }
}

/// Report of an [`run_async_episodes`] run.
#[derive(Debug, Clone, Default)]
pub struct AsyncRunReport {
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Backend barrier statistics (episodes, arrivals, ...).
    pub barrier: StatsSnapshot,
    /// Async-frontend counters: parks/resumes/drains/wakes/polls from the
    /// barrier, steals from the executor.
    pub frontend: AsyncSnapshot,
}

/// Runs `tasks` logical fuzzy-barrier participants for `episodes`
/// episodes each, multiplexed over `workers` OS threads.
///
/// Every logical participant loops `arrive_async → region work → await
/// release`, the async form of the paper's arrive/region/wait shape.
/// `seed` jitters each participant's per-episode region work in
/// `[0, 2 * region_units]` so arrival order (and hence parking and
/// stealing behavior) varies per seed while the mean load stays put.
///
/// # Panics
///
/// Panics if `workers == 0` or `tasks == 0`, or if any episode faults
/// (the barrier is never poisoned in this workload, so a fault is a bug).
#[must_use]
pub fn run_async_episodes(
    workers: usize,
    tasks: usize,
    episodes: u64,
    region_units: u64,
    backend: BarrierChoice,
    policy: StallPolicy,
    seed: u64,
) -> AsyncRunReport {
    assert!(tasks > 0, "need at least one logical participant");
    // Backends whose `is_complete` is a pure read need no help-round
    // fixpoint in the release drain; one sweep per drain keeps the M=4096
    // sweep O(parked) instead of O(parked · log M) per completion probe.
    let pure_read = matches!(
        backend,
        BarrierChoice::Central | BarrierChoice::Counting | BarrierChoice::Tree { .. }
    );
    let inner = AsyncBarrier::new(backend.build(tasks, policy));
    let barrier = Arc::new(if pure_read {
        inner.with_help_rounds(0)
    } else {
        inner
    });
    let pool = AsyncExecutor::new(workers);
    let start = Instant::now();
    for id in 0..tasks {
        let barrier = Arc::clone(&barrier);
        let mut rng = SplitMix64::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37));
        pool.spawn(async move {
            for episode in 0..episodes {
                let future = barrier.arrive_async(id);
                let jitter = if region_units == 0 {
                    0
                } else {
                    rng.range_u64(0, 2 * region_units)
                };
                busy(jitter);
                let outcome = future.await.expect("async episode faulted");
                assert_eq!(outcome.episode, episode, "participant {id} episode skew");
            }
        });
    }
    pool.wait_idle();
    let elapsed = start.elapsed();
    let mut frontend = barrier.async_stats();
    frontend.merge(&pool.stats());
    AsyncRunReport {
        elapsed,
        barrier: SplitBarrier::stats(barrier.as_ref()),
        frontend,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_barrier::TopLevel;

    #[test]
    fn plain_tasks_run_to_completion() {
        let pool = AsyncExecutor::new(3);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            pool.spawn(async move {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns() {
        let pool = AsyncExecutor::new(2);
        pool.wait_idle();
    }

    #[test]
    fn many_logical_participants_on_few_threads() {
        // M ≫ N: 64 logical participants over 2 workers. Without the
        // waker protocol this would need 64 OS threads to avoid deadlock.
        let report = run_async_episodes(2, 64, 3, 4, BarrierChoice::Central, StallPolicy::Spin, 7);
        assert_eq!(report.barrier.episodes, 3);
        assert_eq!(report.barrier.arrivals, 64 * 3);
        assert!(report.frontend.parked > 0, "{:?}", report.frontend);
        assert_eq!(report.frontend.parked, report.frontend.resumed);
    }

    #[test]
    fn async_episodes_sweep_every_backend() {
        let choices = [
            BarrierChoice::Central,
            BarrierChoice::Counting,
            BarrierChoice::Dissemination,
            BarrierChoice::Tree { fan_in: 2 },
            BarrierChoice::Hier {
                shard_size: 4,
                top: TopLevel::Dissemination,
            },
            BarrierChoice::Hier {
                shard_size: 4,
                top: TopLevel::Tree,
            },
        ];
        for choice in choices {
            let report = run_async_episodes(3, 16, 2, 2, choice, StallPolicy::Spin, 11);
            assert_eq!(report.barrier.episodes, 2, "{choice:?}");
            assert_eq!(report.barrier.arrivals, 32, "{choice:?}");
        }
    }

    #[test]
    fn steals_are_recorded_under_imbalance() {
        // One worker gets all the long tasks via round-robin with a
        // 1-queue... use 4 workers and many short tasks: with 4 queues and
        // staggered finish times some stealing is effectively certain;
        // accept zero only for the degenerate single-worker pool.
        let pool = AsyncExecutor::new(1);
        pool.spawn(async {});
        pool.wait_idle();
        assert_eq!(pool.steals(), 0, "nothing to steal from");
    }
}
