#!/usr/bin/env sh
# Staged CI pipeline. Run from anywhere; it cd's to the repository root.
#
#   scripts/ci.sh            # run every stage
#   scripts/ci.sh fmt test   # run only the named stages
#   scripts/ci.sh --list     # print the stage roster, one per line
#
# Naming a stage that does not exist is an error: the script exits 1
# listing the valid stages instead of silently running nothing.
#
# Stages, in order:
#
#   fmt          cargo fmt --check (formatting is normative)
#   build        cargo build --workspace --all-targets
#   clippy       cargo clippy, warnings as errors, all targets
#   test         cargo test -q --workspace
#   tier1        the repo's tier-1 gate, verbatim from ROADMAP.md
#   check-smoke  fuzzy-check: 10k DFS schedules per backend at N=3
#   bench-smoke  exp_encore --stats-json + schema validation
#   async-smoke  exp_async_scale quick sweep + schema validation, then
#                the lost-wakeup mutant must still be caught by the
#                model checker
#   fault-smoke  check --scenario poison + exp_fault_recovery export
#   fuzz-smoke   differential fuzzer: 200 nests at a fixed seed, zero
#                divergences required, stats export schema-validated
#   chaos-smoke  reconfig mutants must be caught (and the real barrier
#                must survive the same schedules), then exp_chaos_churn
#                --quick across every backend on both runtimes, schema
#                validated
#   net-smoke    the forged-round transport mutant must be caught (and
#                the real NetBarrier must survive the same schedules),
#                the multi-process harness tests (including the
#                kill-a-worker poison scenario) must pass, then the
#                quick exp_net_scale sweep, schema validated
#   perf-gate    exp_backend_faceoff + exp_async_scale + exp_net_scale
#                quick sweeps vs the checked-in baselines
#   doc          cargo doc --no-deps (rustdoc warnings are errors)
#
# Each stage prints `ci: stage <name> PASS|FAIL (N.Ns)`; the script stops
# at the first failure, prints a per-stage timing summary, and exits 1
# naming the failing stage. Everything runs offline: no stage touches the
# network (set CARGO_NET_OFFLINE=true to have cargo enforce that).
set -u

cd "$(dirname "$0")/.."

STAGES="fmt build clippy test tier1 check-smoke bench-smoke async-smoke fault-smoke fuzz-smoke chaos-smoke net-smoke perf-gate doc"

SELECTED=""
for arg in "$@"; do
    case "$arg" in
    --list)
        for s in $STAGES; do echo "$s"; done
        exit 0
        ;;
    *)
        known=1
        for s in $STAGES; do [ "$arg" = "$s" ] && known=0; done
        if [ "$known" -ne 0 ]; then
            echo "ci: unknown stage '$arg'" >&2
            echo "ci: valid stages: $STAGES" >&2
            exit 1
        fi
        SELECTED="$SELECTED $arg"
        ;;
    esac
done

failed_stage=""
SUMMARY=""

# want <name>: true if the stage was selected (no args = all stages).
want() {
    [ -z "$SELECTED" ] && return 0
    case " $SELECTED " in
    *" $1 "*) return 0 ;;
    *) return 1 ;;
    esac
}

# Nanosecond wall clock; falls back to whole seconds where date(1) does
# not understand %N (the summary then shows 1-second granularity).
now_ns() {
    t="$(date +%s%N)"
    case "$t" in
    *N*) echo "$(date +%s)000000000" ;;
    *) echo "$t" ;;
    esac
}

# run_stage <name> <command...>: runs the command, prints the timed
# PASS/FAIL line, and stops the pipeline at the first failure.
run_stage() {
    name="$1"
    shift
    [ -n "$failed_stage" ] && return 0
    echo "==> ci: stage $name: $*"
    start="$(now_ns)"
    if "$@"; then
        verdict=PASS
    else
        verdict=FAIL
        failed_stage="$name"
    fi
    elapsed="$(awk "BEGIN { printf \"%.1f\", ($(now_ns) - $start) / 1e9 }")"
    echo "ci: stage $name $verdict (${elapsed}s)"
    SUMMARY="$SUMMARY$name $verdict ${elapsed}s
"
}

# The tier-1 gate, exactly as ROADMAP.md specifies it. Kept verbatim in a
# single shell line so the stage tests precisely what reviewers run.
tier1_gate() {
    sh -c 'cargo build --release && cargo test -q'
}

# Model-checker smoke: explore 10k schedules per backend at N=3 with the
# release binary (DFS, unbounded preemptions). A violation fails CI and
# prints a replayable schedule.
check_smoke() {
    cargo build --release -q -p fuzzy-check --bin check &&
        ./target/release/check --backend all --scenario all \
            --participants 3 --episodes 2 --mode dfs --schedules 10000
}

# Telemetry smoke: run the encore experiment with --stats-json and verify
# the export parses and matches the pinned schema (key names and types).
bench_smoke() {
    out="$(mktemp)" || return 1
    status=1
    if cargo run -q --release -p fuzzy-bench --bin exp_encore -- \
        --stats-json "$out" >/dev/null; then
        cargo run -q --release -p fuzzy-bench --bin validate_stats -- \
            --schema encore "$out"
        status=$?
    fi
    rm -f "$out"
    return $status
}

# Async smoke: the quick exp_async_scale sweep (every row asserts
# parked == resumed and full completion), schema-validated, followed by
# the model checker's no-drain mutant pair — the seeded lost-wakeup bug
# must be caught and the real frontend must survive the same schedule
# space.
async_smoke() {
    out="$(mktemp)" || return 1
    status=1
    if cargo run -q --release -p fuzzy-bench --bin exp_async_scale -- \
        --quick --stats-json "$out" >/dev/null; then
        if cargo run -q --release -p fuzzy-bench --bin validate_stats -- \
            --schema async_scale "$out"; then
            cargo test -q -p fuzzy-check --test mutants no_drain
            status=$?
        fi
    fi
    rm -f "$out"
    return $status
}

# Fault smoke: the poisoning scenario on the model checker (1k DFS
# schedules per backend at N=3), then the fault-recovery experiment with
# its --stats-json export schema-validated.
fault_smoke() {
    cargo build --release -q -p fuzzy-check --bin check &&
        ./target/release/check --backend all --scenario poison \
            --participants 3 --episodes 2 --mode dfs --schedules 1000 ||
        return 1
    out="$(mktemp)" || return 1
    status=1
    if cargo run -q --release -p fuzzy-bench --bin exp_fault_recovery -- \
        --stats-json "$out" >/dev/null; then
        cargo run -q --release -p fuzzy-bench --bin validate_stats -- \
            --schema fault_recovery "$out"
        status=$?
    fi
    rm -f "$out"
    return $status
}

# Fuzz smoke: the compiler->simulator differential fuzzer at a fixed
# seed. Any divergence (memory mismatch, DAG violation, region growth,
# stall regression, pipeline panic) fails the stage; the campaign summary
# is schema-validated like every other telemetry export. The checked-in
# regression corpus is replayed separately by `cargo test` (stage test).
fuzz_smoke() {
    out="$(mktemp)" || return 1
    status=1
    if cargo run -q --release -p fuzzy-fuzz --bin fuzz -- \
        --seed 7 --iters 200 --stats-json "$out"; then
        cargo run -q --release -p fuzzy-bench --bin validate_stats -- \
            --schema fuzz_campaign "$out"
        status=$?
    fi
    rm -f "$out"
    return $status
}

# Chaos smoke: the dynamic-membership gate. First the model checker's
# reconfig mutant pair (join-before-boundary and stale-generation depart
# must both be caught) plus the real implementation surviving the same
# schedule spaces; then the quick chaos-churn experiment — real threads,
# every backend, both runtimes, seeded join/leave/crash/delay/spurious
# churn — with its telemetry export schema-validated.
chaos_smoke() {
    cargo test -q -p fuzzy-check --test mutants -- \
        join_mid_epoch stale_generation real_reconfig || return 1
    out="$(mktemp)" || return 1
    status=1
    if cargo run -q --release -p fuzzy-bench --bin exp_chaos_churn -- \
        --quick --stats-json "$out" >/dev/null; then
        cargo run -q --release -p fuzzy-bench --bin validate_stats -- \
            --schema chaos_churn "$out"
        status=$?
    fi
    rm -f "$out"
    return $status
}

# Net smoke: the distributed gate. First the model checker's net mutant
# pair — the transport that forges the higher dissemination rounds must
# be caught as a fuzzy violation, and the real NetBarrier must survive
# the same schedule space; then the multi-process harness tests (a real
# UDS worker mesh completing every episode, and the acceptance scenario:
# killing one worker mid-episode poisons, not hangs, all survivors);
# finally the quick exp_net_scale sweep — in-process loopback mesh plus
# forked UDS worker processes — with its export schema-validated.
net_smoke() {
    cargo test -q -p fuzzy-check --test mutants -- \
        net_skip_round real_net_barrier || return 1
    cargo test -q -p fuzzy-sched --test multiproc || return 1
    out="$(mktemp)" || return 1
    status=1
    if cargo run -q --release -p fuzzy-bench --bin exp_net_scale -- \
        --quick --stats-json "$out" >/dev/null; then
        cargo run -q --release -p fuzzy-bench --bin validate_stats -- \
            --schema net_scale "$out"
        status=$?
    fi
    rm -f "$out"
    return $status
}

# Perf gate: quick backend-faceoff and async-scale sweeps, each
# schema-validated and compared against its checked-in baseline (see
# scripts/perf_gate.sh for the tolerance model).
perf_gate() {
    sh scripts/perf_gate.sh
}

want fmt && run_stage fmt cargo fmt --check
want build && run_stage build cargo build --workspace --all-targets
want clippy && run_stage clippy cargo clippy --workspace --all-targets -- -D warnings
want test && run_stage test cargo test -q --workspace
want tier1 && run_stage tier1 tier1_gate
want check-smoke && run_stage check-smoke check_smoke
want bench-smoke && run_stage bench-smoke bench_smoke
want async-smoke && run_stage async-smoke async_smoke
want fault-smoke && run_stage fault-smoke fault_smoke
want fuzz-smoke && run_stage fuzz-smoke fuzz_smoke
want chaos-smoke && run_stage chaos-smoke chaos_smoke
want net-smoke && run_stage net-smoke net_smoke
want perf-gate && run_stage perf-gate perf_gate
want doc && run_stage doc env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

if [ -n "$SUMMARY" ]; then
    echo ""
    echo "ci: summary"
    echo "$SUMMARY" | while read -r name verdict elapsed; do
        [ -n "$name" ] && printf '  %-12s %-4s %8s\n' "$name" "$verdict" "$elapsed"
    done
fi

if [ -n "$failed_stage" ]; then
    echo "ci: FAILED at stage $failed_stage"
    exit 1
fi
echo "ci: all stages passed"
