#!/usr/bin/env sh
# Tier-1 gate: build, test, lint. Run from the repository root.
#
#   scripts/ci.sh
#
# Mirrors what reviewers run before merging: the release build and the
# umbrella test suite are the seed's tier-1 checks; clippy (warnings as
# errors, all targets) keeps the workspace lint-clean.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all checks passed"
