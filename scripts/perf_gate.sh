#!/usr/bin/env sh
# Performance gate for the split-phase barrier backends and the async
# frontend.
#
#   scripts/perf_gate.sh [--full]
#
# Three sub-gates, all of which must pass:
#
#   faceoff  runs the exp_backend_faceoff sweep (quick subset by default,
#            full sweep with --full), schema-validates the fresh export,
#            and compares its stall-probe / arrival-spread aggregates
#            against the checked-in baseline BENCH_faceoff.json within a
#            multiplicative tolerance. The faceoff binary itself
#            additionally asserts that the hierarchical backend beats the
#            central and counting barriers at N >= 16 (full sweep), so a
#            perf regression in that claim fails the gate even before the
#            baseline comparison runs.
#   async    runs the exp_async_scale sweep the same way and compares its
#            polls-per-arrival / elapsed-time rows against
#            BENCH_async.json. The sweep itself asserts parked == resumed
#            on every row, so a lost wakeup fails the gate outright.
#   net      runs the exp_net_scale sweep the same way and compares its
#            frames-per-arrival / elapsed-time rows against
#            BENCH_net.json. The sweep itself asserts zero retries and
#            zero decode errors on the lossless loopback mesh, plus a
#            wedge-free multi-process UDS run, so a frame-traffic or
#            liveness regression fails the gate before the comparison.
#
# Environment:
#   PERF_GATE_TOLERANCE   multiplicative slack for probes/episode and
#                         polls/arrival (default 8; wall-clock metrics get
#                         4x this — see the binaries' --compare modes).
#                         Loose on purpose: the gate is meant to catch
#                         order-of-magnitude regressions on noisy shared
#                         runners, not 10% drifts.
#
# Exit codes: 0 = gate passed, 1 = regression/validation failure.
set -u

cd "$(dirname "$0")/.."

MODE="--quick"
[ "${1:-}" = "--full" ] && MODE=""
TOLERANCE="${PERF_GATE_TOLERANCE:-8}"

# run_gate <label> <bin> <schema> <baseline>: sweep, validate, compare.
run_gate() {
    label="$1"
    bin="$2"
    schema="$3"
    baseline="$4"

    if [ ! -f "$baseline" ]; then
        echo "perf_gate: missing baseline $baseline — regenerate with:" >&2
        echo "  cargo run --release -p fuzzy-bench --bin $bin -- --stats-json $baseline" >&2
        return 1
    fi

    fresh="$(mktemp)" || return 1
    status=1
    # shellcheck disable=SC2086  # $MODE is intentionally word-split ('' or --quick)
    if cargo run -q --release -p fuzzy-bench --bin "$bin" -- \
        $MODE --stats-json "$fresh" >/dev/null; then
        if cargo run -q --release -p fuzzy-bench --bin validate_stats -- \
            --schema "$schema" "$fresh"; then
            cargo run -q --release -p fuzzy-bench --bin "$bin" -- \
                --compare "$fresh" --baseline "$baseline" --tolerance "$TOLERANCE"
            status=$?
        fi
    else
        echo "perf_gate: $label run failed (in-run assertion or crash)" >&2
    fi
    rm -f "$fresh"

    if [ "$status" -eq 0 ]; then
        echo "perf_gate: $label PASS (tolerance x$TOLERANCE vs $baseline)"
    else
        echo "perf_gate: $label FAIL" >&2
    fi
    return "$status"
}

overall=0
run_gate faceoff exp_backend_faceoff backend_faceoff BENCH_faceoff.json || overall=1
run_gate async exp_async_scale async_scale BENCH_async.json || overall=1
run_gate net exp_net_scale net_scale BENCH_net.json || overall=1

if [ "$overall" -eq 0 ]; then
    echo "perf_gate: PASS"
else
    echo "perf_gate: FAIL" >&2
fi
exit "$overall"
