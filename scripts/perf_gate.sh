#!/usr/bin/env sh
# Performance gate for the split-phase barrier backends.
#
#   scripts/perf_gate.sh [--full]
#
# Runs the exp_backend_faceoff sweep (quick subset by default, full sweep
# with --full), schema-validates the fresh export, and compares its
# stall-probe / arrival-spread aggregates against the checked-in baseline
# BENCH_faceoff.json within a multiplicative tolerance. The faceoff binary
# itself additionally asserts that the hierarchical backend beats the
# central and counting barriers at N >= 16 (full sweep), so a perf
# regression in the tentpole claim fails the gate even before the
# baseline comparison runs.
#
# Environment:
#   PERF_GATE_TOLERANCE   multiplicative slack for probes/episode
#                         (default 8; arrival spread gets 4x this — see
#                         exp_backend_faceoff --compare). Loose on purpose:
#                         the gate is meant to catch order-of-magnitude
#                         regressions on noisy shared runners, not 10%
#                         drifts.
#
# Exit codes: 0 = gate passed, 1 = regression/validation failure.
set -u

cd "$(dirname "$0")/.."

MODE="--quick"
[ "${1:-}" = "--full" ] && MODE=""
TOLERANCE="${PERF_GATE_TOLERANCE:-8}"
BASELINE="BENCH_faceoff.json"

if [ ! -f "$BASELINE" ]; then
    echo "perf_gate: missing baseline $BASELINE — regenerate with:" >&2
    echo "  cargo run --release -p fuzzy-bench --bin exp_backend_faceoff -- --stats-json $BASELINE" >&2
    exit 1
fi

fresh="$(mktemp)" || exit 1
status=1
# shellcheck disable=SC2086  # $MODE is intentionally word-split ('' or --quick)
if cargo run -q --release -p fuzzy-bench --bin exp_backend_faceoff -- \
    $MODE --stats-json "$fresh" >/dev/null; then
    if cargo run -q --release -p fuzzy-bench --bin validate_stats -- \
        --schema backend_faceoff "$fresh"; then
        cargo run -q --release -p fuzzy-bench --bin exp_backend_faceoff -- \
            --compare "$fresh" --baseline "$BASELINE" --tolerance "$TOLERANCE"
        status=$?
    fi
else
    echo "perf_gate: faceoff run failed (tentpole assertion or crash)" >&2
fi
rm -f "$fresh"

if [ "$status" -eq 0 ]; then
    echo "perf_gate: PASS (tolerance x$TOLERANCE vs $BASELINE)"
else
    echo "perf_gate: FAIL" >&2
fi
exit "$status"
