//! Quickstart: split-phase (fuzzy) barrier synchronization on threads.
//!
//! Four worker threads run a phased computation. Each phase:
//!
//! 1. **non-barrier region** — work whose results other threads read in
//!    the next phase;
//! 2. `arrive()` — announce readiness to synchronize (never blocks);
//! 3. **barrier region** — private work that overlaps the
//!    synchronization (here: preparing the next phase's coefficients);
//! 4. `wait(token)` — blocks only if some thread has not arrived yet.
//!
//! The larger the barrier region, the less likely `wait` ever stalls —
//! the paper's core idea. Statistics printed at the end show how many
//! waits actually stalled.
//!
//! Run with: `cargo run --example quickstart`

use fuzzy_barrier::{FuzzyBarrier, SplitBarrier};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

const THREADS: usize = 4;
const PHASES: u64 = 1_000;

fn main() {
    let barrier = Arc::new(FuzzyBarrier::new(THREADS));
    // Shared per-thread cells: written before the barrier, read after.
    let cells: Arc<Vec<AtomicI64>> = Arc::new((0..THREADS).map(|_| AtomicI64::new(0)).collect());

    std::thread::scope(|s| {
        for id in 0..THREADS {
            let barrier = Arc::clone(&barrier);
            let cells = Arc::clone(&cells);
            s.spawn(move || {
                let mut private_coeff: i64 = 1;
                for phase in 1..=PHASES {
                    // 1. Non-barrier region: publish this phase's value.
                    cells[id].store(phase as i64 * private_coeff, Ordering::Release);

                    // 2. Ready to synchronize.
                    let token = barrier.arrive(id);

                    // 3. Barrier region: useful private work overlapping
                    //    the synchronization.
                    private_coeff = (private_coeff * 31 + 7) % 1_000;

                    // 4. Synchronize (stalls only if someone is behind).
                    barrier.wait(token);

                    // Safe to read a neighbour's phase value now.
                    let neighbour = cells[(id + 1) % THREADS].load(Ordering::Acquire);
                    assert!(neighbour != 0, "barrier ordering violated");

                    // Second barrier closes the phase (prevents overlap of
                    // the next store with this read).
                    let token = barrier.arrive(id);
                    barrier.wait(token);
                }
            });
        }
    });

    let stats = barrier.stats();
    println!("phases completed : {}", stats.episodes / 2);
    println!("total arrivals   : {}", stats.arrivals);
    println!(
        "waits that stalled: {} of {} ({:.1}%)",
        stats.stalls,
        stats.waits,
        100.0 * stats.stall_rate()
    );
    println!("total stall time : {:?}", stats.stall_time);
    println!("\nThe barrier region work overlapped the synchronization — on a");
    println!("multi-core host most waits return instantly.");
}
