//! A tour of the fuzzy-barrier compiler pipeline (the paper's Sec. 4).
//!
//! Takes the Fig. 9 recurrence through every stage:
//! dependence analysis -> marked instructions -> lowering to
//! three-address code -> region construction -> three-phase reordering ->
//! code generation -> execution on the simulated machine, printing the
//! intermediate artifacts at each step (compare with the paper's Fig. 4
//! and Fig. 10 listings).
//!
//! Run with: `cargo run --example compiler_tour`

use fuzzy_compiler::driver::{compile_nest, CompileOptions};
use fuzzy_compiler::parse::parse_program;
use fuzzy_compiler::pretty::{render_split, summarize_split};
use fuzzy_compiler::region::RegionSplit;
use fuzzy_compiler::{deps, lower, reorder};
use fuzzy_sim::builder::MachineBuilder;

/// The paper's Fig. 9 loop, in the paper's own source syntax.
const SOURCE: &str = "\
int a[12][6];

for (j=1; j<=9; j++) do seq
  for (i=1; i<=4; i++) do par
    a[j][i] = a[j-1][i-1] + i*j;
";

fn main() {
    println!("== 0. source (the paper's Fig. 9 syntax) ==\n");
    println!("{SOURCE}");
    let parsed = parse_program(SOURCE).expect("parses");
    let nest = parsed.nest;
    println!(
        "parsed: seq var `{}` over {}..={}, {} processors from the par grid\n",
        nest.var_name(nest.seq_var),
        nest.seq_lo,
        nest.seq_hi,
        parsed.proc_inits.len()
    );

    println!("== 1. dependence analysis ==\n");
    let info = deps::analyze(&nest);
    for d in &info.deps {
        println!(
            "  dep: stmt{} -> stmt{}  kind={:?}  cross_processor={}",
            d.from.stmt, d.to.stmt, d.kind, d.cross_processor
        );
    }
    let marked = info.marked_for_carried();
    println!("\n  marked accesses (must stay in the non-barrier region): {marked:?}");

    println!("\n== 2. lowering to three-address code ==\n");
    let body = lower::lower_body(&nest, &marked);
    for instr in &body.instrs {
        println!("  {instr}");
    }

    println!("\n== 3. regions by marked positions (cf. Fig. 4(a)) ==\n");
    let before = RegionSplit::by_marks(&body);
    println!("{}", render_split("before reordering", &before));
    println!("  {}", summarize_split(&before));

    println!("\n== 4. three-phase reordering (cf. Fig. 4(b)) ==\n");
    let after = reorder::reorder(&body);
    println!("{}", render_split("after reordering", &after));
    println!("  {}", summarize_split(&after));

    println!("\n== 5. code generation and execution ==\n");
    let compiled =
        compile_nest(&nest, &parsed.proc_inits, &CompileOptions::default()).expect("compiles");
    let stream0 = &compiled.program.streams()[0];
    println!("  processor 0's stream ({} instructions):", stream0.len());
    for (idx, op) in stream0.ops().iter().enumerate().take(12) {
        println!("    {idx:>3}: {op}");
    }
    println!("    ... ({} more)", stream0.len().saturating_sub(12));

    let mut machine = MachineBuilder::new(compiled.program)
        .build()
        .expect("loads");
    let outcome = machine.run(10_000_000).expect("runs");
    let stats = machine.stats();
    println!(
        "\n  outcome: {outcome:?}; {} syncs, {} stall cycles",
        stats.sync_events,
        stats.total_stall_cycles()
    );
    println!(
        "\n  a[9][1..=4] = {:?}",
        (1..=4)
            .map(|col| machine.memory().peek(9 * 6 + col))
            .collect::<Vec<_>>()
    );
}
