//! The paper's running example (Fig. 3): a Poisson solver compiled for a
//! simulated multiprocessor with hardware fuzzy barriers.
//!
//! `M^2` processors each own one interior point of an `(M+2)^2` grid and
//! relax it for `10*M` iterations; a fuzzy barrier at the end of each
//! outer iteration enforces the loop-carried dependences. The compiler
//! constructs barrier/non-barrier regions, reorders code to shrink the
//! non-barrier region (Fig. 4), and the simulator executes the result.
//!
//! Run with: `cargo run --example poisson`

use fuzzy_compiler::ast::{
    ArrayAccess, ArrayDecl, ArrayId, Assign, Expr, LoopNest, Stmt, Subscript, VarId,
};
use fuzzy_compiler::driver::{compile_nest, CompileOptions};
use fuzzy_sim::builder::MachineBuilder;

const M: usize = 3; // 3x3 interior, 9 processors

fn main() {
    let k = VarId(0);
    let i = VarId(1);
    let j = VarId(2);
    let p = ArrayId(0);
    let acc = |di: i64, dj: i64| {
        Expr::Access(ArrayAccess::new(
            p,
            vec![Subscript::var(i, di), Subscript::var(j, dj)],
        ))
    };
    let nest = LoopNest {
        arrays: vec![ArrayDecl {
            name: "P".into(),
            dims: vec![M + 2, M + 2],
            base: 0,
        }],
        seq_var: k,
        seq_lo: 1,
        seq_hi: (10 * M) as i64,
        private_vars: vec![i, j],
        body: vec![Stmt::Assign(Assign {
            target: ArrayAccess::new(p, vec![Subscript::var(i, 0), Subscript::var(j, 0)]),
            value: Expr::div_const(
                Expr::add(
                    Expr::add(Expr::add(acc(0, 1), acc(0, -1)), acc(1, 0)),
                    acc(-1, 0),
                ),
                4,
            ),
        })],
        var_names: vec!["k".into(), "i".into(), "j".into()],
    };
    // One processor per interior point: i = l, j = m (Fig. 3(b)).
    let inits: Vec<Vec<(VarId, i64)>> = (1..=M as i64)
        .flat_map(|l| (1..=M as i64).map(move |m| vec![(i, l), (j, m)]))
        .collect();

    let compiled = compile_nest(&nest, &inits, &CompileOptions::default()).expect("compiles");
    println!(
        "compiled {} processor streams; non-barrier region shrank {} -> {} instructions",
        inits.len(),
        compiled.before.non_barrier_len(),
        compiled.after.non_barrier_len()
    );

    let mut machine = MachineBuilder::new(compiled.program)
        .miss_rate(0.1)
        .miss_penalty(10)
        .build()
        .expect("loads");

    // Boundary conditions: top row = 100, the rest 0.
    let n = M + 2;
    for col in 0..n {
        machine.memory_mut().poke(col, 100);
    }

    let outcome = machine.run(100_000_000).expect("runs");
    assert!(outcome.is_halted(), "outcome {outcome:?}");
    let stats = machine.stats();
    println!(
        "ran {} cycles, {} synchronizations, {} total stall cycles\n",
        stats.cycles,
        stats.sync_events,
        stats.total_stall_cycles()
    );

    println!("relaxed grid (boundary row at 100):");
    for row in 0..n {
        let cells: Vec<String> = (0..n)
            .map(|col| format!("{:>4}", machine.memory().peek(row * n + col)))
            .collect();
        println!("  {}", cells.join(" "));
    }

    // Host reference with identical (integer) arithmetic and the same
    // Jacobi-with-immediate-visibility update order.
    let mut reference = vec![0i64; n * n];
    for cell in reference.iter_mut().take(n) {
        *cell = 100;
    }
    for _ in 0..10 * M {
        let prev = reference.clone();
        for l in 1..=M {
            for m in 1..=M {
                reference[l * n + m] = (prev[l * n + m + 1]
                    + prev[l * n + m - 1]
                    + prev[(l + 1) * n + m]
                    + prev[(l - 1) * n + m])
                    / 4;
            }
        }
    }
    let simulated: Vec<i64> = (0..n * n).map(|w| machine.memory().peek(w)).collect();
    assert_eq!(
        simulated, reference,
        "simulator must match the host reference"
    );
    println!("\nsimulated grid matches the host reference exactly.");
}
