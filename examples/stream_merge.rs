//! Stream merging with multiple logical barriers (the paper's Fig. 6).
//!
//! A parent stream dynamically spawns worker streams; each spawn
//! allocates one logical barrier (tag + mask) from a registry that holds
//! at most N−1 barriers for N streams — exactly the paper's Sec. 5
//! budget. Disjoint pairs synchronize independently; at the end the
//! parent merges with each worker through its pair barrier, and a final
//! full-mask barrier closes the computation.
//!
//! Run with: `cargo run --example stream_merge`

use fuzzy_barrier::{GroupRegistry, ProcMask, SubsetBarrier, Tag};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const WORKERS: usize = 3;
const ROUNDS: u64 = 200;

fn main() {
    let streams = WORKERS + 1; // parent is stream 0
    let registry = Arc::new(GroupRegistry::new(streams));
    println!(
        "{streams} streams -> registry capacity {} logical barriers (N-1)",
        registry.capacity()
    );

    // Pair barriers: parent <-> each worker.
    let mut pairs: Vec<Arc<SubsetBarrier>> = Vec::new();
    for w in 1..=WORKERS {
        let mask: ProcMask = [0, w].into_iter().collect();
        let (tag, barrier) = registry.allocate(mask).expect("budget");
        println!("spawn worker {w}: pair barrier {tag} over {mask}");
        pairs.push(barrier);
    }

    // Partial results: workers produce, parent consumes after merging.
    let results: Arc<Vec<AtomicU64>> = Arc::new((0..WORKERS).map(|_| AtomicU64::new(0)).collect());

    std::thread::scope(|s| {
        for (w, barrier) in pairs.iter().enumerate() {
            let barrier = Arc::clone(barrier);
            let results = Arc::clone(&results);
            s.spawn(move || {
                let id = w + 1;
                let mut acc = 0u64;
                for round in 1..=ROUNDS {
                    // Worker's work: varies per worker (different stream
                    // lengths, like the paper's S1/S2/S3).
                    for x in 0..(id as u64 * 50) {
                        acc = acc.wrapping_add(x ^ round);
                    }
                    results[w].store(acc, Ordering::Release);
                    // Merge with the parent through OUR pair barrier: the
                    // arrive/wait split lets the worker prepare its next
                    // round (the barrier region) while the parent catches
                    // up.
                    let token = barrier.arrive(id, barrier.tag()).expect("tag");
                    acc = acc.rotate_left(1); // barrier-region work
                    barrier.wait(token);
                }
            });
        }

        // Parent: merges with each worker in turn, each round.
        let mut merged = 0u64;
        for _round in 1..=ROUNDS {
            for (w, barrier) in pairs.iter().enumerate() {
                let token = barrier.arrive(0, barrier.tag()).expect("tag");
                // Parent's barrier region: fold the previous round's
                // result while this worker finishes.
                merged = merged.wrapping_add(results[w].load(Ordering::Acquire));
                barrier.wait(token);
            }
        }
        println!("parent merged checksum: {merged:#x}");
    });

    // Every pair synchronized independently, ROUNDS times.
    for (w, barrier) in pairs.iter().enumerate() {
        let stats = barrier.stats();
        println!(
            "pair parent<->{}: episodes {}, stall rate {:.0}%",
            w + 1,
            stats.episodes,
            100.0 * stats.stall_rate()
        );
        assert_eq!(stats.episodes, ROUNDS);
    }

    // Release the pair barriers and allocate one full-group barrier for a
    // final all-stream synchronization (tag reuse after release).
    let tags: Vec<Tag> = pairs.iter().map(|b| b.tag()).collect();
    drop(pairs);
    for tag in tags {
        registry.release(tag).expect("was live");
    }
    let (final_tag, final_barrier) = registry
        .allocate(ProcMask::first_n(streams))
        .expect("slots were freed");
    println!("final merge barrier: {final_tag} over all {streams} streams");
    std::thread::scope(|s| {
        for id in 1..streams {
            let b = Arc::clone(&final_barrier);
            s.spawn(move || {
                b.point(id, b.tag()).expect("tag");
            });
        }
        final_barrier.point(0, final_barrier.tag()).expect("tag");
    });
    println!("all streams merged; done.");
}
