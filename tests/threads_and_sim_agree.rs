//! Cross-substrate integration: the same phased computation produces the
//! same values whether synchronized by the thread library's split-phase
//! barrier or by the simulator's hardware fuzzy barrier.

use fuzzy_barrier::{FuzzyBarrier, SplitBarrier};
use fuzzy_sim::builder::MachineBuilder;
use fuzzy_sim::isa::{Cond, Instr};
use fuzzy_sim::program::{Program, Stream, StreamBuilder};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

const PROCS: usize = 3;
const PHASES: i64 = 40;

/// Phase recurrence: x_p <- x_{(p+1) mod P} + p, all updates
/// simultaneous (read the old neighbour value, barrier, write, barrier).
fn host_reference() -> Vec<i64> {
    let mut x = vec![0i64; PROCS];
    for _ in 0..PHASES {
        let prev = x.clone();
        for p in 0..PROCS {
            x[p] = prev[(p + 1) % PROCS] + p as i64;
        }
    }
    x
}

#[test]
fn thread_library_computes_reference() {
    let barrier = Arc::new(FuzzyBarrier::new(PROCS));
    let cells: Arc<Vec<AtomicI64>> = Arc::new((0..PROCS).map(|_| AtomicI64::new(0)).collect());
    std::thread::scope(|s| {
        for p in 0..PROCS {
            let barrier = Arc::clone(&barrier);
            let cells = Arc::clone(&cells);
            s.spawn(move || {
                for _ in 0..PHASES {
                    let neighbour = cells[(p + 1) % PROCS].load(Ordering::Acquire);
                    // Everyone has read; barrier region is empty here.
                    let t = barrier.arrive(p);
                    barrier.wait(t);
                    cells[p].store(neighbour + p as i64, Ordering::Release);
                    let t = barrier.arrive(p);
                    barrier.wait(t);
                }
            });
        }
    });
    let values: Vec<i64> = cells.iter().map(|c| c.load(Ordering::SeqCst)).collect();
    assert_eq!(values, host_reference());
}

#[test]
fn simulator_computes_reference() {
    // Same recurrence in ISA: cells at words 0..PROCS.
    let stream = |p: usize| -> Stream {
        let mut b = StreamBuilder::new();
        b.plain(Instr::Li { rd: 1, imm: 0 }); // phase counter
        b.plain(Instr::Li { rd: 2, imm: PHASES });
        b.plain(Instr::Li {
            rd: 3,
            imm: p as i64,
        }); // my id / addend
        b.label("loop");
        // read neighbour
        b.plain(Instr::Load {
            rd: 4,
            rs: 0,
            offset: ((p + 1) % PROCS) as i64,
        });
        // barrier 1 (everyone has read)
        b.fuzzy(Instr::Nop);
        // write my cell
        b.plain(Instr::Add {
            rd: 5,
            rs1: 4,
            rs2: 3,
        });
        b.plain(Instr::Store {
            rs: 5,
            rb: 0,
            offset: p as i64,
        });
        // barrier 2 closes the phase; loop control rides inside it.
        b.fuzzy(Instr::Addi {
            rd: 1,
            rs: 1,
            imm: 1,
        });
        b.fuzzy_branch(Cond::Lt, 1, 2, "loop");
        b.plain(Instr::Halt);
        b.finish().unwrap()
    };
    let program = Program::new((0..PROCS).map(stream).collect());
    let mut m = MachineBuilder::new(program)
        .miss_rate(0.2)
        .miss_penalty(15)
        .seed(3)
        .build()
        .unwrap();
    let out = m.run(10_000_000).unwrap();
    assert!(out.is_halted(), "{out:?}");
    let values: Vec<i64> = (0..PROCS).map(|w| m.memory().peek(w)).collect();
    assert_eq!(values, host_reference());
    assert_eq!(m.stats().sync_events, 2 * PHASES as u64);
}

#[test]
fn all_backends_compute_the_same_thing() {
    use fuzzy_barrier::{CentralBarrier, CountingBarrier, DisseminationBarrier, TreeBarrier};
    let run = |b: Arc<dyn SplitBarrier>| -> Vec<i64> {
        let cells: Arc<Vec<AtomicI64>> = Arc::new((0..PROCS).map(|_| AtomicI64::new(0)).collect());
        std::thread::scope(|s| {
            for p in 0..PROCS {
                let b = Arc::clone(&b);
                let cells = Arc::clone(&cells);
                s.spawn(move || {
                    for _ in 0..PHASES {
                        let neighbour = cells[(p + 1) % PROCS].load(Ordering::Acquire);
                        let t = b.arrive(p);
                        b.wait(t);
                        cells[p].store(neighbour + p as i64, Ordering::Release);
                        let t = b.arrive(p);
                        b.wait(t);
                    }
                });
            }
        });
        cells.iter().map(|c| c.load(Ordering::SeqCst)).collect()
    };
    let expected = host_reference();
    assert_eq!(run(Arc::new(CentralBarrier::new(PROCS))), expected);
    assert_eq!(run(Arc::new(CountingBarrier::new(PROCS))), expected);
    assert_eq!(run(Arc::new(DisseminationBarrier::new(PROCS))), expected);
    assert_eq!(run(Arc::new(TreeBarrier::new(PROCS))), expected);
}
