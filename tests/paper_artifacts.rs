//! Integration tests asserting the paper-matching facts that the
//! experiment binaries report — kept as tests so regressions in any crate
//! surface as failures, not just changed experiment output.

use fuzzy_compiler::ast::{
    ArrayAccess, ArrayDecl, ArrayId, Assign, Expr, LoopNest, Stmt, Subscript, VarId,
};
use fuzzy_compiler::region::RegionSplit;
use fuzzy_compiler::transform::multiversion::{chunk_versions, LoopVersion};
use fuzzy_compiler::transform::unroll::divisibility_factor;
use fuzzy_compiler::{deps, lower, reorder};
use fuzzy_sched::self_sched::{chunk_sequence, GuidedSelfScheduling};
use fuzzy_sim::assembler::assemble_program;
use fuzzy_sim::builder::MachineBuilder;

fn poisson_nest() -> LoopNest {
    let k = VarId(0);
    let i = VarId(1);
    let j = VarId(2);
    let p = ArrayId(0);
    let acc = |di: i64, dj: i64| {
        Expr::Access(ArrayAccess::new(
            p,
            vec![Subscript::var(i, di), Subscript::var(j, dj)],
        ))
    };
    LoopNest {
        arrays: vec![ArrayDecl {
            name: "P".into(),
            dims: vec![4, 4],
            base: 0,
        }],
        seq_var: k,
        seq_lo: 1,
        seq_hi: 20,
        private_vars: vec![i, j],
        body: vec![Stmt::Assign(Assign {
            target: ArrayAccess::new(p, vec![Subscript::var(i, 0), Subscript::var(j, 0)]),
            value: Expr::div_const(
                Expr::add(
                    Expr::add(Expr::add(acc(0, 1), acc(0, -1)), acc(1, 0)),
                    acc(-1, 0),
                ),
                4,
            ),
        })],
        var_names: vec!["k".into(), "i".into(), "j".into()],
    }
}

/// Fig. 4(b): after reordering, the Poisson non-barrier region is exactly
/// I1..I4 plus the divide — five instructions, nothing left for phase 3.
#[test]
fn fig4b_poisson_non_barrier_region_is_five_instructions() {
    let nest = poisson_nest();
    let info = deps::analyze(&nest);
    let body = lower::lower_body(&nest, &info.marked_for_carried());
    let after = reorder::reorder(&body);
    assert_eq!(after.non_barrier_len(), 5);
    assert!(after.suffix.is_empty());
    assert_eq!(body.marked_indices().len(), 4, "the paper's I1..I4");
    // And the before/after contrast of Fig. 4(a) vs (b).
    let before = RegionSplit::by_marks(&body);
    assert!(before.non_barrier_len() > 3 * after.non_barrier_len());
}

/// Fig. 2: the invalid branch deadlocks at run time and is rejected
/// statically.
#[test]
fn fig2_invalid_branch_rejected_and_deadlocks() {
    let src = "\
.stream
B:  nop
B:  j skip
    nop
skip:
B:  nop
    halt
.stream
B:  nop
    nop
B:  nop
    halt
";
    let program = assemble_program(src).unwrap();
    assert!(MachineBuilder::new(program.clone()).build().is_err());
    let mut m = MachineBuilder::new(program)
        .validate(false)
        .build()
        .unwrap();
    assert!(m.run(100_000).unwrap().is_deadlock());
}

/// Sec. 5: N streams need at most N−1 barriers.
#[test]
fn sec5_barrier_budget() {
    use fuzzy_barrier::{GroupRegistry, ProcMask};
    for n in 2..8 {
        let r = GroupRegistry::new(n);
        assert_eq!(r.capacity(), n - 1);
        // Hold every handle: dropped handles are orphans the registry may
        // sweep to make room, which would defeat the exhaustion check.
        let held: Vec<_> = (0..n - 1)
            .map(|_| r.allocate(ProcMask::first_n(2)).unwrap())
            .collect();
        assert!(r.allocate(ProcMask::first_n(2)).is_err());
        drop(held);
        // Once the streams abandon their barriers, the budget frees up.
        assert!(r.allocate(ProcMask::first_n(2)).is_ok());
    }
}

/// Fig. 11: 4 iterations on 3 processors needs a 3x unroll; the rotated
/// schedule equalizes work over a period.
#[test]
fn fig11_unroll_factor_and_rotation() {
    assert_eq!(divisibility_factor(4, 3), 3);
    let mut totals = [0usize; 3];
    for outer in 0..3 {
        for (p, chunk) in fuzzy_sched::rotated_block(4, 3, outer).iter().enumerate() {
            totals[p] += chunk.len();
        }
    }
    assert_eq!(totals, [4, 4, 4]);
}

/// Fig. 12: the four-version dispatch table.
#[test]
fn fig12_version_selection() {
    assert_eq!(chunk_versions(1), vec![LoopVersion::BarrierBoth]);
    assert_eq!(
        chunk_versions(3),
        vec![
            LoopVersion::BarrierBefore,
            LoopVersion::NoBarrier,
            LoopVersion::BarrierAfter
        ]
    );
}

/// GSS (the paper's [19]): chunks are ceil(R/P), non-increasing, and
/// cover the iteration space exactly.
#[test]
fn gss_chunk_law() {
    for (total, procs) in [(100usize, 4usize), (57, 3), (1000, 8), (5, 8)] {
        let seq = chunk_sequence(total, procs, &GuidedSelfScheduling);
        assert_eq!(seq.iter().sum::<usize>(), total);
        assert!(seq.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(seq[0], total.div_ceil(procs));
    }
}

/// Sec. 1: on the same machine, software barrier cost grows with the
/// processor count while the hardware fuzzy barrier cost stays flat.
#[test]
fn sec1_software_grows_hardware_flat() {
    use fuzzy_sim::isa::{Cond, Instr};
    use fuzzy_sim::program::{Program, Stream, StreamBuilder};
    use fuzzy_sim::softbarrier::{emit_soft_barrier, SoftBarrierRegs};

    let episodes = 30i64;
    let soft = |n: usize| -> Stream {
        let mut b = StreamBuilder::new();
        b.plain(Instr::Li { rd: 24, imm: 0 });
        b.plain(Instr::Li { rd: 1, imm: 0 });
        b.plain(Instr::Li {
            rd: 2,
            imm: episodes,
        });
        b.label("outer");
        emit_soft_barrier(&mut b, n as i64, 0, SoftBarrierRegs::default());
        b.plain(Instr::Addi {
            rd: 1,
            rs: 1,
            imm: 1,
        });
        b.plain_branch(Cond::Lt, 1, 2, "outer");
        b.plain(Instr::Halt);
        b.finish().unwrap()
    };
    let hw = || -> Stream {
        let mut b = StreamBuilder::new();
        b.plain(Instr::Li { rd: 1, imm: 0 });
        b.plain(Instr::Li {
            rd: 2,
            imm: episodes,
        });
        b.label("outer");
        b.fuzzy(Instr::Addi {
            rd: 1,
            rs: 1,
            imm: 1,
        });
        b.fuzzy_branch(Cond::Lt, 1, 2, "outer");
        b.plain(Instr::Halt);
        b.finish().unwrap()
    };
    let cycles = |streams: Vec<Stream>| -> u64 {
        let mut m = MachineBuilder::new(Program::new(streams))
            .banks(1)
            .build()
            .unwrap();
        let out = m.run(100_000_000).unwrap();
        assert!(out.is_halted(), "{out:?}");
        m.stats().cycles
    };
    let soft2 = cycles((0..2).map(|_| soft(2)).collect());
    let soft8 = cycles((0..8).map(|_| soft(8)).collect());
    let hw2 = cycles((0..2).map(|_| hw()).collect());
    let hw8 = cycles((0..8).map(|_| hw()).collect());
    assert!(
        soft8 as f64 > soft2 as f64 * 1.5,
        "software barrier must slow down with P ({soft2} -> {soft8})"
    );
    assert!(
        hw8 <= hw2 + 2,
        "hardware barrier must stay flat ({hw2} -> {hw8})"
    );
}
