//! Integration: programs written in the paper's source syntax, through
//! the whole pipeline (parse -> analyze -> transform -> compile ->
//! simulate), checked against host references.

use fuzzy_compiler::driver::{compile_nest, CompileOptions};
use fuzzy_compiler::parse::parse_program;
use fuzzy_compiler::transform::distribution::distribute;
use fuzzy_sim::builder::MachineBuilder;

#[test]
fn poisson_source_with_boundaries_runs_to_reference() {
    let src = "\
int P[4][4];
P[0][0] = 100; P[0][1] = 100; P[0][2] = 100; P[0][3] = 100;
for (k=1; k<=20; k++) do seq
  for (i=1; i<=2; i++) do par
    for (j=1; j<=2; j++) do par
      P[i][j] = (P[i][j+1] + P[i][j-1] + P[i+1][j] + P[i-1][j]) / 4;
";
    let parsed = parse_program(src).unwrap();
    let compiled =
        compile_nest(&parsed.nest, &parsed.proc_inits, &CompileOptions::default()).unwrap();
    let mut m = MachineBuilder::new(compiled.program)
        .preload(parsed.data.clone())
        .build()
        .unwrap();
    assert!(m.run(10_000_000).unwrap().is_halted());

    let mut g = vec![0i64; 16];
    for (a, v) in &parsed.data {
        g[*a] = *v;
    }
    for _ in 0..20 {
        let prev = g.clone();
        for i in 1..=2usize {
            for j in 1..=2usize {
                g[i * 4 + j] = (prev[i * 4 + j + 1]
                    + prev[i * 4 + j - 1]
                    + prev[(i + 1) * 4 + j]
                    + prev[(i - 1) * 4 + j])
                    / 4;
            }
        }
    }
    let sim: Vec<i64> = (0..16).map(|w| m.memory().peek(w)).collect();
    assert_eq!(sim, g);
}

#[test]
fn fig7_style_conditional_source_compiles_and_runs() {
    // Fig. 7's shape: common statement plus an if with asymmetric
    // branches, written in source syntax. (The compiler places trailing
    // conditionals entirely inside the barrier region.)
    let src = "\
int A[8];
int B[8];
for (k=1; k<=5; k++) do seq
  for (i=1; i<=2; i++) do par {
    A[i] = A[i] + i;
    if (i == 1) { B[i] = A[i] * 2; } else { B[i] = 0 - 1; }
  }
";
    let parsed = parse_program(src).unwrap();
    let compiled =
        compile_nest(&parsed.nest, &parsed.proc_inits, &CompileOptions::default()).unwrap();
    assert!(compiled.program.validate().is_ok());
    let mut m = MachineBuilder::new(compiled.program).build().unwrap();
    assert!(m.run(1_000_000).unwrap().is_halted());
    // A[i] accumulates i per iteration: A[1] = 5, A[2] = 10.
    assert_eq!(m.memory().peek(1), 5);
    assert_eq!(m.memory().peek(2), 10);
    // B[1] = A[1]*2 from the last iteration = 10; B[2] = -1.
    assert_eq!(m.memory().peek(8 + 1), 10);
    assert_eq!(m.memory().peek(8 + 2), -1);
}

#[test]
fn fig5_source_distributes_as_the_paper_says() {
    let src = "\
int a[12][12];
int b[12][12];
int c[12][12];
for (i=1; i<=8; i++) do seq
  for (j=1; j<=10; j++) do par {
    a[j][i] = a[j+1][i-1] + 2;
    b[j][i] = b[j][i] + c[j][i];
  }
";
    let parsed = parse_program(src).unwrap();
    let dist = distribute(&parsed.nest);
    assert_eq!(dist.groups, vec![vec![0], vec![1]]);
    assert_eq!(
        dist.pinned,
        vec![true, false],
        "S2 can move into the barrier region"
    );
}

#[test]
fn parse_compile_run_is_deterministic_under_drift() {
    let src = "\
int a[16];
for (k=1; k<=10; k++) do seq
  for (i=1; i<=4; i++) do par
    a[i] = a[i] + i * k;
";
    let parsed = parse_program(src).unwrap();
    let run = || {
        let compiled =
            compile_nest(&parsed.nest, &parsed.proc_inits, &CompileOptions::default()).unwrap();
        let mut m = MachineBuilder::new(compiled.program)
            .miss_rate(0.3)
            .miss_penalty(18)
            .seed(77)
            .build()
            .unwrap();
        assert!(m.run(10_000_000).unwrap().is_halted());
        (
            m.stats().cycles,
            (0..16).map(|w| m.memory().peek(w)).collect::<Vec<i64>>(),
        )
    };
    let (c1, v1) = run();
    let (c2, v2) = run();
    assert_eq!(c1, c2);
    assert_eq!(v1, v2);
    // a[i] = sum_{k=1..10} i*k = 55*i
    for i in 1..=4i64 {
        assert_eq!(v1[i as usize], 55 * i);
    }
}
