//! Integration: scheduling policies driving the threaded executor with a
//! fuzzy barrier, and the virtual-time executor agreeing with hand
//! computation.

use fuzzy_barrier::StallPolicy;
use fuzzy_sched::executor::{run_threaded, simulate_dynamic, Strategy};
use fuzzy_sched::self_sched::{FixedChunk, GuidedSelfScheduling, SelfScheduling};
use fuzzy_sched::static_sched::{block, rotated_block};
use fuzzy_sched::workload::CostModel;

#[test]
fn threaded_gss_completes_all_outer_iterations() {
    let costs: Vec<Vec<u64>> = (0..8)
        .map(|k| CostModel::Jitter { lo: 1, hi: 30 }.costs(32, k as u64))
        .collect();
    let report = run_threaded(
        3,
        &costs,
        &Strategy::Dynamic(&GuidedSelfScheduling),
        50,
        StallPolicy::yielding(),
    );
    assert_eq!(report.barrier.episodes, 8);
    assert_eq!(report.barrier.arrivals, 24);
    assert_eq!(report.barrier.waits, 24);
}

#[test]
fn threaded_static_rotation_matches_episode_count() {
    let costs: Vec<Vec<u64>> = (0..9).map(|_| vec![3u64; 10]).collect();
    let assign = |outer: usize| rotated_block(10, 4, outer);
    let report = run_threaded(
        4,
        &costs,
        &Strategy::Static(&assign),
        0,
        StallPolicy::yielding(),
    );
    assert_eq!(report.barrier.episodes, 9);
}

#[test]
fn virtual_executor_conserves_work_across_policies() {
    let costs = CostModel::Linear { base: 1, slope: 2 }.costs(100, 0);
    let total: u64 = costs.iter().sum();
    let policies: [&dyn fuzzy_sched::ChunkPolicy; 3] =
        [&SelfScheduling, &FixedChunk(7), &GuidedSelfScheduling];
    for policy in policies {
        let r = simulate_dynamic(5, &costs, policy, 0);
        let done: u64 = r.finish.iter().sum();
        assert_eq!(done, total, "policy {} lost work", policy.name());
    }
}

#[test]
fn block_schedule_point_idle_matches_hand_math() {
    use fuzzy_sched::executor::simulate_static;
    // 6 iterations of cost 10 on 4 procs: chunks 2,2,1,1 -> work
    // 20,20,10,10 -> idle 0,0,10,10.
    let r = simulate_static(&block(6, 4), &[10u64; 6]);
    assert_eq!(r.point_idle(), vec![0, 0, 10, 10]);
    assert_eq!(r.total_fuzzy_stall(10), 0);
    assert_eq!(r.total_fuzzy_stall(5), 10);
}
