//! Replays the checked-in fuzz regression corpus through the full
//! differential harness. Every case in `crates/fuzz/corpus` once exposed
//! a real compiler or calibration bug (root causes in CHANGELOG.md);
//! this test keeps those bugs fixed.

use fuzzy_fuzz::corpus;
use fuzzy_fuzz::diff::{check_case, DiffOptions};

#[test]
fn corpus_cases_replay_clean() {
    let cases = corpus::load_dir(&corpus::default_dir()).expect("corpus loads");
    assert!(
        cases.len() >= 3,
        "regression corpus went missing: found {} case(s)",
        cases.len()
    );
    for (name, case) in cases {
        let divergences = check_case(&case, &DiffOptions::default());
        assert!(
            divergences.is_empty(),
            "corpus case {name} regressed:\n{}",
            divergences
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
