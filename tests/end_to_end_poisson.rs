//! End-to-end integration: AST -> dependence analysis -> lowering ->
//! reordering -> codegen -> simulated multiprocessor execution, checked
//! against a host reference (the paper's Fig. 3 Poisson solver).

use fuzzy_compiler::ast::{
    ArrayAccess, ArrayDecl, ArrayId, Assign, Expr, LoopNest, Stmt, Subscript, VarId,
};
use fuzzy_compiler::driver::{compile_nest, CompileOptions};
use fuzzy_sim::builder::MachineBuilder;

fn poisson(m: usize, iters: i64) -> (LoopNest, Vec<Vec<(VarId, i64)>>) {
    let k = VarId(0);
    let i = VarId(1);
    let j = VarId(2);
    let p = ArrayId(0);
    let acc = |di: i64, dj: i64| {
        Expr::Access(ArrayAccess::new(
            p,
            vec![Subscript::var(i, di), Subscript::var(j, dj)],
        ))
    };
    let nest = LoopNest {
        arrays: vec![ArrayDecl {
            name: "P".into(),
            dims: vec![m + 2, m + 2],
            base: 0,
        }],
        seq_var: k,
        seq_lo: 1,
        seq_hi: iters,
        private_vars: vec![i, j],
        body: vec![Stmt::Assign(Assign {
            target: ArrayAccess::new(p, vec![Subscript::var(i, 0), Subscript::var(j, 0)]),
            value: Expr::div_const(
                Expr::add(
                    Expr::add(Expr::add(acc(0, 1), acc(0, -1)), acc(1, 0)),
                    acc(-1, 0),
                ),
                4,
            ),
        })],
        var_names: vec!["k".into(), "i".into(), "j".into()],
    };
    let inits = (1..=m as i64)
        .flat_map(|l| (1..=m as i64).map(move |mm| vec![(i, l), (j, mm)]))
        .collect();
    (nest, inits)
}

fn host_reference(m: usize, iters: i64, boundary: i64) -> Vec<i64> {
    let n = m + 2;
    let mut grid = vec![0i64; n * n];
    for cell in grid.iter_mut().take(n) {
        *cell = boundary;
    }
    for _ in 0..iters {
        let prev = grid.clone();
        for l in 1..=m {
            for mm in 1..=m {
                grid[l * n + mm] = (prev[l * n + mm + 1]
                    + prev[l * n + mm - 1]
                    + prev[(l + 1) * n + mm]
                    + prev[(l - 1) * n + mm])
                    / 4;
            }
        }
    }
    grid
}

fn run_and_check(m: usize, iters: i64, reorder: bool) {
    let (nest, inits) = poisson(m, iters);
    let compiled = compile_nest(
        &nest,
        &inits,
        &CompileOptions {
            reorder,
            ..CompileOptions::default()
        },
    )
    .expect("compiles");
    assert!(compiled.program.validate().is_ok());
    // Zero drift: all processors run in lockstep, so reads of an iteration
    // complete before any writes of that iteration — Jacobi semantics.
    let mut machine = MachineBuilder::new(compiled.program)
        .build()
        .expect("loads");
    let n = m + 2;
    for col in 0..n {
        machine.memory_mut().poke(col, 400);
    }
    let out = machine.run(500_000_000).expect("runs");
    assert!(out.is_halted(), "m={m} reorder={reorder}: {out:?}");
    let simulated: Vec<i64> = (0..n * n).map(|w| machine.memory().peek(w)).collect();
    assert_eq!(
        simulated,
        host_reference(m, iters, 400),
        "m={m} reorder={reorder}"
    );
}

#[test]
fn poisson_2x2_matches_reference() {
    run_and_check(2, 20, true);
    run_and_check(2, 20, false);
}

#[test]
fn poisson_3x3_matches_reference() {
    run_and_check(3, 30, true);
}

#[test]
fn poisson_4x4_sixteen_processors() {
    run_and_check(4, 15, true);
}

#[test]
fn reordering_never_changes_results_but_shrinks_regions() {
    let (nest, inits) = poisson(2, 10);
    let plain = compile_nest(
        &nest,
        &inits,
        &CompileOptions {
            reorder: false,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let reordered = compile_nest(&nest, &inits, &CompileOptions::default()).unwrap();
    assert!(reordered.after.non_barrier_len() < plain.after.non_barrier_len());
    assert_eq!(
        reordered.after.total_len(),
        plain.after.total_len(),
        "reordering is a permutation"
    );
}

#[test]
fn poisson_with_real_caches_and_coherence() {
    // The same compiled program on a machine with per-processor
    // direct-mapped caches: correctness now depends on the write-through
    // invalidation protocol, and the barrier still orders the phases.
    let (nest, inits) = poisson(2, 20);
    let compiled = compile_nest(&nest, &inits, &CompileOptions::default()).unwrap();
    let mut machine = MachineBuilder::new(compiled.program)
        .cache(fuzzy_sim::memory::CacheConfig {
            lines: 16,
            words_per_line: 2,
        })
        .miss_penalty(15)
        .build()
        .unwrap();
    let n = 4;
    for col in 0..n {
        machine.memory_mut().poke(col, 400);
    }
    let out = machine.run(500_000_000).unwrap();
    assert!(out.is_halted(), "{out:?}");
    let simulated: Vec<i64> = (0..n * n).map(|w| machine.memory().peek(w)).collect();
    assert_eq!(simulated, host_reference(2, 20, 400));
    // The caches were actually exercised.
    let misses: u64 = (0..4).map(|p| machine.memory().stats(p).misses).sum();
    assert!(misses > 0, "cache model must have been engaged");
}

#[test]
fn poisson_pipelined_issue_matches_reference() {
    let (nest, inits) = poisson(2, 20);
    let compiled = compile_nest(&nest, &inits, &CompileOptions::default()).unwrap();
    let mut machine = MachineBuilder::new(compiled.program)
        .pipelined(true)
        .build()
        .unwrap();
    let n = 4;
    for col in 0..n {
        machine.memory_mut().poke(col, 400);
    }
    let out = machine.run(500_000_000).unwrap();
    assert!(out.is_halted(), "{out:?}");
    let simulated: Vec<i64> = (0..n * n).map(|w| machine.memory().peek(w)).collect();
    assert_eq!(simulated, host_reference(2, 20, 400));
}
